"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs fail; this shim lets ``pip install -e .`` use
the legacy setuptools develop path.  All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("ActiveDR: activeness-based data retention for HPC scratch "
                 "storage (SC'21 reproduction)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["activedr=repro.cli.main:main"]},
)
