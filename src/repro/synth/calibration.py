"""Dataset calibration statistics.

The synthetic generators stand in for proprietary traces, so users tuning
:class:`TitanConfig` need to *see* what a configuration produces before
spending a replay on it.  ``calibrate`` computes the statistics the
retention dynamics actually depend on:

* population mix by archetype and the byte mass each archetype owns;
* per-user job-count quantiles (the activity skew);
* snapshot staleness: what fraction of bytes exceeds the nominal
  lifetime (the "dead mass" a purge target consumes);
* replay-year growth: created bytes relative to capacity (the pressure
  that keeps ActiveDR purging after the first target hit);
* access-trace composition (accesses / creates / touches).

``render_calibration`` formats the result; the values mirror the
calibration grid in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..emulation.emulator import deterministic_file_size
from ..vfs.file_meta import DAY_SECONDS
from .titan import TitanDataset

__all__ = ["CalibrationStats", "calibrate", "render_calibration"]


@dataclass(slots=True)
class CalibrationStats:
    """Everything :func:`calibrate` measures."""

    n_users: int
    n_files: int
    capacity_bytes: int
    users_by_archetype: dict[str, int] = field(default_factory=dict)
    bytes_by_archetype: dict[str, int] = field(default_factory=dict)
    job_count_quantiles: tuple[float, float, float, float, float] = (
        0.0, 0.0, 0.0, 0.0, 0.0)  # min/q1/median/q3/max jobs per user
    stale_byte_fraction: float = 0.0     # bytes older than the lifetime
    created_bytes: int = 0
    op_counts: dict[str, int] = field(default_factory=dict)

    @property
    def growth_fraction(self) -> float:
        """Replay-year created bytes relative to snapshot capacity."""
        if self.capacity_bytes <= 0:
            return 0.0
        return self.created_bytes / self.capacity_bytes


def calibrate(dataset: TitanDataset,
              lifetime_days: float = 90.0) -> CalibrationStats:
    """Measure ``dataset``'s retention-relevant statistics."""
    fs = dataset.filesystem
    stats = CalibrationStats(n_users=len(dataset.users),
                             n_files=fs.file_count,
                             capacity_bytes=fs.capacity_bytes)

    arch_of = {p.uid: p.archetype.name for p in dataset.profiles}
    for profile in dataset.profiles:
        name = profile.archetype.name
        stats.users_by_archetype[name] = \
            stats.users_by_archetype.get(name, 0) + 1
    for _path, meta in fs.iter_files():
        name = arch_of.get(meta.uid, "?")
        stats.bytes_by_archetype[name] = \
            stats.bytes_by_archetype.get(name, 0) + meta.size

    jobs_per_user = np.zeros(len(dataset.users), dtype=np.int64)
    for job in dataset.jobs:
        jobs_per_user[job.uid] += 1
    if jobs_per_user.size:
        q = np.percentile(jobs_per_user, [0, 25, 50, 75, 100])
        stats.job_count_quantiles = tuple(float(x) for x in q)

    cutoff = dataset.config.replay_start - lifetime_days * DAY_SECONDS
    stale = sum(meta.size for _p, meta in fs.iter_files()
                if meta.atime < cutoff)
    stats.stale_byte_fraction = (stale / fs.total_bytes
                                 if fs.total_bytes else 0.0)

    created_paths: set[str] = set()
    for rec in dataset.accesses:
        stats.op_counts[rec.op] = stats.op_counts.get(rec.op, 0) + 1
        if rec.op == "create":
            created_paths.add(rec.path)
    stats.created_bytes = sum(deterministic_file_size(p)
                              for p in created_paths)
    return stats


def render_calibration(stats: CalibrationStats,
                       lifetime_days: float = 90.0) -> str:
    """Operator-facing text rendering of the calibration report."""
    from ..analysis.tables import format_bytes, format_table, percent

    lines = [
        f"users: {stats.n_users}   files: {stats.n_files}   "
        f"capacity: {format_bytes(stats.capacity_bytes)}",
        f"bytes older than {lifetime_days:g} days at replay start: "
        f"{percent(stats.stale_byte_fraction)} "
        f"(the dead mass a purge target consumes first)",
        f"replay-year created volume: {format_bytes(stats.created_bytes)} "
        f"= {percent(stats.growth_fraction)} of capacity",
        "per-user job counts (min/q1/median/q3/max): "
        + "/".join(f"{q:g}" for q in stats.job_count_quantiles),
        "access-trace ops: " + ", ".join(
            f"{op}={n}" for op, n in sorted(stats.op_counts.items())),
        "",
    ]
    total_bytes = sum(stats.bytes_by_archetype.values()) or 1
    rows = []
    for name in sorted(stats.users_by_archetype):
        byte_share = stats.bytes_by_archetype.get(name, 0) / total_bytes
        rows.append([name, stats.users_by_archetype[name],
                     format_bytes(stats.bytes_by_archetype.get(name, 0)),
                     percent(byte_share, 1)])
    lines.append(format_table(
        ["archetype", "users", "bytes owned", "byte share"], rows,
        title="Population mix"))
    return "\n".join(lines)
