"""Synthetic job-scheduler traces.

Jobs are the paper's operation-activity source.  Per-user submissions come
from a burst (campaign) process: session anchors spread over the trace
window, a handful of jobs per session, durations lognormal, node counts
Zipf -- the canonical shape of leadership-class scheduler logs.  Hiatus
users submit nothing inside their break window, then resume, which is what
drives their activeness rank down right when FLT would purge their files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.schema import JobRecord
from ..vfs.file_meta import DAY_SECONDS
from .distributions import spawn_rng, zipf_bounded
from .users import UserProfile

__all__ = ["JobTraceConfig", "generate_jobs", "user_session_anchors"]


@dataclass(frozen=True, slots=True)
class JobTraceConfig:
    """Knobs of the job-trace generator."""

    trace_start: int = 0            # scheduler logs begin (paper: 2013)
    trace_end: int = 0              # end of replay (exclusive)
    cores_per_node: int = 16        # Titan: 16 CPU cores per node
    max_nodes: int = 512
    mean_duration_hours: float = 2.5
    max_duration_hours: float = 24.0


def user_session_anchors(profile: UserProfile, config: JobTraceConfig,
                         rng: np.random.Generator) -> np.ndarray:
    """Campaign anchor times for one user, respecting the hiatus window."""
    span = config.trace_end - config.trace_start
    years = span / (365.0 * DAY_SECONDS)
    mean_sessions = profile.archetype.sessions_per_year * profile.intensity * years
    n_sessions = int(rng.poisson(max(mean_sessions, 0.05)))
    if n_sessions == 0:
        return np.empty(0, dtype=np.int64)
    start = config.trace_start
    if profile.onset_ts is not None:
        start = max(start, profile.onset_ts)
        # A newcomer's session budget concentrates after the onset.
        span_after = config.trace_end - start
        n_sessions = int(rng.poisson(max(
            profile.archetype.sessions_per_year * profile.intensity
            * span_after / (365.0 * DAY_SECONDS), 0.05)))
        if n_sessions == 0:
            return np.empty(0, dtype=np.int64)
    anchors = rng.integers(start, config.trace_end, size=n_sessions)
    if profile.hiatus_window is not None:
        lo, hi = profile.hiatus_window
        anchors = anchors[(anchors < lo) | (anchors >= hi)]
    anchors.sort()
    return anchors.astype(np.int64)


def generate_jobs(profiles: list[UserProfile], config: JobTraceConfig,
                  seed: int, *, job_id_start: int = 0) -> list[JobRecord]:
    """All job submissions across ``profiles``, time-sorted.

    ``job_id_start`` lets the chunked large-scale generator call this
    per population slice while keeping ids globally sequential in
    generation (uid) order: pass ``job_id_start + len(previous_chunk)``
    for each following chunk.
    """
    if config.trace_end <= config.trace_start:
        raise ValueError("trace_end must exceed trace_start")
    jobs: list[JobRecord] = []
    job_id = job_id_start
    max_dur = int(config.max_duration_hours * 3600)
    for profile in profiles:
        rng = spawn_rng(seed, "jobs", profile.uid)
        anchors = user_session_anchors(profile, config, rng)
        span_seconds = int(profile.archetype.session_span_days * DAY_SECONDS)
        for anchor in anchors:
            n_jobs = max(int(rng.poisson(profile.archetype.jobs_per_session)), 1)
            offsets = rng.integers(0, max(span_seconds, 1), size=n_jobs)
            for off in np.sort(offsets):
                submit = int(anchor + off)
                if submit >= config.trace_end:
                    continue
                queue_wait = int(rng.exponential(1_800))
                start = submit + queue_wait
                duration = int(min(
                    rng.lognormal(np.log(config.mean_duration_hours * 3600), 1.0),
                    max_dur))
                duration = max(duration, 60)
                nodes = int(zipf_bounded(rng, 1.6, config.max_nodes))
                jobs.append(JobRecord(job_id, profile.uid, submit, start,
                                      start + duration, nodes,
                                      config.cores_per_node))
                job_id += 1
    jobs.sort(key=lambda j: j.submit_ts)
    return jobs
