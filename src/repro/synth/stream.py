"""Chunked large-scale workspace generation.

``generate_dataset`` + ``save_workspace`` materialize the whole synthetic
population -- every profile, file tree, job and access record -- before a
byte is written, which tops out around a few tens of thousands of users.
:func:`generate_workspace_streamed` produces the *same* workspace format
at 100k-1M users on a laptop's worth of memory by generating the
population in uid-ordered chunks and streaming each output:

* ``users.txt.gz`` and the snapshot shards are appended chunk by chunk
  through handles held open across the whole run;
* jobs and accesses sort per chunk into gzipped spill files, then a
  stable ``heapq.merge`` produces the globally time-sorted traces (per
  chunk order is generation order, so stable-merge == the one global
  stable sort the in-memory path performs);
* publications need whole-population state (the co-author pool and its
  draw weights), but only a few scalars per user -- those accumulate
  across chunks and the papers are emitted in one bounded pass at the
  end.

Every per-user generator draws from a per-uid spawned RNG and the two
shared RNG streams (users, pubs) are consumed strictly in uid order, so
for populations whose user names stay fixed-width (n_users <= 100_000)
the streamed workspace is **byte-identical** to the in-memory path --
chunking changes the memory profile, never the dataset.  Above that the
traces remain byte-identical and the snapshot holds the same record set
(user names grow a digit, so the global path sort interleaves users
differently across shard files; loads are order-independent either way).
"""

from __future__ import annotations

import gzip
import heapq
import json
import os
import tempfile
from typing import Callable, Iterator

import numpy as np

from ..traces.io import (access_line, atomic_output, job_line, user_line,
                         write_publications)
from ..vfs.snapshot import SnapshotRecord, SnapshotWriter
from .apps import AccessTraceConfig, generate_accesses
from .distributions import spawn_rng
from .files import FileTreeConfig, generate_file_trees
from .jobs import JobTraceConfig, generate_jobs
from .pubs import (PublicationConfig, author_pool, emit_publications,
                   select_leads)
from .titan import TitanConfig
from .users import iter_profile_chunks

__all__ = ["generate_workspace_streamed"]

#: Lines buffered between ``writelines`` calls on the merged outputs.
_FLUSH_LINES = 8192


def _iter_lines(path: str) -> Iterator[str]:
    with gzip.open(path, "rt") as f:
        yield from f


def _merge_spills(paths: list[str], out_path: str,
                  key: Callable[[str], int]) -> None:
    """Stable-merge per-chunk sorted spill files into ``out_path``.

    ``heapq.merge`` breaks key ties toward the earlier iterable and
    preserves order within each, so merging uid-ordered chunks equals
    the single stable sort the in-memory writers perform.
    """
    with atomic_output(out_path) as out:
        buf: list[str] = []
        for line in heapq.merge(*(_iter_lines(p) for p in paths), key=key):
            buf.append(line)
            if len(buf) >= _FLUSH_LINES:
                out.writelines(buf)
                buf.clear()
        if buf:
            out.writelines(buf)


def _job_key(line: str) -> int:
    return int(line.split("|", 3)[2])       # submit_ts


def _access_key(line: str) -> int:
    return int(line.split("|", 1)[0])       # ts


def generate_workspace_streamed(config: TitanConfig | None, directory: str,
                                *, chunk_users: int = 25_000,
                                n_shards: int = 4,
                                log: Callable[[str], None] | None = None,
                                ) -> dict[str, int]:
    """Generate ``config``'s workspace directly to disk, chunk by chunk.

    Returns the same summary dict as ``TitanDataset.summary()``.
    ``log``, when given, receives one progress line per chunk.
    """
    cfg = config or TitanConfig()
    if chunk_users < 1:
        raise ValueError("chunk_users must be >= 1")
    os.makedirs(directory, exist_ok=True)

    file_cfg = cfg.files or FileTreeConfig(snapshot_ts=cfg.snapshot_ts)
    job_cfg = cfg.jobs or JobTraceConfig(trace_start=cfg.history_start,
                                         trace_end=cfg.replay_end)
    pub_cfg = cfg.pubs or PublicationConfig(pub_start=cfg.history_start,
                                            pub_end=cfg.replay_end)
    acc_cfg = cfg.accesses or AccessTraceConfig(replay_start=cfg.replay_start,
                                                replay_end=cfg.replay_end)

    totals = {"users": 0, "jobs": 0, "publications": 0, "accesses": 0,
              "files": 0, "bytes": 0}
    pubs_rng = spawn_rng(cfg.seed, "pubs")
    leads = []
    pool_uid_parts: list[np.ndarray] = []
    pool_weight_parts: list[np.ndarray] = []
    job_spills: list[str] = []
    acc_spills: list[str] = []
    job_id = 0

    with tempfile.TemporaryDirectory(dir=directory,
                                     prefix=".gen-spill-") as spill_dir, \
            atomic_output(os.path.join(directory, "users.txt.gz")) as users_f, \
            SnapshotWriter(os.path.join(directory, "snapshot"),
                           n_shards) as snap:
        chunks = iter_profile_chunks(cfg.n_users, cfg.seed,
                                     created_ts=cfg.history_start,
                                     replay_start=cfg.replay_start,
                                     replay_end=cfg.replay_end,
                                     chunk_users=chunk_users)
        for ci, profiles in enumerate(chunks):
            users_f.writelines(user_line(p.record) for p in profiles)
            totals["users"] += len(profiles)

            trees = generate_file_trees(profiles, file_cfg, cfg.seed)
            for tree in trees:
                # Per-user path order matches the global trie sort the
                # in-memory save performs (user subtrees are contiguous).
                for path, meta in sorted(zip(tree.paths, tree.metas)):
                    snap.write(SnapshotRecord(path, meta.stripe_count,
                                              meta.atime, meta.mtime,
                                              meta.ctime, meta.uid,
                                              size=meta.size))
                    totals["bytes"] += meta.size
                totals["files"] += len(tree.paths)

            jobs = generate_jobs(profiles, job_cfg, cfg.seed,
                                 job_id_start=job_id)
            job_id += len(jobs)
            totals["jobs"] += len(jobs)
            spill = os.path.join(spill_dir, f"jobs-{ci:05d}.gz")
            with gzip.open(spill, "wt", compresslevel=1) as f:
                f.writelines(job_line(j) for j in jobs)
            job_spills.append(spill)

            accesses = generate_accesses(profiles, trees, acc_cfg, cfg.seed)
            totals["accesses"] += len(accesses)
            spill = os.path.join(spill_dir, f"apps-{ci:05d}.gz")
            with gzip.open(spill, "wt", compresslevel=1) as f:
                f.writelines(access_line(a) for a in accesses)
            acc_spills.append(spill)

            leads.extend(select_leads(profiles, pubs_rng))
            uids, weights = author_pool(profiles)
            pool_uid_parts.append(uids)
            pool_weight_parts.append(weights)

            if log is not None:
                log(f"chunk {ci}: {totals['users']}/{cfg.n_users} users, "
                    f"{totals['files']} files, {totals['jobs']} jobs, "
                    f"{totals['accesses']} accesses")

        if log is not None:
            log(f"merging {len(job_spills)} job and {len(acc_spills)} "
                "access spill files")
        _merge_spills(job_spills, os.path.join(directory, "jobs.txt.gz"),
                      _job_key)
        _merge_spills(acc_spills, os.path.join(directory, "app_log.txt.gz"),
                      _access_key)

    pool_uids = np.concatenate(pool_uid_parts)
    pool_weights = np.concatenate(pool_weight_parts)
    pool_weights /= pool_weights.sum()
    pubs = emit_publications(leads, pool_uids, pool_weights, pub_cfg,
                             pubs_rng)
    totals["publications"] = len(pubs)
    write_publications(os.path.join(directory, "publications.txt.gz"), pubs)

    meta = {
        "format": "activedr-workspace/1",
        "n_users": totals["users"],
        "seed": cfg.seed,
        "replay_start": cfg.replay_start,
        "replay_end": cfg.replay_end,
        "snapshot_ts": cfg.snapshot_ts,
        "capacity_bytes": totals["bytes"],
        "size_seed": cfg.seed,
    }
    meta_path = os.path.join(directory, "meta.json")
    with open(f"{meta_path}.tmp", "w") as f:
        json.dump(meta, f, indent=2)
    os.replace(f"{meta_path}.tmp", meta_path)
    return totals
