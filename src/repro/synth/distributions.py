"""Seeded distribution helpers for the synthetic workload generators.

HPC trace statistics are dominated by heavy tails: per-user job counts,
file counts, file sizes, and citation counts are all strongly skewed.
These helpers wrap NumPy's ``Generator`` with the parameterizations the
generators need, keeping every draw reproducible from a single root seed.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "spawn_rng",
    "zipf_bounded",
    "lognormal_int",
    "bounded_pareto",
    "poisson_burst_times",
    "weighted_choice",
]


def spawn_rng(seed: int, *streams: int | str) -> np.random.Generator:
    """A child generator derived from ``seed`` and a stream label.

    Every generator in the pipeline derives its own stream, so adding a
    new consumer never perturbs existing draws (trace stability across
    library versions).
    """
    tokens = [seed] + [_stable_hash(s) if isinstance(s, str) else int(s)
                       for s in streams]
    return np.random.default_rng(np.random.SeedSequence(tokens))


def _stable_hash(text: str) -> int:
    """Process-stable string hash (``hash()`` is salted per interpreter)."""
    return zlib.crc32(text.encode("utf-8"))


def zipf_bounded(rng: np.random.Generator, a: float, high: int,
                 size: int | None = None) -> np.ndarray | int:
    """Zipf draw truncated to ``[1, high]`` by resampling via inverse CDF.

    Uses the exact normalized PMF over the bounded support, avoiding the
    unbounded tail of ``rng.zipf``.
    """
    if high < 1:
        raise ValueError("high must be >= 1")
    ranks = np.arange(1, high + 1, dtype=np.float64)
    pmf = ranks ** (-a)
    pmf /= pmf.sum()
    out = rng.choice(ranks.astype(np.int64), size=size, p=pmf)
    return out


def lognormal_int(rng: np.random.Generator, mean: float, sigma: float,
                  low: int, high: int, size: int | None = None,
                  ) -> np.ndarray | int:
    """Integer lognormal draw clipped to ``[low, high]``.

    ``mean`` is the target *linear* mean; the underlying normal mean is
    adjusted so that the unclipped distribution has that expectation.
    """
    if low > high:
        raise ValueError("low must be <= high")
    mu = np.log(mean) - sigma ** 2 / 2.0
    draws = rng.lognormal(mu, sigma, size=size)
    return np.clip(np.rint(draws), low, high).astype(np.int64)


def bounded_pareto(rng: np.random.Generator, alpha: float, low: float,
                   high: float, size: int | None = None,
                   ) -> np.ndarray | float:
    """Bounded Pareto draw via inverse-CDF sampling.

    The classic file-size model: density ``x^(-alpha-1)`` on
    ``[low, high]``.
    """
    if not (0 < low < high):
        raise ValueError("need 0 < low < high")
    u = rng.uniform(0.0, 1.0, size=size)
    la, ha = low ** alpha, high ** alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def poisson_burst_times(rng: np.random.Generator, start: int, end: int,
                        n_bursts: int, events_per_burst_mean: float,
                        burst_span_seconds: int) -> np.ndarray:
    """Event timestamps from a burst (session) process.

    ``n_bursts`` session anchors are placed uniformly in ``[start, end)``;
    each session emits a Poisson number of events spread uniformly over
    ``burst_span_seconds``.  This reproduces the bursty, campaign-driven
    shape of HPC job submissions far better than a homogeneous Poisson
    process.
    """
    if end <= start or n_bursts <= 0:
        return np.empty(0, dtype=np.int64)
    anchors = rng.integers(start, end, size=n_bursts)
    times: list[np.ndarray] = []
    counts = rng.poisson(events_per_burst_mean, size=n_bursts)
    for anchor, count in zip(anchors, counts):
        if count == 0:
            continue
        offsets = rng.integers(0, max(burst_span_seconds, 1), size=count)
        times.append(anchor + offsets)
    if not times:
        return np.empty(0, dtype=np.int64)
    all_times = np.concatenate(times)
    all_times = all_times[(all_times >= start) & (all_times < end)]
    all_times.sort()
    return all_times.astype(np.int64)


def weighted_choice(rng: np.random.Generator, options: list,
                    weights: list[float]):
    """One draw from ``options`` with the given (unnormalized) weights."""
    w = np.asarray(weights, dtype=np.float64)
    return options[int(rng.choice(len(options), p=w / w.sum()))]
