"""Synthetic user population with behaviour archetypes.

The Titan user list is anonymized and proprietary; what matters to
ActiveDR is the *shape* of per-user behaviour, which section 2 of the
paper describes qualitatively: a small core of continuously active users,
a long tail of sporadic users, users who go on a hiatus mid-project and
return after the file lifetime has elapsed (the FLT failure mode), and
users who game FLT by periodically touching files they barely use.

Each archetype parameterizes the downstream job / access / publication
generators.  Fractions are calibrated so the activeness evaluation lands
near the paper's Fig. 5 split (0.4-0.9 % both-active, ~1-3.5 % operation
-active-only, ~3 % outcome-active-only, 92-95 % both-inactive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.schema import UserRecord
from .distributions import spawn_rng

__all__ = ["Archetype", "ARCHETYPES", "UserProfile", "generate_users",
           "iter_profile_chunks"]


@dataclass(frozen=True, slots=True)
class Archetype:
    """Behavioural parameters of one user class.

    Attributes
    ----------
    name: archetype label.
    fraction: share of the population.
    sessions_per_year: mean number of activity bursts (campaigns).
    jobs_per_session: mean jobs per burst.
    session_span_days: how long one burst lasts.
    hiatus: whether the user takes one long mid-year break and returns
        (the paper's central FLT failure scenario).
    toucher: whether the user periodically touches files without real
        activity (the "periodic-file-touch" gaming behaviour).
    pub_probability: chance the user authors at least one publication.
    files_mean: mean number of files owned at snapshot time.
    reaccess_bias: probability an access session revisits old files
        rather than the newest ones.
    access_scale: multiplier on per-session access volume -- heavy users
        dominate I/O traffic, which keeps the aggregate miss ratio in the
        paper's few-percent regime.
    """

    name: str
    fraction: float
    sessions_per_year: float
    jobs_per_session: float
    session_span_days: float
    hiatus: bool
    toucher: bool
    pub_probability: float
    files_mean: float
    reaccess_bias: float
    access_scale: float = 1.0


#: The calibrated population mix.
ARCHETYPES: tuple[Archetype, ...] = (
    Archetype("power",    0.018, 30.0, 14.0, 6.0, False, False, 0.55, 220.0, 0.45, 8.0),
    Archetype("regular",  0.070, 11.0,  6.0, 5.0, False, False, 0.18, 90.0, 0.40, 3.0),
    Archetype("sporadic", 0.467,  3.0,  3.0, 4.0, False, False, 0.04, 35.0, 0.35, 1.0),
    Archetype("hiatus",   0.150,  5.0,  4.0, 5.0, True,  False, 0.08, 60.0, 0.70, 1.5),
    Archetype("toucher",  0.025,  1.0,  1.5, 3.0, False, True,  0.02, 50.0, 0.20, 0.4),
    Archetype("dormant",  0.220,  0.4,  1.0, 2.0, False, False, 0.01, 12.0, 0.25, 0.3),
    # Newcomers: accounts whose entire history starts at a recent onset.
    # Their short activity span keeps Eq. (5)'s period product dense, so
    # they are the natural population of the active quadrants (the paper's
    # op-active share growing with period length comes from them).
    Archetype("newcomer", 0.050, 40.0,  8.0, 5.0, False, False, 0.25, 40.0, 0.30, 2.0),
)


@dataclass(slots=True)
class UserProfile:
    """One synthetic user: identity plus behaviour archetype."""

    record: UserRecord
    archetype: Archetype
    #: Per-user multiplier on activity volume (heavy-tailed within archetype).
    intensity: float
    #: Hiatus window (start_ts, end_ts) or None.
    hiatus_window: tuple[int, int] | None = None
    #: Newcomers have no activity before this instant.
    onset_ts: int | None = None

    @property
    def uid(self) -> int:
        return self.record.uid


def generate_users(n_users: int, seed: int, created_ts: int,
                   replay_start: int, replay_end: int) -> list[UserProfile]:
    """Draw the population.

    Hiatus users receive a break window inside the replay year whose
    length (100-220 days) exceeds the usual 90-day lifetime, so their
    return accesses become FLT file misses.  Newcomers receive an onset
    between three months before the replay and one month before its end;
    all their activity follows the onset.
    """
    profiles: list[UserProfile] = []
    for chunk in iter_profile_chunks(n_users, seed, created_ts,
                                     replay_start, replay_end,
                                     chunk_users=n_users):
        profiles.extend(chunk)
    return profiles


def iter_profile_chunks(n_users: int, seed: int, created_ts: int,
                        replay_start: int, replay_end: int, *,
                        chunk_users: int):
    """Yield the population in uid-ordered chunks of ``chunk_users``.

    The per-user draws come from one shared generator consumed strictly
    in uid order, so the concatenation of all chunks is *identical* to a
    single :func:`generate_users` call -- chunking changes memory shape,
    never the population.  Only the archetype assignment vector (one
    int per user) is materialized up front.
    """
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    if chunk_users < 1:
        raise ValueError("chunk_users must be >= 1")
    rng = spawn_rng(seed, "users")
    fractions = np.asarray([a.fraction for a in ARCHETYPES])
    assignments = rng.choice(len(ARCHETYPES), size=n_users,
                             p=fractions / fractions.sum())

    year_seconds = replay_end - replay_start
    chunk: list[UserProfile] = []
    for uid in range(n_users):
        arche = ARCHETYPES[int(assignments[uid])]
        intensity = float(rng.lognormal(0.0, 0.6))
        hiatus_window: tuple[int, int] | None = None
        onset_ts: int | None = None
        if arche.name == "newcomer" and year_seconds > 0:
            onset_lo = replay_start - 90 * 86_400
            onset_hi = max(replay_end - 30 * 86_400, onset_lo + 1)
            onset_ts = int(rng.integers(onset_lo, onset_hi))
        if arche.hiatus and year_seconds > 0:
            gap_days = int(rng.integers(100, 221))
            gap = gap_days * 86_400
            latest_start = max(replay_start + 1, replay_end - gap)
            start = int(rng.integers(replay_start, latest_start))
            hiatus_window = (start, min(start + gap, replay_end))
        chunk.append(UserProfile(
            record=UserRecord(uid, f"user{uid:05d}", created_ts),
            archetype=arche,
            intensity=intensity,
            hiatus_window=hiatus_window,
            onset_ts=onset_ts,
        ))
        if len(chunk) >= chunk_users:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
