"""Synthetic scratch-space file trees.

Generates each user's directory tree under ``/lustre/scratch`` as it stood
in the last weekly metadata snapshot of the base year.  Shapes follow
scratch-space folklore the paper leans on:

* per-user file counts are heavy-tailed (archetype mean x lognormal
  intensity);
* files live under a handful of project directories with ``runs``/
  ``data``/``logs`` subtrees, so the prefix tree gets realistic sharing;
* sizes are bounded-Pareto (most files small, a thin tail of huge ones),
  with Lustre stripe counts assigned per OLCF best practice;
* access times at snapshot capture reflect a system that has *already*
  been running 90-day FLT (the paper's snapshot is itself a retention
  result): no file is older than ``max_age_days`` since last access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vfs.file_meta import DAY_SECONDS, FileMeta
from ..vfs.filesystem import VirtualFileSystem
from ..vfs.striping import best_practice_stripe_count
from .distributions import bounded_pareto, lognormal_int, spawn_rng
from .users import UserProfile

__all__ = ["FileTreeConfig", "UserFiles", "generate_file_trees",
           "build_filesystem"]

_SUBDIRS = ("runs", "data", "logs")
_EXTENSIONS = ("h5", "nc", "dat", "chk", "log", "out", "bin")


@dataclass(frozen=True, slots=True)
class FileTreeConfig:
    """Knobs of the file-tree generator."""

    root: str = "/lustre/scratch"
    snapshot_ts: int = 0            # capture time of the snapshot
    #: Fresh files (the nominally FLT-compliant population) are younger
    #: than this (90-day lifetime + 7-day trigger).
    fresh_age_days: float = 95.0
    #: The old tail: production purge enforcement is full of gaps and
    #: exemptions, so real Spider snapshots carry files far older than the
    #: nominal lifetime.  This dead mass is what a 50 % purge target
    #: consumes first.
    max_age_days: float = 420.0
    size_alpha: float = 0.65        # bounded-Pareto shape for file sizes
    min_size_bytes: int = 16 << 10  # 16 KiB floor
    max_size_bytes: int = 16 << 30  # 16 GiB tail cap: a ~4 MiB mean, big
    #                                 enough that yearly growth stays a
    #                                 modest fraction of capacity yet no
    #                                 single file dominates the purge
    #                                 target at laptop scale
    max_projects: int = 4
    max_files_per_user: int = 5_000


@dataclass(slots=True)
class UserFiles:
    """One user's generated files: parallel path/metadata lists."""

    uid: int
    paths: list[str]
    metas: list[FileMeta]

    #: Paths grouped by project directory -- the access generator draws
    #: working sets project by project.
    project_paths: dict[str, list[str]]


def generate_file_trees(profiles: list[UserProfile], config: FileTreeConfig,
                        seed: int) -> list[UserFiles]:
    """Generate every user's tree as of ``config.snapshot_ts``."""
    if config.snapshot_ts <= 0:
        raise ValueError("config.snapshot_ts must be set")
    out: list[UserFiles] = []
    for profile in profiles:
        rng = spawn_rng(seed, "files", profile.uid)
        out.append(_one_user(profile, config, rng))
    return out


def _one_user(profile: UserProfile, config: FileTreeConfig,
              rng: np.random.Generator) -> UserFiles:
    mean_files = max(profile.archetype.files_mean * profile.intensity, 2.0)
    n_files = int(lognormal_int(rng, mean_files, 0.9, 1,
                                config.max_files_per_user))
    n_projects = int(rng.integers(1, config.max_projects + 1))
    user_root = f"{config.root}/{profile.record.name}"

    sizes = bounded_pareto(rng, config.size_alpha,
                           float(config.min_size_bytes),
                           float(config.max_size_bytes), size=n_files)
    ages = _snapshot_ages(profile, config, rng, n_files)

    paths: list[str] = []
    metas: list[FileMeta] = []
    project_paths: dict[str, list[str]] = {}
    project_ids = rng.integers(0, n_projects, size=n_files)
    for i in range(n_files):
        proj = f"{user_root}/proj{int(project_ids[i]):02d}"
        sub = _SUBDIRS[int(rng.integers(0, len(_SUBDIRS)))]
        ext = _EXTENSIONS[int(rng.integers(0, len(_EXTENSIONS)))]
        path = f"{proj}/{sub}/f{i:05d}.{ext}"
        size = int(sizes[i])
        atime = int(config.snapshot_ts - ages[i])
        # Creation precedes last access by up to a year of project history.
        ctime = atime - int(rng.integers(0, 365 * DAY_SECONDS))
        meta = FileMeta(size=size, atime=atime, mtime=atime, ctime=ctime,
                        uid=profile.uid,
                        stripe_count=best_practice_stripe_count(size))
        paths.append(path)
        metas.append(meta)
        project_paths.setdefault(proj, []).append(path)
    return UserFiles(profile.uid, paths, metas, project_paths)


#: Per-archetype probability that a file belongs to the old
#: (enforcement-gap) tail rather than the fresh population.
_OLD_TAIL_FRACTION = {
    "power": 0.22, "regular": 0.30, "sporadic": 0.55,
    "hiatus": 0.45, "toucher": 0.0, "dormant": 0.85,
}


def _snapshot_ages(profile: UserProfile, config: FileTreeConfig,
                   rng: np.random.Generator, n_files: int) -> np.ndarray:
    """Seconds since last access, per file, at snapshot time.

    Bimodal: a *fresh* population within ``fresh_age_days`` (recently
    active archetypes concentrate near zero) plus an *old tail* between
    ``fresh_age_days`` and ``max_age_days`` -- data that outlived the
    nominal lifetime through purge-enforcement gaps.  Touchers have no old
    tail: their cadence sweeps keep everything nominally fresh.
    """
    fresh_age = config.fresh_age_days * DAY_SECONDS
    max_age = config.max_age_days * DAY_SECONDS
    arche = profile.archetype.name
    if arche in ("power", "regular"):
        frac = rng.beta(1.0, 6.0, size=n_files)     # mostly fresh
    elif arche == "toucher":
        # Everything touched within the sweep cadence (at most ~60 days).
        frac = rng.uniform(0.0, min(60 * DAY_SECONDS / fresh_age, 1.0),
                           size=n_files)
    else:
        frac = rng.beta(1.6, 1.6, size=n_files)     # spread out
    ages = (frac * fresh_age).astype(np.int64)

    old_frac = _OLD_TAIL_FRACTION.get(arche, 0.4)
    if old_frac > 0.0 and max_age > fresh_age:
        is_old = rng.uniform(size=n_files) < old_frac
        n_old = int(is_old.sum())
        if n_old:
            ages[is_old] = rng.integers(int(fresh_age), int(max_age),
                                        size=n_old)
    return ages


def build_filesystem(trees: list[UserFiles],
                     capacity_bytes: int | None = None) -> VirtualFileSystem:
    """Materialize the generated trees into a virtual file system.

    With ``capacity_bytes=None`` the loaded usage becomes the nominal
    capacity, matching the paper's setup (capacity = total synthesized
    size of the last 2015 snapshot).
    """
    fs = VirtualFileSystem()
    for tree in trees:
        for path, meta in zip(tree.paths, tree.metas):
            fs.add_file(path, meta.copy())
    if capacity_bytes is None:
        fs.freeze_capacity()
    else:
        fs.capacity_bytes = capacity_bytes
    return fs
