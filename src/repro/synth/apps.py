"""Synthetic application (file-access) traces for the replay year.

The application log is what the emulator replays: each record is a file
path touched by some user's application at some time.  File misses happen
exactly when a replayed path was purged earlier, so the generator's job is
to produce realistic *re-access* structure:

* access sessions cluster around the user's job campaigns;
* each session works on one project directory, mixing fresh files with
  re-visits of older ones (``reaccess_bias``);
* **hiatus** users issue a broad "return session" right after their break,
  re-reading files that sat untouched longer than the file lifetime --
  the paper's central FLT failure mode;
* **toucher** users sweep all their files on a fixed cadence while doing
  almost no real work -- the FLT-gaming behaviour ActiveDR is designed to
  stop rewarding;
* sessions optionally *create* files, growing the scratch space over the
  year.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.schema import AppAccessRecord
from ..vfs.file_meta import DAY_SECONDS
from .distributions import spawn_rng
from .files import UserFiles
from .users import UserProfile

__all__ = ["AccessTraceConfig", "generate_accesses"]


@dataclass(frozen=True, slots=True)
class AccessTraceConfig:
    """Knobs of the access-trace generator."""

    replay_start: int = 0
    replay_end: int = 0
    accesses_per_session_mean: float = 25.0
    working_set_fraction: float = 0.3
    create_probability: float = 0.04   # per-access chance of a new file
    touch_cadence_days: float = 60.0   # toucher sweep interval
    return_session_fraction: float = 0.6  # of a hiatus user's files revisited
    #: Files untouched for this long at snapshot time start in the "cold"
    #: pool that deep revisits draw from.
    recent_horizon_days: float = 30.0
    #: Base probability that a session is a *deep revisit* into cold files
    #: instead of ongoing work on the warm set (scaled by the archetype's
    #: ``reaccess_bias``).
    deep_revisit_base: float = 0.05


def generate_accesses(profiles: list[UserProfile], trees: list[UserFiles],
                      config: AccessTraceConfig,
                      seed: int) -> list[AppAccessRecord]:
    """The full replay-year access log, time-sorted."""
    if config.replay_end <= config.replay_start:
        raise ValueError("replay_end must exceed replay_start")
    trees_by_uid = {t.uid: t for t in trees}
    records: list[AppAccessRecord] = []
    for profile in profiles:
        rng = spawn_rng(seed, "apps", profile.uid)
        tree = trees_by_uid.get(profile.uid)
        if tree is None or not tree.paths:
            continue
        records.extend(_user_accesses(profile, tree, config, rng))
    records.sort(key=lambda r: r.ts)
    return records


def _user_accesses(profile: UserProfile, tree: UserFiles,
                   config: AccessTraceConfig,
                   rng: np.random.Generator) -> list[AppAccessRecord]:
    out: list[AppAccessRecord] = []
    arche = profile.archetype

    # Warm/cold split at snapshot time.  The warm pool is the user's live
    # working set and evolves as sessions run; the cold pool holds files
    # untouched for ``recent_horizon_days`` -- deep revisits draw from it
    # *without replacement* (a user digs an old dataset out once; after a
    # miss they restore or abandon it, they do not re-open it weekly).
    horizon = config.recent_horizon_days * DAY_SECONDS
    snapshot_ts = min(config.replay_start,
                      max((m.atime for m in tree.metas), default=0))
    warm: list[str] = []
    cold: list[str] = []
    for path, meta in zip(tree.paths, tree.metas):
        if snapshot_ts - meta.atime <= horizon:
            warm.append(path)
        else:
            cold.append(path)
    if not warm:
        warm = tree.paths[-1:]
    rng.shuffle(cold)

    # --- regular work sessions -------------------------------------------
    span = config.replay_end - config.replay_start
    years = span / (365.0 * DAY_SECONDS)
    n_sessions = int(rng.poisson(
        max(arche.sessions_per_year * profile.intensity * years, 0.05)))
    start = config.replay_start
    if profile.onset_ts is not None:
        start = max(start, min(profile.onset_ts, config.replay_end - 1))
    anchors = (rng.integers(start, config.replay_end, size=n_sessions)
               if n_sessions else np.empty(0, dtype=np.int64))
    if profile.hiatus_window is not None:
        lo, hi = profile.hiatus_window
        anchors = anchors[(anchors < lo) | (anchors >= hi)]

    deep_prob = min(config.deep_revisit_base + 0.3 * arche.reaccess_bias, 0.9)
    created_serial = 0
    proj_names = list(tree.project_paths)
    for anchor in np.sort(anchors):
        session_span = int(arche.session_span_days * DAY_SECONDS)
        n_acc = max(int(rng.poisson(config.accesses_per_session_mean
                                    * arche.access_scale)), 1)

        if cold and rng.uniform() < deep_prob:
            # Deep revisit: dig a batch of cold files out and work on it
            # for the whole session (reviving an old dataset is a real
            # campaign, not a single open).
            take = min(max(int(rng.integers(1, 12)), 1), len(cold))
            working_set = [cold.pop() for _ in range(take)]
            warm.extend(working_set)
        else:
            ws_size = max(int(len(warm) * config.working_set_fraction), 1)
            working_set = warm[-ws_size:]

        proj = proj_names[int(rng.integers(0, len(proj_names)))]
        for _ in range(n_acc):
            ts = int(anchor + rng.integers(0, max(session_span, 1)))
            if ts >= config.replay_end:
                continue
            if rng.uniform() < config.create_probability:
                created_serial += 1
                path = f"{proj}/runs/new{created_serial:05d}.out"
                warm.append(path)
                out.append(AppAccessRecord(ts, profile.uid, path, "create"))
            else:
                path = working_set[int(rng.integers(0, len(working_set)))]
                out.append(AppAccessRecord(ts, profile.uid, path, "access"))
        # The warm pool stays bounded: oldest entries cool off.
        if len(warm) > 4 * max(int(len(tree.paths)
                                   * config.working_set_fraction), 8):
            warm = warm[len(warm) // 2:]

    # --- hiatus return session -------------------------------------------
    if profile.hiatus_window is not None:
        _, hiatus_end = profile.hiatus_window
        if hiatus_end < config.replay_end:
            ts0 = hiatus_end + int(rng.integers(0, 3 * DAY_SECONDS))
            # The user resumes the project: re-opens what is left of their
            # pre-hiatus working set plus a chunk of cold archives.
            n_cold = int(len(cold) * config.return_session_fraction)
            revisit = list(warm) + [cold.pop() for _ in range(n_cold)]
            for path in revisit:
                ts = ts0 + int(rng.integers(0, 2 * DAY_SECONDS))
                if ts < config.replay_end:
                    out.append(AppAccessRecord(ts, profile.uid, path,
                                               "access"))

    # --- toucher cadence sweeps ------------------------------------------
    if arche.toucher:
        cadence = int(config.touch_cadence_days * DAY_SECONDS)
        t = config.replay_start + int(rng.integers(0, cadence))
        while t < config.replay_end:
            # `touch` sweeps renew atimes of surviving files but cannot
            # miss -- a find-based sweep only visits files still on disk.
            for path in tree.paths:
                out.append(AppAccessRecord(int(t), profile.uid, path,
                                           "touch"))
            t += cadence

    return out
