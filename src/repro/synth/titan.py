"""One-call synthetic Titan/Spider dataset builder.

``generate_dataset(TitanConfig(...))`` produces everything the paper's
evaluation consumes, at a configurable scale:

* the user list,
* the job-scheduler log (operations source, spanning the two years before
  the replay like the paper's 2013-2016 logs feeding a 2016 replay),
* the publication list (outcomes source),
* the replay-year application log, and
* the virtual file system as of the last weekly snapshot before the
  replay (capacity frozen at its loaded size, per the paper's setup).

The calendar matches the paper: history accrues through the base years,
the snapshot is captured in late December, and the replay covers the
following full year with a 7-day purge trigger.
"""

from __future__ import annotations

import calendar
from dataclasses import dataclass, field

from ..traces.schema import (AppAccessRecord, JobRecord, PublicationRecord,
                             UserRecord)
from ..vfs.file_meta import DAY_SECONDS
from ..vfs.filesystem import VirtualFileSystem
from .apps import AccessTraceConfig, generate_accesses
from .files import FileTreeConfig, UserFiles, build_filesystem, generate_file_trees
from .jobs import JobTraceConfig, generate_jobs
from .pubs import PublicationConfig, generate_publications
from .users import UserProfile, generate_users

__all__ = ["TitanConfig", "TitanDataset", "generate_dataset", "ts_utc"]


def ts_utc(year: int, month: int = 1, day: int = 1) -> int:
    """Epoch seconds of a UTC calendar date (emulation clock helper)."""
    return calendar.timegm((year, month, day, 0, 0, 0))


@dataclass(frozen=True, slots=True)
class TitanConfig:
    """Scale and calendar of one synthetic dataset.

    Defaults give a laptop-scale dataset (hundreds of users, tens of
    thousands of files) with the paper's calendar shape: job history from
    ``history_start_year``, snapshot at the end of ``base_year``, replay
    over the following year.
    """

    n_users: int = 500
    seed: int = 2021
    history_start_year: int = 2014
    base_year: int = 2015
    files: FileTreeConfig | None = None
    jobs: JobTraceConfig | None = None
    pubs: PublicationConfig | None = None
    accesses: AccessTraceConfig | None = None

    @property
    def history_start(self) -> int:
        return ts_utc(self.history_start_year)

    @property
    def snapshot_ts(self) -> int:
        """Last weekly snapshot of the base year (Dec 28)."""
        return ts_utc(self.base_year, 12, 28)

    @property
    def replay_start(self) -> int:
        return ts_utc(self.base_year + 1)

    @property
    def replay_end(self) -> int:
        return ts_utc(self.base_year + 2)


@dataclass(slots=True)
class TitanDataset:
    """Everything one evaluation run consumes."""

    config: TitanConfig
    profiles: list[UserProfile]
    users: list[UserRecord]
    jobs: list[JobRecord]
    publications: list[PublicationRecord]
    accesses: list[AppAccessRecord]
    trees: list[UserFiles]
    #: The pristine snapshot file system; callers replicate it per policy.
    filesystem: VirtualFileSystem

    def fresh_filesystem(self) -> VirtualFileSystem:
        """An independent copy of the snapshot FS (one per policy run)."""
        return self.filesystem.replicate()

    def summary(self) -> dict[str, int]:
        return {
            "users": len(self.users),
            "jobs": len(self.jobs),
            "publications": len(self.publications),
            "accesses": len(self.accesses),
            "files": self.filesystem.file_count,
            "bytes": self.filesystem.total_bytes,
        }


def generate_dataset(config: TitanConfig | None = None) -> TitanDataset:
    """Build the full synthetic dataset for ``config``."""
    cfg = config or TitanConfig()

    profiles = generate_users(cfg.n_users, cfg.seed,
                              created_ts=cfg.history_start,
                              replay_start=cfg.replay_start,
                              replay_end=cfg.replay_end)

    file_cfg = cfg.files or FileTreeConfig(snapshot_ts=cfg.snapshot_ts)
    trees = generate_file_trees(profiles, file_cfg, cfg.seed)
    fs = build_filesystem(trees)

    job_cfg = cfg.jobs or JobTraceConfig(trace_start=cfg.history_start,
                                         trace_end=cfg.replay_end)
    jobs = generate_jobs(profiles, job_cfg, cfg.seed)

    pub_cfg = cfg.pubs or PublicationConfig(pub_start=cfg.history_start,
                                            pub_end=cfg.replay_end)
    pubs = generate_publications(profiles, pub_cfg, cfg.seed)

    acc_cfg = cfg.accesses or AccessTraceConfig(replay_start=cfg.replay_start,
                                                replay_end=cfg.replay_end)
    accesses = generate_accesses(profiles, trees, acc_cfg, cfg.seed)

    return TitanDataset(
        config=cfg,
        profiles=profiles,
        users=[p.record for p in profiles],
        jobs=jobs,
        publications=pubs,
        accesses=accesses,
        trees=trees,
        filesystem=fs,
    )
