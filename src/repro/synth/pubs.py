"""Synthetic publication lists -- the outcome-activity source.

Publications are sparse, skewed outcome events: few users publish, counts
per author are small, citations are Zipf.  Author lists mix the lead user
with co-authors drawn preferentially from other publication-active users,
so Eq. (8)'s author-rank term gets exercised across the population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.schema import PublicationRecord
from .distributions import spawn_rng, zipf_bounded
from .users import UserProfile

__all__ = ["PublicationConfig", "LeadAuthor", "select_leads",
           "author_pool", "emit_publications", "generate_publications"]


@dataclass(frozen=True, slots=True)
class PublicationConfig:
    """Knobs of the publication generator."""

    pub_start: int = 0          # publications accrue from (paper: 2013)
    pub_end: int = 0            # through end of replay
    max_citations: int = 400
    citation_zipf_a: float = 1.7
    max_coauthors: int = 7


@dataclass(frozen=True, slots=True)
class LeadAuthor:
    """What pub emission needs from a selected lead: identity and the
    power-archetype flag that grants extra papers."""

    uid: int
    power: bool


def select_leads(profiles: list[UserProfile],
                 rng: np.random.Generator) -> list[LeadAuthor]:
    """Draw lead authors from ``profiles`` (one uniform per profile).

    Consumes the shared publication RNG strictly in profile order, so a
    chunked caller feeding uid-ordered slices reproduces exactly the
    leads a whole-population call selects.
    """
    leads: list[LeadAuthor] = []
    for profile in profiles:
        p = min(profile.archetype.pub_probability * profile.intensity, 0.95)
        if rng.uniform() < p:
            leads.append(LeadAuthor(profile.uid,
                                    profile.archetype.name == "power"))
    return leads


def author_pool(profiles: list[UserProfile]) -> tuple[np.ndarray, np.ndarray]:
    """Co-author pool slice: uids plus *unnormalized* draw weights.

    Chunked callers concatenate slices and normalize once over the full
    population before :func:`emit_publications`.
    """
    uids = np.asarray([p.uid for p in profiles], dtype=np.int64)
    weights = np.asarray(
        [0.2 + p.archetype.pub_probability * p.intensity for p in profiles])
    return uids, weights


def emit_publications(leads: list[LeadAuthor], pool_uids: np.ndarray,
                      weights: np.ndarray, config: PublicationConfig,
                      rng: np.random.Generator) -> list[PublicationRecord]:
    """Emit every lead's papers; ``weights`` must sum to 1."""
    pubs: list[PublicationRecord] = []
    pub_id = 0
    for lead in leads:
        n_pubs = int(rng.integers(1, 4))
        if lead.power:
            n_pubs += int(rng.integers(0, 4))
        for _ in range(n_pubs):
            ts = int(rng.integers(config.pub_start, config.pub_end))
            citations = int(zipf_bounded(rng, config.citation_zipf_a,
                                         config.max_citations)) - 1
            n_co = int(rng.integers(0, config.max_coauthors + 1))
            authors = [lead.uid]
            if n_co:
                co = rng.choice(pool_uids, size=min(n_co, pool_uids.size),
                                replace=False, p=weights)
                authors.extend(int(u) for u in co if int(u) != lead.uid)
            pubs.append(PublicationRecord(pub_id, ts, authors, citations))
            pub_id += 1
    pubs.sort(key=lambda p: p.ts)
    return pubs


def generate_publications(profiles: list[UserProfile],
                          config: PublicationConfig,
                          seed: int) -> list[PublicationRecord]:
    """Publication records, time-sorted, with Eq. (8)-ready author lists."""
    if config.pub_end <= config.pub_start:
        raise ValueError("pub_end must exceed pub_start")
    rng = spawn_rng(seed, "pubs")
    leads = select_leads(profiles, rng)
    pool_uids, weights = author_pool(profiles)
    weights = weights / weights.sum()
    return emit_publications(leads, pool_uids, weights, config, rng)
