"""Synthetic Titan/Spider workload generation.

Substitutes the proprietary OLCF traces with calibrated, seeded
generators; see DESIGN.md section 1 for the substitution rationale.
"""

from .apps import AccessTraceConfig, generate_accesses
from .calibration import CalibrationStats, calibrate, render_calibration
from .distributions import (
    bounded_pareto,
    lognormal_int,
    poisson_burst_times,
    spawn_rng,
    weighted_choice,
    zipf_bounded,
)
from .files import FileTreeConfig, UserFiles, build_filesystem, generate_file_trees
from .jobs import JobTraceConfig, generate_jobs, user_session_anchors
from .pubs import PublicationConfig, generate_publications
from .stream import generate_workspace_streamed
from .titan import TitanConfig, TitanDataset, generate_dataset, ts_utc
from .users import (ARCHETYPES, Archetype, UserProfile, generate_users,
                    iter_profile_chunks)

__all__ = [
    "AccessTraceConfig",
    "generate_accesses",
    "CalibrationStats",
    "calibrate",
    "render_calibration",
    "bounded_pareto",
    "lognormal_int",
    "poisson_burst_times",
    "spawn_rng",
    "weighted_choice",
    "zipf_bounded",
    "FileTreeConfig",
    "UserFiles",
    "build_filesystem",
    "generate_file_trees",
    "JobTraceConfig",
    "generate_jobs",
    "user_session_anchors",
    "PublicationConfig",
    "generate_publications",
    "generate_workspace_streamed",
    "iter_profile_chunks",
    "TitanConfig",
    "TitanDataset",
    "generate_dataset",
    "ts_utc",
    "ARCHETYPES",
    "Archetype",
    "UserProfile",
    "generate_users",
]
