"""repro -- a from-scratch reproduction of ActiveDR (SC'21).

*Exploiting User Activeness for Data Retention in HPC Systems*,
Zhang et al., SC '21, DOI 10.1145/3458817.3476201.

Subpackages
-----------
``repro.core``
    The paper's contribution: user-activeness evaluation (Eqs. 1-6), the
    2x2 user classification, the Eq. 7 lifetime adjustment, the ActiveDR
    retention engine with retrospective passes, and the FLT baseline.
``repro.vfs``
    Virtual parallel file system substrate: compact prefix tree, file
    metadata with stripe-synthesized sizes, Spider-style metadata
    snapshots.
``repro.traces``
    Job-scheduler / application / user / publication trace schemas & I/O.
``repro.synth``
    Synthetic Titan-scale workload generation (the proprietary OLCF traces
    are substituted by calibrated generators; see DESIGN.md).
``repro.parallel``
    MPI-style communicator abstraction with serial and multiprocessing
    backends, shard-parallel scanning, time/memory probes.
``repro.emulation``
    The trace-replay emulator and FLT-vs-ActiveDR comparison runner.
``repro.stream``
    The online retention service: streaming event ingestion, incremental
    activeness state, crash-safe checkpoint/resume; bit-identical to the
    batch replay.
``repro.analysis``
    Miss-ratio histograms, box statistics, and paper-style table output.
"""

from . import (analysis, cli, core, emulation, parallel, stream, synth,
               traces, vfs)

__version__ = "1.0.0"

__all__ = ["core", "vfs", "traces", "synth", "parallel", "emulation",
           "stream", "analysis", "cli", "__version__"]
