"""Deterministic fault injection for the ingest -> state -> checkpoint path.

Production ingest stacks are only as trustworthy as the failures they
have been exercised against.  This package is the exercise machinery: a
:class:`FaultPlan` scripts *exactly* which operation of which target
fails, and in what way -- truncation, partial writes, ``EIO``, stalls,
bit-flips, process kills, malformed/duplicate/regressed events -- so a
chaos test (or ``serve --fault-plan``) replays the same failure sequence
every run.  All randomness (garbage payloads, bit positions) derives
from the plan's seed, never from wall-clock entropy.

The package deliberately knows nothing about ``repro.stream``: it wraps
plain file handles (:class:`FaultyIO`) and plain event iterators
(:class:`FaultyStream`), and the reliability layer composes them in.
:class:`ChaosProxy` extends the same scripting to the network: a
man-in-the-middle TCP proxy that severs, stalls, corrupts, drops, or
splits the client->server byte stream at seeded byte offsets.
"""

from .io import (FaultyIO, FaultyStream, InjectedIOError, corrupt_file,
                 corrupt_frame_bytes, trace_writer_wrap)
from .net import ChaosProxy
from .plan import (IO_READ_KINDS, IO_WRITE_KINDS, NET_KINDS, STREAM_KINDS,
                   FaultPlan, FaultSpec)

__all__ = [
    "ChaosProxy",
    "FaultPlan",
    "FaultSpec",
    "FaultyIO",
    "FaultyStream",
    "InjectedIOError",
    "corrupt_file",
    "corrupt_frame_bytes",
    "trace_writer_wrap",
    "IO_READ_KINDS",
    "IO_WRITE_KINDS",
    "NET_KINDS",
    "STREAM_KINDS",
]
