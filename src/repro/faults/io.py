"""Fault-injecting wrappers for file handles and event iterators.

:class:`FaultyIO` wraps a binary file object and fires plan specs at
scripted read/write call indices -- ``EIO``, stalls, ``SIGKILL`` mid
write (a scripted ``kill -9`` *during* a checkpoint write), disk-full
partial writes, short reads, bit-flips.  Operation indices are counted
on the plan, cumulatively across every handle opened for the same
target, so "kill during the 3rd checkpoint's write" is expressible as a
single absolute write index.

:class:`FaultyStream` wraps an event iterator and *inserts* faults --
stalls (a transient ``InjectedIOError`` the retry layer must absorb),
malformed garbage, duplicate and time-regressed copies of real events.
Injections never consume or replace an underlying event, so the valid
subsequence is exactly the clean stream: a pipeline that quarantines
every injection provably computes the fault-free answer.

:func:`corrupt_file` applies after-the-fact corruption (truncation,
bit-flips) to files already on disk -- torn-write simulation for
checkpoint-chain tests.
"""

from __future__ import annotations

import errno
import os
import signal
from typing import IO, Callable, Iterator

from .plan import FaultPlan, FaultSpec

__all__ = ["InjectedIOError", "FaultyIO", "FaultyStream", "corrupt_file",
           "corrupt_frame_bytes", "trace_writer_wrap"]


class InjectedIOError(OSError):
    """A scripted transient I/O failure (``errno.EAGAIN``)."""

    def __init__(self, message: str) -> None:
        super().__init__(errno.EAGAIN, message)


def _default_kill() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


class FaultyIO:
    """A file-object proxy that injects faults at scripted call indices.

    Reads and writes are counted separately (plan counter keys
    ``{target}#r`` / ``{target}#w``).  Anything not intercepted is
    delegated to the wrapped handle, so the proxy drops into any code
    that expects a file object (including ``np.savez``).
    """

    def __init__(self, fh: IO[bytes], plan: FaultPlan, target: str, *,
                 sleep: Callable[[float], None] | None = None,
                 kill: Callable[[], None] | None = None) -> None:
        self._fh = fh
        self._plan = plan
        self._target = target
        self._specs = plan.for_target(target)
        self._reads = plan.counter(f"{target}#r")
        self._writes = plan.counter(f"{target}#w")
        self._sleep = sleep or __import__("time").sleep
        self._kill = kill or _default_kill
        self._truncated = False

    # -- intercepted calls ---------------------------------------------

    def write(self, data) -> int:
        index = self._writes.n
        self._writes.n += 1
        for spec in self._specs.get(index, ()):
            if not self._plan.claim(spec):
                continue
            if spec.kind == "eio":
                raise OSError(errno.EIO, f"injected EIO on write {index} "
                                         f"of {self._target}")
            if spec.kind == "stall":
                self._sleep(float(spec.arg or 0.01))
            elif spec.kind == "kill":
                self._fh.flush()
                self._kill()
            elif spec.kind == "partial_write":
                self._fh.write(data[:len(data) // 2])
                raise OSError(errno.ENOSPC,
                              f"injected disk-full after partial write "
                              f"{index} of {self._target}")
        return self._fh.write(data)

    def writelines(self, lines) -> None:
        # The trace writers batch records through ``writelines``; routing
        # each line through :meth:`write` keeps write-index fault specs
        # meaningful (one index per record, not per 8192-record batch).
        for line in lines:
            self.write(line)

    def read(self, size: int = -1) -> bytes:
        if self._truncated:
            return b""
        index = self._reads.n
        self._reads.n += 1
        data = None
        for spec in self._specs.get(index, ()):
            if not self._plan.claim(spec):
                continue
            if spec.kind == "eio":
                raise OSError(errno.EIO, f"injected EIO on read {index} "
                                         f"of {self._target}")
            if spec.kind == "stall":
                self._sleep(float(spec.arg or 0.01))
            elif spec.kind == "truncate":
                data = self._fh.read(size)
                keep = int(spec.arg) if spec.arg is not None else len(data) // 2
                data = data[:keep]
                self._truncated = True
            elif spec.kind == "bitflip":
                buf = bytearray(self._fh.read(size))
                if buf:
                    rng = self._plan.rng(spec)
                    bit = rng.randrange(8 * len(buf))
                    buf[bit // 8] ^= 1 << (bit % 8)
                data = bytes(buf)
        if data is None:
            data = self._fh.read(size)
        return data

    # -- passthrough ---------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self._fh, name)

    def __enter__(self) -> "FaultyIO":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._fh.close()

    def __iter__(self):
        return iter(self._fh)


class FaultyStream:
    """An event-iterator proxy that *inserts* scripted stream faults.

    ``source`` is any object with an integer ``pos`` (absolute index of
    the next underlying event -- typically maintained by the replayable
    source that owns the iterator) and a ``last_event`` attribute;
    faults fire when ``pos`` reaches a spec's ``at``.  Because firing
    state lives on the plan, a retry that re-opens the stream (and thus
    rebuilds this wrapper) resumes exactly where the fault schedule left
    off instead of replaying already-fired faults.
    """

    def __init__(self, events: Iterator, plan: FaultPlan, source) -> None:
        self._events = events
        self._plan = plan
        self._source = source
        self._specs = plan.for_target(source.name)

    def __iter__(self) -> "FaultyStream":
        return self

    def __next__(self):
        injected = self._inject_at(self._source.pos)
        if injected is not _NOTHING:
            return injected
        return next(self._events)

    def _inject_at(self, pos: int):
        for spec in self._specs.get(pos, ()):
            if not self._plan.claim(spec):
                continue
            if spec.kind == "stall":
                raise InjectedIOError(
                    f"injected stall at event {pos} of {self._source.name}")
            if spec.kind == "eio":
                raise OSError(errno.EIO, f"injected EIO at event {pos} of "
                                         f"{self._source.name}")
            if spec.kind == "malformed":
                return self._garbage(spec, pos)
            last = self._source.last_event
            if last is None:
                continue  # nothing to duplicate/regress yet; spec spent
            if spec.kind == "duplicate":
                return last
            if spec.kind == "regress":
                delta = int(spec.arg) if spec.arg is not None else 86_400
                return type(last)(last.ts - delta, last.kind, last.payload)
        return _NOTHING

    def _garbage(self, spec: FaultSpec, pos: int):
        rng = self._plan.rng(spec)
        # Advance the RNG once per firing so consecutive injections from
        # one spec (count > 1) differ, yet the sequence stays seeded.
        for _ in range(self._plan.fired(spec)):
            rng.random()
        last = self._source.last_event
        shapes = ["none", "text", "object"]
        if last is not None:
            shapes += ["bad_kind", "bad_payload"]
        shape = rng.choice(shapes)
        if shape == "none":
            return None
        if shape == "text":
            return f"garbage|{self._source.name}|{pos}|{rng.random():.6f}"
        if shape == "object":
            return object()
        if shape == "bad_kind":
            return type(last)(last.ts, f"garbage-{pos}", last.payload)
        return type(last)(last.ts, last.kind, None)


_NOTHING = object()


def trace_writer_wrap(plan: FaultPlan, target: str, *,
                      sleep: Callable[[float], None] | None = None,
                      kill: Callable[[], None] | None = None,
                      ) -> Callable[[IO], IO]:
    """A ``wrap`` hook for the trace writers, driven by a fault plan.

    Pass the result as ``write_jobs(..., wrap=...)`` (or any other trace
    writer / ``atomic_output``): every record the writer emits becomes
    one counted write on ``{target}#w``, so a plan can script "EIO on
    record 1000" or "SIGKILL while appending record 52_000" against a
    trace *writer* exactly the way checkpoint plans script faults
    against the checkpoint stream.  The atomic writers turn an injected
    failure into an aborted tmp sibling (destination untouched); a
    ``kill`` leaves the torn ``.tmp`` tail behind for crash-recovery
    tests.
    """
    def wrap(fh: IO) -> IO:
        return FaultyIO(fh, plan, target, sleep=sleep, kill=kill)
    return wrap


def corrupt_file(path: str, kind: str = "truncate", *, seed: int = 0,
                 frac: float = 0.5) -> None:
    """Corrupt an on-disk file in place (torn-write simulation).

    ``truncate`` keeps the first ``frac`` of the file -- what a crash
    between a partial write and the rename-barrier fsync can leave
    behind; ``torn_tail`` chops a seeded-random sliver (1--64 bytes) off
    the end -- the signature a killed appender leaves: a final record
    cut mid-line, or a gzip member missing its end-of-stream marker;
    ``bitflip`` flips one seeded-random bit in place -- silent media
    corruption.
    """
    size = os.path.getsize(path)
    if kind == "truncate":
        with open(path, "r+b") as fh:
            fh.truncate(max(1, int(size * frac)))
    elif kind == "torn_tail":
        import random

        rng = random.Random(f"{seed}|{path}|{size}")
        cut = min(max(1, size - 1), rng.randrange(1, 65))
        with open(path, "r+b") as fh:
            fh.truncate(size - cut)
    elif kind == "bitflip":
        import random

        rng = random.Random(f"{seed}|{path}|{size}")
        offset = rng.randrange(max(1, size))
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ (1 << rng.randrange(8))]))
    else:
        raise ValueError(f"unknown corruption kind {kind!r}")


def corrupt_frame_bytes(frame: bytes, kind: str = "bitflip", *,
                        seed: int = 0) -> bytes:
    """Damage one encoded wire frame the way a faulty transport would.

    ``bitflip`` flips one seeded-random bit inside the *payload* (never
    the length header, so the frame stays parseable and the damage must
    be caught by the CRC trailer); ``torn`` chops a seeded-random sliver
    off the end -- what a producer killed mid-``sendall`` leaves in the
    stream; ``crc`` flips the low bit of the payload's final byte --
    the CRC trailer itself for a v2 binary batch frame.
    """
    import random

    rng = random.Random(f"{seed}|frame|{len(frame)}")
    head = frame.index(b"\n") + 1
    if kind == "bitflip":
        body = bytearray(frame)
        # Payload spans [head, len-1); the final byte is the "\n" epilogue.
        offset = head + rng.randrange(max(1, len(frame) - 1 - head))
        body[offset] ^= 1 << rng.randrange(8)
        return bytes(body)
    if kind == "torn":
        cut = rng.randrange(1, max(2, min(65, len(frame) - head)))
        return frame[:len(frame) - cut]
    if kind == "crc":
        body = bytearray(frame)
        body[len(frame) - 2] ^= 0x01
        return bytes(body)
    raise ValueError(f"unknown frame corruption kind {kind!r}")
