"""Deterministic network chaos: a FaultPlan-scripted TCP proxy.

:class:`ChaosProxy` sits between publishers and a socket-ingest server
and applies scripted faults to the client->server byte stream of each
proxied connection -- severing connections mid-frame, stalling,
corrupting, dropping, or splitting bytes -- at exact, seeded byte
offsets, so a chaos test replays the identical failure sequence every
run.

Targets and offsets
-------------------
When a client connects, the proxy peeks its first frame (the ``hello``)
to learn which source the connection feeds and keys the connection to
the fault target ``<name>:<source>`` (default ``net:jobs``,
``net:accesses``, ...).  The spec's ``at`` is the **cumulative**
client->server byte offset for that target across *all* of its
connections: after a sever, the producer reconnects and resumes, and
the resumed bytes keep counting from where the severed connection
stopped.  That makes multi-sever schedules deterministic end to end:
the bytes a server received before a sever are a pure function of the
offset, hence so is its resume cursor, hence so are the bytes the
producer sends next.

Kinds (see :data:`~repro.faults.plan.NET_KINDS`):

* ``sever`` -- forward exactly ``at`` bytes, then hard-close both
  sides (the mid-frame tear every reconnect path must survive).
* ``stall`` -- sleep ``arg`` seconds (default 0.05) at the offset.
* ``corrupt`` -- flip one seeded bit of the byte at the offset.
* ``drop`` -- swallow ``arg`` bytes (default 1) at the offset.
* ``split`` -- forward the next ``arg`` bytes (default 1) one byte per
  send, forcing frame reassembly on the receiver.

Server->client bytes (acks) are relayed verbatim: the interesting
failure surface is the event stream, and keeping acks clean makes the
deterministic-cursor argument airtight.
"""

from __future__ import annotations

import socket
import threading
import time

from .plan import NET_KINDS, FaultPlan, FaultSpec

__all__ = ["ChaosProxy"]

_CHUNK = 65536
_PEEK_LIMIT = 1 << 20


class _Severed(Exception):
    """Internal: a sever fault fired on this connection."""


class ChaosProxy:
    """A scripted man-in-the-middle for socket ingestion.

    ``listen`` and ``upstream`` are address specs in the server's
    ``host:port`` / ``unix:/path`` syntax.  The proxy accepts any
    number of connections, each handled by a pair of pump threads; it
    is transparent when the plan has no matching specs.
    """

    def __init__(self, listen: str, upstream: str, plan: FaultPlan, *,
                 name: str = "net", backlog: int = 16,
                 connect_timeout: float = 10.0) -> None:
        # Runtime import: the address/listener helpers live with the
        # wire protocol, and faults.plan must stay importable without
        # the server package.
        from ..server.protocol import create_listener

        self.upstream = upstream
        self.plan = plan
        self.name = name
        self.connect_timeout = connect_timeout
        self.connections = 0
        self.severed = 0
        self.stalled = 0
        self.corrupted = 0
        self.dropped_bytes = 0
        self.splits = 0
        self.forwarded_bytes = 0
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._sock = create_listener(listen, backlog)
        if listen.startswith("unix:"):
            self.address = listen
        else:
            host, port = self._sock.getsockname()[:2]
            self.address = f"{host}:{port}"
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"chaos-proxy:{self.address}",
            daemon=True)
        self._accept_thread.start()

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def describe(self) -> dict:
        return {
            "address": self.address,
            "upstream": self.upstream,
            "connections": self.connections,
            "severed": self.severed,
            "stalled": self.stalled,
            "corrupted": self.corrupted,
            "dropped_bytes": self.dropped_bytes,
            "splits": self.splits,
            "forwarded_bytes": self.forwarded_bytes,
        }

    # -- accept/pump ---------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            with self._lock:
                self.connections += 1
            thread = threading.Thread(
                target=self._handle, args=(conn,),
                name=f"chaos-conn:{self.address}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _peek_source(self, csock: socket.socket) -> tuple[bytes, str]:
        """Buffer the first frame and extract the hello's source name.

        The buffered bytes are NOT consumed -- they are returned and
        forwarded through the fault pipeline like everything else, so
        offsets count from the very first byte of the connection.
        """
        import json

        buf = b""
        while len(buf) < _PEEK_LIMIT:
            nl = buf.find(b"\n")
            if nl >= 0:
                try:
                    need = nl + 1 + int(buf[:nl]) + 1
                except ValueError:
                    return buf, "unknown"
                if len(buf) >= need:
                    try:
                        hello = json.loads(buf[nl + 1:need - 1])
                        return buf, str(hello.get("source", "unknown"))
                    except (ValueError, AttributeError):
                        return buf, "unknown"
            chunk = csock.recv(_CHUNK)
            if not chunk:
                return buf, "unknown"
            buf += chunk
        return buf, "unknown"

    def _specs_for(self, target: str) -> list[FaultSpec]:
        return sorted(
            (s for s in self.plan.specs
             if s.target == target and s.kind in NET_KINDS),
            key=lambda s: s.at)

    def _feed(self, ssock: socket.socket, data: bytes,
              specs: list[FaultSpec], cell) -> None:
        """Forward ``data`` upstream, applying any due faults."""
        plan = self.plan
        while data:
            hit = None
            window_end = cell.n + len(data)
            for spec in specs:
                if spec.at >= window_end:
                    break  # sorted: nothing further is due either
                if plan.fired(spec) >= spec.count:
                    continue
                if spec.at >= cell.n:
                    hit = spec
                    break
            if hit is None:
                ssock.sendall(data)
                with self._lock:
                    self.forwarded_bytes += len(data)
                cell.n += len(data)
                return
            cut = hit.at - cell.n
            if cut:
                ssock.sendall(data[:cut])
                with self._lock:
                    self.forwarded_bytes += cut
                cell.n += cut
                data = data[cut:]
            if not plan.claim(hit):
                continue
            kind = hit.kind
            if kind == "sever":
                with self._lock:
                    self.severed += 1
                raise _Severed
            if kind == "stall":
                with self._lock:
                    self.stalled += 1
                time.sleep(hit.arg if hit.arg is not None else 0.05)
            elif kind == "corrupt":
                flipped = bytearray(data[:1])
                flipped[0] ^= 1 << plan.rng(hit).randrange(8)
                ssock.sendall(bytes(flipped))
                with self._lock:
                    self.corrupted += 1
                    self.forwarded_bytes += 1
                cell.n += 1
                data = data[1:]
            elif kind == "drop":
                k = min(int(hit.arg or 1), len(data))
                with self._lock:
                    self.dropped_bytes += k
                cell.n += k  # dropped bytes still occupy stream offsets
                data = data[k:]
            elif kind == "split":
                k = min(int(hit.arg or 1), len(data))
                for i in range(k):
                    ssock.sendall(data[i:i + 1])
                with self._lock:
                    self.splits += 1
                    self.forwarded_bytes += k
                cell.n += k
                data = data[k:]

    def _pump_down(self, ssock: socket.socket,
                   csock: socket.socket) -> None:
        """Relay server->client bytes (acks) verbatim."""
        try:
            while True:
                chunk = ssock.recv(_CHUNK)
                if not chunk:
                    break
                csock.sendall(chunk)
        except OSError:
            pass
        try:
            csock.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _handle(self, csock: socket.socket) -> None:
        from ..server.protocol import connect_socket

        ssock: socket.socket | None = None
        try:
            head, source = self._peek_source(csock)
            target = f"{self.name}:{source}"
            specs = self._specs_for(target)
            cell = self.plan.counter(target)
            try:
                ssock = connect_socket(self.upstream,
                                       timeout=self.connect_timeout)
            except OSError:
                return  # upstream down: client sees EOF and retries
            ssock.settimeout(None)
            down = threading.Thread(
                target=self._pump_down, args=(ssock, csock),
                name=f"chaos-down:{self.address}", daemon=True)
            down.start()
            try:
                if head:
                    self._feed(ssock, head, specs, cell)
                while True:
                    chunk = csock.recv(_CHUNK)
                    if not chunk:
                        try:
                            ssock.shutdown(socket.SHUT_WR)
                        except OSError:
                            pass
                        break
                    self._feed(ssock, chunk, specs, cell)
            except _Severed:
                # Hard-close both sides NOW: the server sees a clean
                # EOF after an exact byte prefix; the client sees a
                # reset mid-send and enters its backoff/reconnect loop.
                for sock_ in (ssock, csock):
                    try:
                        sock_.close()
                    except OSError:
                        pass
                return
            except OSError:
                pass
            down.join()
        finally:
            for sock_ in (ssock, csock):
                if sock_ is None:
                    continue
                try:
                    sock_.close()
                except OSError:
                    pass
