"""Fault plans: scripted, seeded, reproducible failure schedules.

A plan is a list of :class:`FaultSpec` entries.  Each spec names

* a **target** -- a label the wrapping site chooses ("jobs",
  "accesses", "checkpoint", ...),
* a **kind** -- what goes wrong (see the kind sets below),
* **at** -- the zero-based operation index at which the fault fires
  (events emitted for stream targets, read/write calls for IO targets),
* **count** -- how many times the spec fires in total (default once),
* **arg** -- a kind-specific parameter (stall seconds, bytes to keep,
  timestamp delta, ...).

Two properties make plans usable inside bit-identity tests:

1. **Determinism.**  Any randomness a fault needs (garbage payload
   shape, which bit to flip) comes from :meth:`FaultPlan.rng`, seeded by
   ``(plan.seed, target, kind, at)`` -- the same plan always produces
   the same corruption.
2. **Process-global firing.**  Fired counts live on the plan, not on
   the wrapper, so a retried source that re-opens (and therefore
   re-wraps) its underlying stream does not re-trigger a fault that
   already fired -- exactly how a transient real-world failure behaves.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass

__all__ = ["STREAM_KINDS", "IO_WRITE_KINDS", "IO_READ_KINDS", "NET_KINDS",
           "FaultSpec", "FaultPlan"]

#: Faults a :class:`~repro.faults.io.FaultyStream` understands.
STREAM_KINDS = frozenset({"stall", "eio", "malformed", "duplicate",
                          "regress"})
#: Faults a :class:`~repro.faults.io.FaultyIO` applies to ``write`` calls.
IO_WRITE_KINDS = frozenset({"eio", "stall", "kill", "partial_write"})
#: Faults a :class:`~repro.faults.io.FaultyIO` applies to ``read`` calls.
IO_READ_KINDS = frozenset({"eio", "stall", "truncate", "bitflip"})
#: Faults the :class:`~repro.faults.net.ChaosProxy` applies to a
#: proxied connection's client->server byte stream; ``at`` is the
#: cumulative byte offset per proxy target (``net:<source>``).
NET_KINDS = frozenset({"sever", "stall", "corrupt", "drop", "split"})

_KNOWN_KINDS = STREAM_KINDS | IO_WRITE_KINDS | IO_READ_KINDS | NET_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: *kind* strikes *target* at operation *at*."""

    target: str
    kind: str
    at: int
    count: int = 1
    arg: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KNOWN_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(known: {sorted(_KNOWN_KINDS)})")
        if self.at < 0:
            raise ValueError("fault index 'at' must be non-negative")
        if self.count < 1:
            raise ValueError("fault count must be >= 1")


class _OpCounter:
    """A mutable operation counter shared across re-opened wrappers."""

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0


class FaultPlan:
    """A seeded collection of fault specs with process-global firing."""

    def __init__(self, specs: object = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self.specs: list[FaultSpec] = []
        for spec in specs:
            if isinstance(spec, dict):
                spec = FaultSpec(**spec)
            self.specs.append(spec)
        self._fired: dict[FaultSpec, int] = {}
        self._counters: dict[str, _OpCounter] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(data.get("faults", ()), seed=data.get("seed", 0))

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "faults": [asdict(spec) for spec in self.specs]}

    # -- scheduling ----------------------------------------------------

    def for_target(self, target: str) -> dict[int, list[FaultSpec]]:
        """Specs for ``target``, indexed by firing position.

        Wrappers look their current operation index up in this mapping;
        an O(1) probe per operation keeps thousand-spec plans (e.g. "1 %
        of events are malformed") from costing O(specs) per event.
        """
        by_at: dict[int, list[FaultSpec]] = {}
        for spec in self.specs:
            if spec.target == target:
                by_at.setdefault(spec.at, []).append(spec)
        return by_at

    def has_target(self, target: str) -> bool:
        return any(spec.target == target for spec in self.specs)

    def claim(self, spec: FaultSpec) -> bool:
        """Consume one firing of ``spec``; False once its count is spent."""
        fired = self._fired.get(spec, 0)
        if fired >= spec.count:
            return False
        self._fired[spec] = fired + 1
        return True

    def fired(self, spec: FaultSpec) -> int:
        return self._fired.get(spec, 0)

    def counter(self, key: str) -> _OpCounter:
        """The shared operation counter for ``key`` (e.g. ``"ck#w"``)."""
        cell = self._counters.get(key)
        if cell is None:
            cell = self._counters[key] = _OpCounter()
        return cell

    def rng(self, spec: FaultSpec) -> random.Random:
        """A deterministic RNG scoped to one spec."""
        return random.Random(
            f"{self.seed}|{spec.target}|{spec.kind}|{spec.at}")
