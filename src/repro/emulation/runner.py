"""Multi-policy comparison harness (FLT vs ActiveDR by default).

Runs the selected policies over *identical replicas* of the same snapshot
file system and the same traces, which is exactly how the paper derives
Figs. 6-11: each policy gets its own copy of the virtual file system, the
same 7-day purge trigger, the same purge target, and the same access log.
``policies=`` widens the comparison to the full retention spectrum --
the two related-work baselines ``ValueBased`` and ``ScratchAsCache``
ride along with FLT/ActiveDR when asked for (``policies="spectrum"``).

Two engines drive the replay:

* ``engine="reference"`` -- the per-record :class:`Emulator` (default);
* ``engine="fast"`` -- the columnar :class:`FastEmulator`, replaying a
  :class:`CompiledTrace` built once and shared by both policies (and, via
  the ``compiled=`` argument, by every lifetime of a sweep).  Results are
  bit-identical to the reference engine.

``run_lifetime_sweep`` and ``single_snapshot_comparison`` additionally
take ``n_ranks`` to farm lifetime configurations across worker processes
on the :func:`repro.parallel.comm.run_spmd` substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

import numpy as np

from ..core.cache_policy import JobResidencyIndex, ScratchAsCachePolicy
from ..core.classification import UserClass
from ..core.config import RetentionConfig
from ..core.exemption import ExemptionList
from ..core.flt import FixedLifetimePolicy
from ..core.incremental import build_activity_store
from ..core.policy import RetentionPolicy
from ..core.retention import ActiveDRPolicy
from ..core.value_based import ValueBasedPolicy
from ..parallel.comm import run_spmd
from ..synth.titan import TitanDataset
from .compiled import CompiledTrace, FastEmulator, compile_dataset, replay_bounds
from .emulator import Emulator, EmulatorConfig, EmulationResult

__all__ = ["ComparisonResult", "ComparisonRunner", "run_lifetime_sweep",
           "single_snapshot_comparison", "normalize_policies",
           "FLT", "ACTIVEDR", "VALUEBASED", "SCRATCHCACHE", "SPECTRUM"]

FLT = "FLT"
ACTIVEDR = "ActiveDR"
VALUEBASED = "ValueBased"
SCRATCHCACHE = "ScratchAsCache"

#: The full retention spectrum, conservative to aggressive.
SPECTRUM = (FLT, ACTIVEDR, VALUEBASED, SCRATCHCACHE)

_POLICY_ALIASES = {
    "flt": FLT, "fixedlifetime": FLT,
    "activedr": ACTIVEDR, "adr": ACTIVEDR,
    "value": VALUEBASED, "valuebased": VALUEBASED,
    "cache": SCRATCHCACHE, "scratch": SCRATCHCACHE,
    "scratchascache": SCRATCHCACHE,
}


def normalize_policies(policies: str | Iterable[str]) -> tuple[str, ...]:
    """Canonical policy-name tuple for a spectrum selector.

    Accepts canonical names, CLI-style aliases (``value``, ``cache``,
    ``adr``...), and the strings ``"spectrum"`` / ``"all"`` for the full
    four-policy spectrum.  Order is preserved, duplicates dropped.
    """
    if isinstance(policies, str):
        if policies.lower() in ("spectrum", "all"):
            return SPECTRUM
        policies = (policies,)
    out: list[str] = []
    for name in policies:
        canon = _POLICY_ALIASES.get(str(name).lower())
        if canon is None:
            raise ValueError(
                f"unknown policy {name!r}; expected one of "
                f"{sorted(_POLICY_ALIASES)} or 'spectrum'")
        if canon not in out:
            out.append(canon)
    if not out:
        raise ValueError("policy selection is empty")
    return tuple(out)


@dataclass(slots=True)
class ComparisonResult:
    """Paired replay results keyed by policy name."""

    lifetime_days: float
    results: dict[str, EmulationResult] = field(default_factory=dict)

    def __getitem__(self, policy: str) -> EmulationResult:
        return self.results[policy]

    def total_misses(self, policy: str) -> int:
        return self.results[policy].metrics.total_misses

    def miss_reduction(self) -> float:
        """Overall fraction of FLT misses that ActiveDR avoided."""
        flt = self.total_misses(FLT)
        if flt == 0:
            return 0.0
        return 1.0 - self.total_misses(ACTIVEDR) / flt

    def group_miss_reduction(self, group: UserClass) -> float:
        """Per-group miss-reduction ratio (the Fig. 8 statistic)."""
        flt = self.results[FLT].metrics.total_group_misses(group)
        if flt == 0:
            return 0.0
        adr = self.results[ACTIVEDR].metrics.total_group_misses(group)
        return 1.0 - adr / flt

    def daily_group_reduction_ratios(self, group: UserClass) -> np.ndarray:
        """Per-day reduction ratios on days where FLT missed (Fig. 8 box)."""
        flt = self.results[FLT].metrics.group_misses[group].astype(np.float64)
        adr = self.results[ACTIVEDR].metrics.group_misses[group].astype(np.float64)
        mask = flt > 0
        if not mask.any():
            return np.empty(0, dtype=np.float64)
        return np.clip(1.0 - adr[mask] / flt[mask], -np.inf, 1.0)


class ComparisonRunner:
    """Drives the paired replay for one lifetime configuration."""

    def __init__(self, dataset: TitanDataset,
                 config: RetentionConfig | None = None,
                 emulator_config: EmulatorConfig | None = None,
                 exemptions: ExemptionList | None = None,
                 flt_enforce_target: bool = False,
                 engine: str = "reference",
                 compiled: CompiledTrace | None = None,
                 policies: str | Iterable[str] = (FLT, ACTIVEDR),
                 residency: JobResidencyIndex | None = None) -> None:
        # flt_enforce_target=False is the paper's setup: the FLT baseline
        # "purges the files as in the logs" with no preparation and no
        # target, while ActiveDR stops the moment the target is reached.
        if engine not in ("reference", "fast"):
            raise ValueError(f"unknown engine {engine!r}")
        self.dataset = dataset
        self.config = config or RetentionConfig()
        self.emulator_config = emulator_config or EmulatorConfig()
        self.exemptions = exemptions
        self.flt_enforce_target = flt_enforce_target
        self.engine = engine
        self.compiled = compiled
        self.policies = normalize_policies(policies)
        self.residency = residency

    def _make_policy(self, name: str) -> RetentionPolicy:
        if name == FLT:
            return FixedLifetimePolicy(
                self.config, enforce_target=self.flt_enforce_target)
        if name == ACTIVEDR:
            return ActiveDRPolicy(self.config)
        if name == VALUEBASED:
            return ValueBasedPolicy(self.config)
        # ScratchAsCache: the residency index is trace-derived, so one
        # instance serves every lifetime of a sweep.
        if self.residency is None:
            self.residency = JobResidencyIndex(self.dataset.jobs)
        return ScratchAsCachePolicy(self.config, residency=self.residency)

    def run(self) -> ComparisonResult:
        ds = self.dataset
        out = ComparisonResult(lifetime_days=self.config.lifetime_days)
        known_uids = [u.uid for u in ds.users]

        policies = [self._make_policy(name) for name in self.policies]
        if self.engine == "fast":
            if self.compiled is None:
                self.compiled = compile_dataset(ds)
            # All policies trigger at the same instants with the same
            # params, so each activeness evaluation is computed once.
            cache: dict = {}
            for policy in policies:
                emulator = FastEmulator(policy, self.config.activeness,
                                        self.emulator_config, self.exemptions)
                out.results[policy.name] = emulator.run(
                    self.compiled, known_uids=known_uids,
                    activeness_cache=cache)
            return out

        # Shared preprocessing: all replays evaluate activeness from one
        # consolidated store instead of re-sorting activities per policy.
        store = build_activity_store(ds.jobs, ds.publications)
        store.consolidate()
        start, end = replay_bounds(ds)
        for policy in policies:
            emulator = Emulator(policy, self.config.activeness,
                                self.emulator_config, self.exemptions)
            fs = ds.fresh_filesystem()
            result = emulator.run(fs, ds.accesses, ds.jobs, ds.publications,
                                  start, end, known_uids=known_uids,
                                  activity_store=store)
            out.results[policy.name] = result
        return out


def _lifetime_config(base: RetentionConfig, lifetime: float) -> RetentionConfig:
    """Derive the per-lifetime configuration used by sweeps and snapshots.

    Period length of the activeness evaluation follows the lifetime, as in
    the paper's "period length (days)" axis.  Everything else -- on both
    the retention config and its nested activeness params -- carries over
    from ``base`` verbatim (``dataclasses.replace`` rather than a
    field-by-field rebuild, which once silently dropped ``max_periods``).
    """
    return replace(base, lifetime_days=lifetime,
                   activeness=replace(base.activeness, period_days=lifetime))


def _sweep_worker(comm, payload):
    """SPMD body: each rank replays a round-robin share of lifetimes."""
    dataset, lifetimes, base, runner_kwargs = payload
    out = {}
    for lifetime in lifetimes[comm.rank::comm.size]:
        runner = ComparisonRunner(dataset, _lifetime_config(base, lifetime),
                                  **runner_kwargs)
        out[lifetime] = runner.run()
    return out


def run_lifetime_sweep(dataset: TitanDataset,
                       lifetimes: tuple[float, ...] = (7.0, 30.0, 60.0, 90.0),
                       base_config: RetentionConfig | None = None,
                       n_ranks: int = 1,
                       **runner_kwargs) -> dict[float, ComparisonResult]:
    """The Figs. 9-11 / Tables 4-6 sweep over file-lifetime settings.

    Each lifetime gets a full paired replay; the caller reads the final
    retention report of each run for retained/purged/affected-user rows.
    With ``n_ranks > 1`` the lifetime configurations are farmed across
    worker processes (fork-based SPMD); results are identical to the
    serial sweep.  With ``engine="fast"`` the trace is compiled once and
    shared by every lifetime and rank.  ``policies="spectrum"`` widens
    each paired replay to the full four-policy retention spectrum; the
    job-residency index the cache baseline needs is likewise built once
    and shared.
    """
    base = base_config or RetentionConfig()
    lifetimes = tuple(lifetimes)
    policies = normalize_policies(runner_kwargs.get("policies",
                                                    (FLT, ACTIVEDR)))
    runner_kwargs = {**runner_kwargs, "policies": policies}
    if (runner_kwargs.get("engine") == "fast"
            and runner_kwargs.get("compiled") is None):
        runner_kwargs["compiled"] = compile_dataset(dataset)
    if SCRATCHCACHE in policies and runner_kwargs.get("residency") is None:
        runner_kwargs["residency"] = JobResidencyIndex(dataset.jobs)
    payload = (dataset, lifetimes, base, runner_kwargs)
    if n_ranks <= 1:
        merged = _sweep_worker(_SerialRank(), payload)
    else:
        merged = {}
        for part in run_spmd(_sweep_worker, n_ranks, payload):
            merged.update(part)
    return {lifetime: merged[lifetime] for lifetime in lifetimes}


class _SerialRank:
    """Minimal rank identity for running the SPMD body inline."""

    rank = 0
    size = 1


def _snapshot_worker(comm, payload):
    """SPMD body for :func:`single_snapshot_comparison`."""
    (state, store, known, base, lifetimes, t_c, exemptions) = payload
    out = {}
    for lifetime in lifetimes[comm.rank::comm.size]:
        config = _lifetime_config(base, lifetime)
        activeness = store.evaluate(t_c, config.activeness, known)
        reports = {}
        for policy in (FixedLifetimePolicy(config, enforce_target=True),
                       ActiveDRPolicy(config)):
            fs = state.replicate()
            reports[policy.name] = policy.run(fs, t_c,
                                              activeness=activeness,
                                              exemptions=exemptions)
        out[lifetime] = reports
    return out


def single_snapshot_comparison(
        dataset: TitanDataset,
        lifetimes: tuple[float, ...] = (7.0, 30.0, 60.0, 90.0),
        base_config: RetentionConfig | None = None,
        snapshot_day: int = 235,
        exemptions: ExemptionList | None = None,
        n_ranks: int = 1):
    """One-shot retention on an identical mid-year snapshot (section 4.4).

    The paper's Figs. 9-11 / Tables 4-6 come from running both policies,
    with the same purge target, against the same weekly metadata snapshot
    (captured Aug 23, 2016 -- day ~235).  This harness reconstructs that
    state by advancing the snapshot FS through the access trace with no
    retention, then runs FLT (target-enforced) and ActiveDR once each on
    replicas, per lifetime setting.  ``n_ranks > 1`` shards the lifetime
    settings across worker processes.  Returns
    ``{lifetime: {policy_name: RetentionReport}}``.
    """
    from .emulator import advance_filesystem

    base = base_config or RetentionConfig()
    t_c = replay_bounds(dataset)[0] + snapshot_day * 86_400

    state = dataset.fresh_filesystem()
    advance_filesystem(state, dataset.accesses, t_c)

    store = build_activity_store(dataset.jobs, dataset.publications)
    store.consolidate()  # once, pre-fork, instead of once per worker
    known = [u.uid for u in dataset.users]

    lifetimes = tuple(lifetimes)
    payload = (state, store, known, base, lifetimes, t_c, exemptions)
    if n_ranks <= 1:
        merged = _snapshot_worker(_SerialRank(), payload)
    else:
        merged = {}
        for part in run_spmd(_snapshot_worker, n_ranks, payload):
            merged.update(part)
    return {lifetime: merged[lifetime] for lifetime in lifetimes}
