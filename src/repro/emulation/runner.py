"""FLT-vs-ActiveDR comparison harness.

Runs both policies over *identical replicas* of the same snapshot file
system and the same traces, which is exactly how the paper derives
Figs. 6-11: each policy gets its own copy of the virtual file system, the
same 7-day purge trigger, the same purge target, and the same access log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.classification import UserClass
from ..core.config import RetentionConfig
from ..core.exemption import ExemptionList
from ..core.flt import FixedLifetimePolicy
from ..core.retention import ActiveDRPolicy
from ..synth.titan import TitanDataset
from .emulator import Emulator, EmulatorConfig, EmulationResult

__all__ = ["ComparisonResult", "ComparisonRunner", "run_lifetime_sweep"]

FLT = "FLT"
ACTIVEDR = "ActiveDR"


@dataclass(slots=True)
class ComparisonResult:
    """Paired replay results keyed by policy name."""

    lifetime_days: float
    results: dict[str, EmulationResult] = field(default_factory=dict)

    def __getitem__(self, policy: str) -> EmulationResult:
        return self.results[policy]

    def total_misses(self, policy: str) -> int:
        return self.results[policy].metrics.total_misses

    def miss_reduction(self) -> float:
        """Overall fraction of FLT misses that ActiveDR avoided."""
        flt = self.total_misses(FLT)
        if flt == 0:
            return 0.0
        return 1.0 - self.total_misses(ACTIVEDR) / flt

    def group_miss_reduction(self, group: UserClass) -> float:
        """Per-group miss-reduction ratio (the Fig. 8 statistic)."""
        flt = self.results[FLT].metrics.total_group_misses(group)
        if flt == 0:
            return 0.0
        adr = self.results[ACTIVEDR].metrics.total_group_misses(group)
        return 1.0 - adr / flt

    def daily_group_reduction_ratios(self, group: UserClass) -> np.ndarray:
        """Per-day reduction ratios on days where FLT missed (Fig. 8 box)."""
        flt = self.results[FLT].metrics.group_misses[group].astype(np.float64)
        adr = self.results[ACTIVEDR].metrics.group_misses[group].astype(np.float64)
        mask = flt > 0
        if not mask.any():
            return np.empty(0, dtype=np.float64)
        return np.clip(1.0 - adr[mask] / flt[mask], -np.inf, 1.0)


class ComparisonRunner:
    """Drives the paired replay for one lifetime configuration."""

    def __init__(self, dataset: TitanDataset,
                 config: RetentionConfig | None = None,
                 emulator_config: EmulatorConfig | None = None,
                 exemptions: ExemptionList | None = None,
                 flt_enforce_target: bool = False) -> None:
        # flt_enforce_target=False is the paper's setup: the FLT baseline
        # "purges the files as in the logs" with no preparation and no
        # target, while ActiveDR stops the moment the target is reached.
        self.dataset = dataset
        self.config = config or RetentionConfig()
        self.emulator_config = emulator_config or EmulatorConfig()
        self.exemptions = exemptions
        self.flt_enforce_target = flt_enforce_target

    def run(self) -> ComparisonResult:
        ds = self.dataset
        out = ComparisonResult(lifetime_days=self.config.lifetime_days)
        known_uids = [u.uid for u in ds.users]

        policies = [
            FixedLifetimePolicy(self.config,
                                enforce_target=self.flt_enforce_target),
            ActiveDRPolicy(self.config),
        ]
        for policy in policies:
            emulator = Emulator(policy, self.config.activeness,
                                self.emulator_config, self.exemptions)
            fs = ds.fresh_filesystem()
            result = emulator.run(fs, ds.accesses, ds.jobs, ds.publications,
                                  ds.config.replay_start, ds.config.replay_end,
                                  known_uids=known_uids)
            out.results[policy.name] = result
        return out


def single_snapshot_comparison(
        dataset: TitanDataset,
        lifetimes: tuple[float, ...] = (7.0, 30.0, 60.0, 90.0),
        base_config: RetentionConfig | None = None,
        snapshot_day: int = 235,
        exemptions: ExemptionList | None = None):
    """One-shot retention on an identical mid-year snapshot (section 4.4).

    The paper's Figs. 9-11 / Tables 4-6 come from running both policies,
    with the same purge target, against the same weekly metadata snapshot
    (captured Aug 23, 2016 -- day ~235).  This harness reconstructs that
    state by advancing the snapshot FS through the access trace with no
    retention, then runs FLT (target-enforced) and ActiveDR once each on
    replicas, per lifetime setting.  Returns
    ``{lifetime: {policy_name: RetentionReport}}``.
    """
    from ..core.activeness import ActivenessEvaluator
    from ..core.activity import (ActivityLedger, JOB_SUBMISSION, PUBLICATION,
                                 activities_from_jobs,
                                 activities_from_publications)
    from .emulator import advance_filesystem

    base = base_config or RetentionConfig()
    t_c = dataset.config.replay_start + snapshot_day * 86_400

    state = dataset.fresh_filesystem()
    advance_filesystem(state, dataset.accesses, t_c)

    ledger = ActivityLedger()
    ledger.extend(JOB_SUBMISSION, activities_from_jobs(dataset.jobs))
    ledger.extend(PUBLICATION,
                  activities_from_publications(dataset.publications))
    ledger = ledger.until(t_c)
    known = [u.uid for u in dataset.users]

    out: dict[float, dict[str, object]] = {}
    for lifetime in lifetimes:
        config = base.with_lifetime(lifetime)
        config = RetentionConfig(
            lifetime_days=lifetime,
            purge_trigger_days=base.purge_trigger_days,
            purge_target_utilization=base.purge_target_utilization,
            retrospective_passes=base.retrospective_passes,
            rank_decay=base.rank_decay,
            activeness=type(base.activeness)(
                period_days=lifetime,
                empty_period=base.activeness.empty_period,
                epsilon=base.activeness.epsilon),
            zero_rank_as_initial=base.zero_rank_as_initial,
        )
        activeness = ActivenessEvaluator(config.activeness).evaluate(
            ledger, t_c, known_uids=known)
        reports: dict[str, object] = {}
        for policy in (FixedLifetimePolicy(config, enforce_target=True),
                       ActiveDRPolicy(config)):
            fs = state.replicate()
            reports[policy.name] = policy.run(fs, t_c,
                                              activeness=activeness,
                                              exemptions=exemptions)
        out[lifetime] = reports
    return out


def run_lifetime_sweep(dataset: TitanDataset,
                       lifetimes: tuple[float, ...] = (7.0, 30.0, 60.0, 90.0),
                       base_config: RetentionConfig | None = None,
                       **runner_kwargs) -> dict[float, ComparisonResult]:
    """The Figs. 9-11 / Tables 4-6 sweep over file-lifetime settings.

    Each lifetime gets a full paired replay; the caller reads the final
    retention report of each run for retained/purged/affected-user rows.
    Period length of the activeness evaluation follows the lifetime, as in
    the paper's "period length (days)" axis.
    """
    base = base_config or RetentionConfig()
    out: dict[float, ComparisonResult] = {}
    for lifetime in lifetimes:
        config = RetentionConfig(
            lifetime_days=lifetime,
            purge_trigger_days=base.purge_trigger_days,
            purge_target_utilization=base.purge_target_utilization,
            retrospective_passes=base.retrospective_passes,
            rank_decay=base.rank_decay,
            activeness=type(base.activeness)(
                period_days=lifetime,
                empty_period=base.activeness.empty_period,
                epsilon=base.activeness.epsilon),
            zero_rank_as_initial=base.zero_rank_as_initial,
        )
        runner = ComparisonRunner(dataset, config, **runner_kwargs)
        out[lifetime] = runner.run()
    return out
