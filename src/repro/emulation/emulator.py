"""The trace-replay emulator (paper section 4.1.3).

The emulation loop, faithful to the paper:

1. initialize the virtual file system from the last weekly metadata
   snapshot of the base year (done by the caller -- the emulator receives
   the FS);
2. replay the application log day by day: each replayed path either
   refreshes the file's atime or, when the path is no longer indexed,
   counts as a **file miss**;
3. every ``purge_trigger_days`` (7 at OLCF), run the retention policy.
   For ActiveDR a *preparation procedure* first evaluates every user's
   activeness from the activity traces accumulated up to the trigger
   instant; FLT needs no preparation (the evaluation is still computed so
   that misses and report rows can be attributed to activeness groups
   identically for both policies).

Extensions beyond the paper (both off by default or trace-driven):

* ``apply_creates`` -- honor ``create`` records in the application log so
  the scratch space grows over the replay year;
* ``restore_on_miss`` -- model users re-transmitting a missed file (the
  paper counts the miss and moves on; the ablation bench flips this).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Sequence

from ..core.activeness import ActivenessEvaluator, ActivenessParams, UserActiveness
from ..core.classification import UserClass, classify_all, group_counts
from ..core.incremental import ColumnarActivityStore, build_activity_store
from ..core.policy import RetentionPolicy
from ..core.exemption import ExemptionList
from ..core.report import RetentionReport
from ..traces.schema import AppAccessRecord, JobRecord, PublicationRecord
from ..vfs.file_meta import DAY_SECONDS, FileMeta
from ..vfs.filesystem import VirtualFileSystem
from .metrics import DailyMetrics

__all__ = ["EmulatorConfig", "EmulationResult", "Emulator",
           "advance_filesystem", "deterministic_file_size"]


def deterministic_file_size(path: str) -> int:
    """A stable synthetic size for files materialized during the replay.

    Derived from the path alone so FLT and ActiveDR replays see identical
    bytes.  Log-uniform-ish between 8 KiB and 16 MiB -- run outputs, not
    the bulk datasets already sized in the snapshot; the yearly created
    volume stays a modest fraction of snapshot capacity, as on a real
    system whose snapshot already reflects steady-state turnover.
    """
    h = zlib.crc32(path.encode("utf-8"))
    exponent = 13 + (h % 11)        # 2^13 .. 2^23
    mantissa = 1.0 + ((h >> 8) % 1000) / 1000.0
    return int(mantissa * (1 << exponent))


def advance_filesystem(fs: VirtualFileSystem,
                       accesses: Sequence[AppAccessRecord],
                       until_ts: int, *, apply_creates: bool = True) -> int:
    """Apply the access trace to ``fs`` up to ``until_ts``, with no policy.

    Refreshes atimes and materializes creations, exactly like the replay
    loop but without any retention -- used to reconstruct the paper's
    mid-year "weekly metadata snapshot" state, which both policies then
    scan from identical footing (section 4.4).  Returns the number of
    records applied.
    """
    applied = 0
    for rec in accesses:
        if rec.ts >= until_ts:
            break
        applied += 1
        if rec.op == "create":
            if apply_creates and rec.path not in fs:
                fs.add_file(rec.path, FileMeta(
                    size=deterministic_file_size(rec.path),
                    atime=rec.ts, mtime=rec.ts, ctime=rec.ts, uid=rec.uid))
            else:
                fs.touch(rec.path, rec.ts)
        else:
            fs.touch(rec.path, rec.ts)
    return applied


@dataclass(frozen=True, slots=True)
class EmulatorConfig:
    """Replay behaviour switches."""

    apply_creates: bool = True
    restore_on_miss: bool = False
    count_create_misses: bool = False  # creates never miss (paper replays
    #                                    accesses; creates make new paths)


@dataclass(slots=True)
class EmulationResult:
    """Everything one policy's replay produced."""

    policy: str
    lifetime_days: float
    metrics: DailyMetrics
    reports: list[RetentionReport] = field(default_factory=list)
    #: Group populations at each trigger (Fig. 5-style series).
    group_count_history: list[dict[UserClass, int]] = field(default_factory=list)
    final_classes: dict[int, UserClass] = field(default_factory=dict)
    final_total_bytes: int = 0
    final_file_count: int = 0

    @property
    def final_report(self) -> RetentionReport | None:
        return self.reports[-1] if self.reports else None


class Emulator:
    """Replays an access trace against one retention policy."""

    def __init__(self, policy: RetentionPolicy,
                 activeness_params: ActivenessParams | None = None,
                 config: EmulatorConfig | None = None,
                 exemptions: ExemptionList | None = None) -> None:
        self.policy = policy
        self.evaluator = ActivenessEvaluator(
            activeness_params or policy.config.activeness)
        self.config = config or EmulatorConfig()
        self.exemptions = exemptions

    def run(self, fs: VirtualFileSystem,
            accesses: Sequence[AppAccessRecord],
            jobs: Sequence[JobRecord],
            publications: Sequence[PublicationRecord],
            replay_start: int, replay_end: int,
            known_uids: Sequence[int] = (),
            activity_store: ColumnarActivityStore | None = None,
            ) -> EmulationResult:
        """Replay ``[replay_start, replay_end)``, mutating ``fs``.

        ``accesses`` must be time-sorted; ``jobs``/``publications`` may
        extend back before the replay (activity history).  The trigger-time
        preparation procedure evaluates against a consolidated
        :class:`ColumnarActivityStore` (each evaluation clips at the
        trigger instant); pass ``activity_store`` to share one pre-built
        store across replays, in which case ``jobs``/``publications`` are
        ignored.
        """
        if replay_end <= replay_start:
            raise ValueError("replay_end must exceed replay_start")
        n_days = -(-(replay_end - replay_start) // DAY_SECONDS)
        metrics = DailyMetrics(n_days)
        result = EmulationResult(policy=self.policy.name,
                                 lifetime_days=self.policy.config.lifetime_days,
                                 metrics=metrics)

        store = activity_store
        if store is None:
            store = build_activity_store(jobs, publications)
        params = self.evaluator.params

        activeness = store.evaluate(replay_start, params, known_uids)
        classes = classify_all(activeness)
        result.group_count_history.append(group_counts(classes))

        trigger_interval = self.policy.config.purge_trigger_days
        access_cursor = 0
        n_accesses = len(accesses)

        for day in range(n_days):
            day_start = replay_start + day * DAY_SECONDS
            day_end = day_start + DAY_SECONDS

            if day > 0 and day % trigger_interval == 0:
                t_c = day_start
                activeness = store.evaluate(t_c, params, known_uids)
                classes = classify_all(activeness)
                result.group_count_history.append(group_counts(classes))
                report = self.policy.run(fs, t_c, activeness=activeness,
                                         exemptions=self.exemptions)
                result.reports.append(report)

            while (access_cursor < n_accesses
                   and accesses[access_cursor].ts < day_end):
                rec = accesses[access_cursor]
                access_cursor += 1
                if rec.ts < day_start:
                    continue  # out-of-window stragglers
                self._replay_one(fs, rec, day, metrics, classes)

        result.final_classes = classes
        result.final_total_bytes = fs.total_bytes
        result.final_file_count = fs.file_count
        return result

    # ------------------------------------------------------------------

    def _replay_one(self, fs: VirtualFileSystem, rec: AppAccessRecord,
                    day: int, metrics: DailyMetrics,
                    classes: dict[int, UserClass]) -> None:
        if rec.op == "create":
            if self.config.apply_creates and rec.path not in fs:
                fs.add_file(rec.path, FileMeta(
                    size=deterministic_file_size(rec.path),
                    atime=rec.ts, mtime=rec.ts, ctime=rec.ts, uid=rec.uid))
            elif rec.path in fs:
                fs.touch(rec.path, rec.ts)
            return
        if rec.op == "touch":
            # Sweep-style atime renewal: only visits surviving files, so a
            # missing path is silently skipped (never a miss, never an
            # access in the miss-ratio denominator).
            fs.touch(rec.path, rec.ts)
            return

        metrics.record_access(day)
        if fs.touch(rec.path, rec.ts):
            return
        group = classes.get(rec.uid, UserClass.BOTH_INACTIVE)
        metrics.record_miss(day, group)
        if self.config.restore_on_miss:
            fs.add_file(rec.path, FileMeta(
                size=deterministic_file_size(rec.path),
                atime=rec.ts, mtime=rec.ts, ctime=rec.ts, uid=rec.uid))
