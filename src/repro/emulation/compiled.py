"""Batched columnar replay: compile the trace once, replay it vectorized.

The reference :class:`~repro.emulation.emulator.Emulator` walks the access
log record by record through :class:`~repro.vfs.path_trie.PathTrie`
lookups -- faithful, but every experiment (lifetime sweeps, ablations,
calibration) pays the full per-record Python cost again.  This module
splits that work:

* :func:`compile_dataset` runs **once per dataset**: every path that can
  appear during the replay (snapshot files plus trace paths) is interned
  to a dense integer id, and the in-window access records become parallel
  NumPy columns (path-id, uid, timestamp, op-code) bucketed by replay day
  in a :class:`ReplayIndex`.  The snapshot file system is flattened to
  per-path ``live/size/atime/owner`` arrays, and the activity history is
  pre-ingested into a consolidated
  :class:`~repro.core.incremental.ColumnarActivityStore`.
* :class:`FastEmulator` then replays whole-day slices against those
  arrays: liveness masks, vectorized atime updates, and per-group miss
  bincounts replace per-record trie traffic, and the purge triggers run
  columnar ports of the FLT / ActiveDR scans.

The replay kernels themselves are shared, not private to the batch path:
:func:`replay_day_columns` applies one day of access records to a
live/atime/size/owner column set, and :class:`TriggerEngine` holds the
columnar purge triggers for the whole retention spectrum, parameterized
by a *catalog* (paths, deterministic sizes, scan orders) rather than by
``CompiledTrace`` specifically.  The streaming
:class:`~repro.stream.service.OnlineRetentionService` drives the same
kernels from a dynamically growing catalog, which is how streaming stays
bit-identical to batch.

The fast path is **exact**, not approximate: for the full retention
spectrum -- ``FixedLifetimePolicy``, ``ActiveDRPolicy``,
``ValueBasedPolicy`` (with the stock ``CompositeValueFunction``), and
``ScratchAsCachePolicy`` -- it reproduces the reference emulator bit for
bit (same ``DailyMetrics`` arrays, the same ``RetentionReport`` sequence,
the same group-count history), which ``tests/test_compiled_replay.py``
pins.  Custom policies, custom value functions, or instrumented file
systems still need the reference ``Emulator`` -- :class:`FastEmulator`
rejects policy types it cannot replay exactly rather than silently
approximating them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.activeness import ActivenessParams, UserActiveness
from ..core.cache_policy import ScratchAsCachePolicy
from ..core.classification import (UserClass, classify_all, group_counts,
                                   scan_ordered_uids)
from ..core.exemption import ExemptionList
from ..core.flt import FixedLifetimePolicy
from ..core.incremental import ColumnarActivityStore, build_activity_store
from ..core.policy import RetentionPolicy
from ..core.report import RetentionReport
from ..core.retention import ActiveDRPolicy, adjusted_lifetime_seconds
from ..core.value_based import CompositeValueFunction, ValueBasedPolicy
from ..traces.schema import AppAccessRecord, JobRecord, PublicationRecord
from ..vfs.file_meta import DAY_SECONDS
from ..vfs.filesystem import VirtualFileSystem
from ..vfs.path_trie import split_path
from .emulator import EmulationResult, EmulatorConfig, deterministic_file_size
from .metrics import DailyMetrics

__all__ = ["OP_ACCESS", "OP_CREATE", "OP_TOUCH", "NEVER_POS", "ReplayIndex",
           "CompiledTrace", "GroupLookup", "TriggerEngine", "FastEmulator",
           "compile_dataset", "replay_bounds", "replay_day_columns"]

OP_ACCESS = 0
OP_CREATE = 1
OP_TOUCH = 2

_OP_CODES = {"access": OP_ACCESS, "create": OP_CREATE, "touch": OP_TOUCH}

#: Sentinel "this path is never materialized today" position, larger than
#: any within-day record index.  Scratch ``add_pos`` columns passed to
#: :func:`replay_day_columns` must be filled with it between days.
NEVER_POS = np.iinfo(np.int64).max
_NEVER = NEVER_POS


def replay_bounds(dataset) -> tuple[int, int]:
    """``(replay_start, replay_end)`` for a dataset or workspace.

    ``TitanDataset`` keeps the bounds on its config; CLI workspaces expose
    them directly.
    """
    cfg = getattr(dataset, "config", None)
    if cfg is not None and hasattr(cfg, "replay_start"):
        return cfg.replay_start, cfg.replay_end
    return dataset.replay_start, dataset.replay_end


@dataclass(slots=True, frozen=True)
class ReplayIndex:
    """Day-bucketed columnar view of the in-window access records.

    All four columns are parallel and time-sorted; ``day_offsets`` has
    ``n_days + 1`` entries so day ``d`` occupies the half-open slice
    ``[day_offsets[d], day_offsets[d + 1])``.
    """

    replay_start: int
    n_days: int
    pid: np.ndarray   # int64 interned path ids
    uid: np.ndarray   # int64 accessing user
    ts: np.ndarray    # int64 epoch seconds, non-decreasing
    op: np.ndarray    # int8 op-codes (OP_ACCESS / OP_CREATE / OP_TOUCH)
    day_offsets: np.ndarray

    @property
    def n_records(self) -> int:
        return int(self.pid.size)

    def day_slice(self, day: int) -> tuple[np.ndarray, ...]:
        s = int(self.day_offsets[day])
        e = int(self.day_offsets[day + 1])
        return self.pid[s:e], self.uid[s:e], self.ts[s:e], self.op[s:e]


@dataclass(slots=True, frozen=True)
class CompiledTrace:
    """Everything a replay needs, compiled once and shared read-only.

    Path ids are assigned in plain-string sort order -- exactly the order
    ``VirtualFileSystem.iter_user_files`` visits one user's files, so the
    ActiveDR per-user scan is just an ascending-pid walk.  The prefix
    tree's system-scan order (payload-before-children, component-wise) is
    captured separately in ``scan_rank`` for the FLT walk.
    """

    paths: tuple[str, ...]
    det_size: np.ndarray        # deterministic_file_size per path
    scan_rank: np.ndarray       # position of each pid in trie (FLT) order
    snap_live: np.ndarray       # snapshot file-system columns
    snap_size: np.ndarray
    snap_atime: np.ndarray
    snap_uid: np.ndarray
    capacity_bytes: int
    index: ReplayIndex
    store: ColumnarActivityStore
    replay_start: int
    replay_end: int

    @property
    def n_paths(self) -> int:
        return len(self.paths)

    @property
    def n_records(self) -> int:
        return self.index.n_records

    # The TriggerEngine catalog protocol: pids here *are* assigned in
    # plain-string sort order, so the string-order rank is the identity
    # (signalled as None), and the path set never changes after build.
    @property
    def order_rank(self) -> np.ndarray | None:
        return None

    @property
    def version(self) -> int:
        return 0

    def exempt_mask(self, exemptions: ExemptionList | None,
                    ) -> np.ndarray | None:
        """Per-path exemption mask (``None`` when there are no exemptions)."""
        if exemptions is None:
            return None
        return np.fromiter((p in exemptions for p in self.paths),
                           np.bool_, len(self.paths))

    # ------------------------------------------------------------------

    @classmethod
    def build(cls, fs: VirtualFileSystem,
              accesses: Sequence[AppAccessRecord],
              jobs: Iterable[JobRecord] = (),
              publications: Iterable[PublicationRecord] = (),
              replay_start: int = 0, replay_end: int = 0) -> "CompiledTrace":
        """Compile a snapshot file system plus traces into columns.

        ``fs`` is read, never mutated; ``accesses`` must be time-sorted
        (the reference emulator has the same contract).
        """
        if replay_end <= replay_start:
            raise ValueError("replay_end must exceed replay_start")
        n_days = -(-(replay_end - replay_start) // DAY_SECONDS)
        window_end = replay_start + n_days * DAY_SECONDS

        snapshot = list(fs.iter_files())
        recs = [r for r in accesses if replay_start <= r.ts < window_end]

        path_set = {p for p, _ in snapshot}
        path_set.update(r.path for r in recs)
        paths = tuple(sorted(path_set))
        pid_of = {p: i for i, p in enumerate(paths)}
        n_paths = len(paths)

        det_size = np.fromiter((deterministic_file_size(p) for p in paths),
                               np.int64, n_paths)
        # FLT system-scan order: the prefix tree iterates payload-before-
        # children in component order, i.e. sorted by split_path.
        trie_order = np.fromiter(
            sorted(range(n_paths), key=lambda i: split_path(paths[i])),
            np.int64, n_paths)
        scan_rank = np.empty(n_paths, dtype=np.int64)
        scan_rank[trie_order] = np.arange(n_paths, dtype=np.int64)

        snap_live = np.zeros(n_paths, dtype=np.bool_)
        snap_size = np.zeros(n_paths, dtype=np.int64)
        snap_atime = np.zeros(n_paths, dtype=np.int64)
        snap_uid = np.zeros(n_paths, dtype=np.int64)
        for path, meta in snapshot:
            i = pid_of[path]
            snap_live[i] = True
            snap_size[i] = meta.size
            snap_atime[i] = meta.atime
            snap_uid[i] = meta.uid

        n = len(recs)
        pid = np.fromiter((pid_of[r.path] for r in recs), np.int64, n)
        uid = np.fromiter((r.uid for r in recs), np.int64, n)
        ts = np.fromiter((r.ts for r in recs), np.int64, n)
        op = np.fromiter((_OP_CODES[r.op] for r in recs), np.int8, n)
        if n and np.any(np.diff(ts) < 0):
            raise ValueError("accesses must be time-sorted")
        day = (ts - replay_start) // DAY_SECONDS
        day_offsets = np.searchsorted(day, np.arange(n_days + 1))
        index = ReplayIndex(replay_start=replay_start, n_days=n_days,
                            pid=pid, uid=uid, ts=ts, op=op,
                            day_offsets=day_offsets)

        store = build_activity_store(jobs, publications)
        store.consolidate()  # once, pre-fork

        return cls(paths=paths, det_size=det_size, scan_rank=scan_rank,
                   snap_live=snap_live, snap_size=snap_size,
                   snap_atime=snap_atime, snap_uid=snap_uid,
                   capacity_bytes=fs.capacity_bytes, index=index,
                   store=store, replay_start=replay_start,
                   replay_end=replay_end)


def compile_dataset(dataset) -> CompiledTrace:
    """Compile a ``TitanDataset`` (or CLI workspace) for fast replay."""
    start, end = replay_bounds(dataset)
    return CompiledTrace.build(dataset.filesystem, dataset.accesses,
                               dataset.jobs, dataset.publications,
                               start, end)


# ---------------------------------------------------------------------------
# replay state


class _ReplayState:
    """Mutable per-run columns; one instance per ``FastEmulator.run``."""

    __slots__ = ("live", "atime", "size", "owner", "total_bytes",
                 "file_count", "capacity_bytes")

    def __init__(self, compiled: CompiledTrace) -> None:
        self.live = compiled.snap_live.copy()
        self.atime = compiled.snap_atime.copy()
        self.size = compiled.snap_size.copy()
        self.owner = compiled.snap_uid.copy()
        self.total_bytes = int(compiled.snap_size[compiled.snap_live].sum())
        self.file_count = int(compiled.snap_live.sum())
        self.capacity_bytes = compiled.capacity_bytes

    def purge_target(self, config) -> int:
        # Mirrors core.policy.purge_target_bytes on columnar state.
        if self.capacity_bytes <= 0:
            return 0
        allowed = int(config.purge_target_utilization * self.capacity_bytes)
        return max(0, self.total_bytes - allowed)


class GroupLookup:
    """Vectorized uid -> UserClass code with the both-inactive default."""

    __slots__ = ("_uids", "_codes")

    _DEFAULT = UserClass.BOTH_INACTIVE.value

    def __init__(self, classes: dict[int, UserClass]) -> None:
        if classes:
            uids = np.fromiter(classes.keys(), np.int64, len(classes))
            codes = np.fromiter((c.value for c in classes.values()),
                                np.int64, len(classes))
            order = np.argsort(uids)
            self._uids = uids[order]
            self._codes = codes[order]
        else:
            self._uids = np.empty(0, dtype=np.int64)
            self._codes = np.empty(0, dtype=np.int64)

    def codes(self, uid_arr: np.ndarray) -> np.ndarray:
        if self._uids.size == 0:
            return np.full(uid_arr.size, self._DEFAULT, dtype=np.int64)
        idx = np.minimum(np.searchsorted(self._uids, uid_arr),
                         self._uids.size - 1)
        return np.where(self._uids[idx] == uid_arr,
                        self._codes[idx], self._DEFAULT)


_CODE_TO_CLASS = {cls.value: cls for cls in UserClass}


class _TargetReached(Exception):
    """Internal control flow: the purge target was hit mid-scan."""


# ---------------------------------------------------------------------------
# day replay kernel (shared by FastEmulator and the stream service)


def replay_day_columns(config: EmulatorConfig, det_size: np.ndarray,
                       state, day: int, metrics: DailyMetrics,
                       lookup: GroupLookup, add_pos: np.ndarray,
                       pid: np.ndarray, uid: np.ndarray,
                       ts: np.ndarray, op: np.ndarray) -> None:
    """Apply one day's access records to a live/atime/size/owner state.

    ``state`` is any object with ``live/atime/size/owner`` arrays plus
    ``total_bytes``/``file_count`` counters indexed by the same pids as
    ``det_size``; ``add_pos`` is a per-pid scratch column pre-filled with
    :data:`NEVER_POS` (reset before returning).  The record columns must
    be one replay day, time-sorted.
    """
    if pid.size == 0:
        return
    is_access = op == OP_ACCESS
    metrics.accesses[day] = int(is_access.sum())

    live_start = state.live[pid]
    positions = np.arange(pid.size, dtype=np.int64)

    # Records that can materialize a currently-dead path.  Within one
    # day liveness is monotone -- nothing is removed -- so each path's
    # effective add position is the *first* such candidate.
    creates = config.apply_creates
    restore = config.restore_on_miss
    if creates and restore:
        can_add = op != OP_TOUCH
    elif creates:
        can_add = op == OP_CREATE
    elif restore:
        can_add = is_access
    else:
        can_add = None

    added: np.ndarray | None = None
    if can_add is not None:
        cand = can_add & ~live_start
        if cand.any():
            cpid = pid[cand]
            cpos = positions[cand]
            cuid = uid[cand]
            added, first = np.unique(cpid, return_index=True)
            add_pos[added] = cpos[first]
        else:
            added = None
    limit = add_pos[pid]

    # Misses: accesses to paths dead at day start and not yet
    # materialized.  With restore_on_miss the materializing access
    # itself still counts as a miss (position == limit).
    miss = is_access & ~live_start & (
        positions <= limit if restore else positions < limit)
    n_miss = int(miss.sum())
    if n_miss:
        metrics.misses[day] = n_miss
        counts = np.bincount(lookup.codes(uid[miss]), minlength=5)
        for cls in UserClass:
            c = int(counts[cls.value])
            if c:
                metrics.group_misses[cls][day] = c

    if added is not None:
        state.live[added] = True
        state.owner[added] = cuid[first]
        sizes = det_size[added]
        state.size[added] = sizes
        state.total_bytes += int(sizes.sum())
        state.file_count += int(added.size)

    # atime: last qualifying record per path.  A record qualifies when
    # the path was live at day start or the record is at/after the add
    # position (the materializing record stamps the atime itself, and
    # timestamps ascend within the day, so last-write wins == max).
    qual = live_start | (positions >= limit)
    if qual.any():
        qpid = pid[qual][::-1]
        qts = ts[qual][::-1]
        upq, last = np.unique(qpid, return_index=True)
        state.atime[upq] = qts[last]

    if added is not None:
        add_pos[added] = _NEVER  # reset scratch for the next day


# ---------------------------------------------------------------------------
# purge-trigger engine (shared by FastEmulator and the stream service)


class TriggerEngine:
    """Columnar purge triggers for the retention spectrum.

    One instance per (policy, run context).  :meth:`trigger` dispatches
    to the columnar port of the policy's scan, operating on

    * a **catalog**: any object with ``paths`` / ``n_paths`` /
      ``det_size`` / ``snap_size`` / ``scan_rank`` columns, an
      ``order_rank`` column giving each pid's position in plain-string
      path order (``None`` when pids are already string-sorted, as in
      :class:`CompiledTrace`), and a ``version`` counter that advances
      whenever paths are appended (so per-path value columns can be
      extended incrementally);
    * a **state**: ``live/atime/size/owner`` arrays parallel to the
      catalog plus ``total_bytes``/``file_count`` and a
      ``purge_target(config)`` method.

    Constructing the engine raises ``TypeError`` for policy types (or
    custom value functions) it cannot replay exactly.
    """

    __slots__ = ("policy", "_trigger", "_type_weights", "_smallness_snap",
                 "_smallness_det", "_cols_src", "_cols_version",
                 "_cols_count")

    def __init__(self, policy: RetentionPolicy) -> None:
        if isinstance(policy, FixedLifetimePolicy):
            self._trigger = self._flt_trigger
        elif isinstance(policy, ActiveDRPolicy):
            self._trigger = self._activedr_trigger
        elif isinstance(policy, ValueBasedPolicy):
            if not isinstance(policy.value_function, CompositeValueFunction):
                raise TypeError(
                    "the columnar engine can only replay ValueBasedPolicy "
                    "with the stock CompositeValueFunction exactly; use the "
                    "reference Emulator for custom value functions")
            self._trigger = self._value_trigger
        elif isinstance(policy, ScratchAsCachePolicy):
            self._trigger = self._cache_trigger
        else:
            raise TypeError(
                f"the columnar engine cannot replay {type(policy).__name__} "
                "exactly; use the reference Emulator")
        self.policy = policy
        #: Per-pid basename-extension keep weights for the value trigger,
        #: cached per catalog and *extended* (never recomputed) as a
        #: growing catalog appends paths.  The source catalog is kept as
        #: a strong reference so the cache can never alias another one.
        self._type_weights: np.ndarray | None = None
        self._smallness_snap: np.ndarray | None = None
        self._smallness_det: np.ndarray | None = None
        self._cols_src: object | None = None
        self._cols_version = -1
        self._cols_count = 0

    def trigger(self, catalog, state, t_c: int,
                activeness: dict[int, UserActiveness],
                lookup: GroupLookup,
                exempt: np.ndarray | None) -> RetentionReport:
        """Run one purge trigger at ``t_c``; mutates ``state``."""
        return self._trigger(catalog, state, t_c, activeness, lookup, exempt)

    # ------------------------------------------------------------------
    # shared tally helpers

    def _apply_purges(self, state, report: RetentionReport,
                      idxs: np.ndarray, group: UserClass | None,
                      lookup: GroupLookup | None) -> None:
        """Purge ``idxs``; tally under ``group`` (or per-owner lookup)."""
        owners = state.owner[idxs]
        sizes = state.size[idxs]
        if group is not None:
            code_values = (group.value,)
            masks = {group.value: np.ones(idxs.size, dtype=np.bool_)}
        else:
            codes = lookup.codes(owners)
            code_values = np.unique(codes).tolist()
            masks = {v: codes == v for v in code_values}
        for value in code_values:
            m = masks[value]
            tally = report.groups[_CODE_TO_CLASS[value]]
            tally.purged_files += int(m.sum())
            tally.purged_bytes += int(sizes[m].sum())
            tally.users_purged.update(
                int(u) for u in np.unique(owners[m]).tolist())
        total = int(sizes.sum())
        report.purged_bytes_total += total
        state.live[idxs] = False
        state.total_bytes -= total
        state.file_count -= int(idxs.size)

    def _record_survivors(self, state, report: RetentionReport,
                          lookup: GroupLookup) -> None:
        live_idx = np.flatnonzero(state.live)
        if live_idx.size == 0:
            return
        owners = state.owner[live_idx]
        sizes = state.size[live_idx]
        codes = lookup.codes(owners)
        for value in np.unique(codes).tolist():
            m = codes == value
            tally = report.groups[_CODE_TO_CLASS[value]]
            tally.retained_files += int(m.sum())
            tally.retained_bytes += int(sizes[m].sum())
            tally.users_scanned.update(
                int(u) for u in np.unique(owners[m]).tolist())

    # ------------------------------------------------------------------
    # FLT

    def _flt_trigger(self, catalog, state, t_c: int,
                     activeness: dict[int, UserActiveness],
                     lookup: GroupLookup,
                     exempt: np.ndarray | None) -> RetentionReport:
        config = self.policy.config
        enforce = self.policy.enforce_target
        lifetime_seconds = config.lifetime_days * DAY_SECONDS
        target = state.purge_target(config) if enforce else 0
        report = RetentionReport(policy=self.policy.name, t_c=t_c,
                                 lifetime_days=config.lifetime_days,
                                 target_bytes=target)
        if enforce and target <= 0:
            self._record_survivors(state, report, lookup)
            return report

        stale = state.live & ((t_c - state.atime) > lifetime_seconds)
        if exempt is not None:
            stale &= ~exempt
        idxs = np.flatnonzero(stale)
        if idxs.size:
            idxs = idxs[np.argsort(catalog.scan_rank[idxs])]
            if enforce and target > 0:
                cum = np.cumsum(state.size[idxs])
                cut = int(np.searchsorted(cum, target, side="left"))
                if cut < idxs.size:
                    idxs = idxs[:cut + 1]
            self._apply_purges(state, report, idxs, None, lookup)

        self._record_survivors(state, report, lookup)
        if enforce and target > 0:
            report.target_met = report.purged_bytes_total >= target
        return report

    # ------------------------------------------------------------------
    # ActiveDR

    def _activedr_trigger(self, catalog, state, t_c: int,
                          activeness: dict[int, UserActiveness],
                          lookup: GroupLookup,
                          exempt: np.ndarray | None) -> RetentionReport:
        config = self.policy.config
        target = state.purge_target(config)
        report = RetentionReport(policy=self.policy.name, t_c=t_c,
                                 lifetime_days=config.lifetime_days,
                                 target_bytes=target)

        full = dict(activeness)
        live_idx = np.flatnonzero(state.live)
        for u in np.unique(state.owner[live_idx]).tolist():
            full.setdefault(int(u), UserActiveness(int(u)))
        groups = scan_ordered_uids(full)

        if target <= 0:
            self._record_survivors(state, report, lookup)
            return report

        # Per-owner slices over the live files, in plain-string path
        # order -- exactly the iter_user_files visit order.  With
        # string-sorted pids (CompiledTrace) the pid is its own rank.
        owners_live = state.owner[live_idx]
        rank = catalog.order_rank
        order = np.lexsort((live_idx if rank is None else rank[live_idx],
                            owners_live))
        sorted_idx = live_idx[order]
        sorted_own = owners_live[order]
        uniq, starts, lens = np.unique(sorted_own, return_index=True,
                                       return_counts=True)
        slices = {int(u): (int(s), int(c))
                  for u, s, c in zip(uniq, starts, lens)}

        try:
            for group, uids in groups:
                for retro in range(config.retrospective_passes + 1):
                    if retro:
                        if report.purged_bytes_total >= target:
                            break
                        decay = (1.0 - config.rank_decay) ** retro
                        report.passes_used = max(report.passes_used,
                                                 retro + 1)
                    else:
                        decay = 1.0
                    self._scan_group_columnar(
                        state, t_c, report, full, group, uids, exempt,
                        target, decay, slices, sorted_idx)
        except _TargetReached:
            pass

        report.target_met = report.purged_bytes_total >= target
        self._record_survivors(state, report, lookup)
        if not report.target_met and self.policy.notifier is not None:
            from ..core.notify import notification_from_report
            self.policy.notifier.notify(notification_from_report(report))
        return report

    def _scan_group_columnar(self, state, t_c: int,
                             report: RetentionReport,
                             activeness: dict[int, UserActiveness],
                             group: UserClass, uids: list[int],
                             exempt: np.ndarray | None, target: int,
                             decay: float, slices, sorted_idx) -> None:
        config = self.policy.config
        for uid in uids:
            lifetime = adjusted_lifetime_seconds(config, activeness[uid],
                                                 group, decay)
            if math.isinf(lifetime):
                continue
            span = slices.get(uid)
            if span is None:
                continue
            idxs = sorted_idx[span[0]:span[0] + span[1]]
            stale = state.live[idxs] & ((t_c - state.atime[idxs]) > lifetime)
            if exempt is not None:
                stale &= ~exempt[idxs]
            idxs = idxs[stale]
            if idxs.size == 0:
                continue
            remaining = target - report.purged_bytes_total
            cum = np.cumsum(state.size[idxs])
            cut = int(np.searchsorted(cum, remaining, side="left"))
            if cut < idxs.size:
                self._apply_purges(state, report, idxs[:cut + 1], group,
                                   lookup=None)
                raise _TargetReached
            self._apply_purges(state, report, idxs, group, lookup=None)

    # ------------------------------------------------------------------
    # value-based baseline (related work): lowest-value files first

    def _value_columns(self, catalog
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-pid ``(type_weight, smallness_snap, smallness_det)``
        columns for the value function.

        All three are time-invariant per path: the type weight depends
        only on the path, and a live file's size is either its snapshot
        size or (once re-materialized during the replay) its
        deterministic ``det_size``.  Smallness uses ``math.log2`` per
        element so the scores are bit-identical to the scalar reference
        even where ``np.log2`` takes a differently-rounded SIMD path.
        Catalogs append paths but never change existing ones, so a
        version bump only computes the new tail.
        """
        if self._cols_src is not catalog:
            self._cols_src = catalog
            self._cols_version = -1
            self._cols_count = 0
            empty = np.empty(0, dtype=np.float64)
            self._type_weights = empty
            self._smallness_snap = empty.copy()
            self._smallness_det = empty.copy()
        if self._cols_version != catalog.version:
            n = catalog.n_paths
            lo = self._cols_count
            if n > lo:
                vf = self.policy.value_function

                def smallness_of(size: int) -> float:
                    if size > 4096:
                        return 1.0 / (1.0 + math.log2(max(size, 1) / 4096.0)
                                      / 10.0)
                    return 1.0

                new = n - lo
                self._type_weights = np.concatenate([
                    self._type_weights,
                    np.fromiter((vf.type_weight(p)
                                 for p in catalog.paths[lo:n]),
                                np.float64, new)])
                self._smallness_snap = np.concatenate([
                    self._smallness_snap,
                    np.fromiter((smallness_of(s)
                                 for s in catalog.snap_size[lo:n].tolist()),
                                np.float64, new)])
                self._smallness_det = np.concatenate([
                    self._smallness_det,
                    np.fromiter((smallness_of(s)
                                 for s in catalog.det_size[lo:n].tolist()),
                                np.float64, new)])
                self._cols_count = n
            self._cols_version = catalog.version
        return self._type_weights, self._smallness_snap, self._smallness_det

    def _file_values(self, catalog, state, idxs: np.ndarray,
                     t_c: int) -> np.ndarray:
        """Vectorized ``CompositeValueFunction`` over the ``idxs`` files.

        Mirrors the scalar ``__call__`` operation for operation so the
        scores (and therefore the purge order and target cut) are
        bit-identical to the reference policy run.  IEEE add / multiply
        / divide round identically whether vectorized or scalar; the two
        transcendentals do not (NumPy's SIMD ``log2`` / ``pow`` loops
        can differ from libm by an ulp), so smallness comes from the
        precomputed per-size columns and the recency power is folded
        with the scalar operator.
        """
        vf = self.policy.value_function
        type_weight, s_snap, s_det = self._value_columns(catalog)
        # A live file's size is snap_size until first purged, det_size
        # after any re-materialization; pick whichever column matches.
        smallness = np.where(state.size[idxs] == catalog.det_size[idxs],
                             s_det[idxs], s_snap[idxs])
        age_days = np.maximum((t_c - state.atime[idxs]) / DAY_SECONDS, 0.0)
        exponents = age_days / vf.recency_halflife_days
        recency = np.fromiter((0.5 ** e for e in exponents.tolist()),
                              np.float64, exponents.size)
        return (vf.w_recency * recency + vf.w_size * smallness
                + vf.w_type * type_weight[idxs])

    def _value_trigger(self, catalog, state, t_c: int,
                       activeness: dict[int, UserActiveness],
                       lookup: GroupLookup,
                       exempt: np.ndarray | None) -> RetentionReport:
        config = self.policy.config
        target = state.purge_target(config)
        report = RetentionReport(policy=self.policy.name, t_c=t_c,
                                 lifetime_days=config.lifetime_days,
                                 target_bytes=target)

        cand = np.flatnonzero(state.live & ~exempt if exempt is not None
                              else state.live)
        if cand.size:
            values = self._file_values(catalog, state, cand, t_c)
            # Ascending (value, path): ties break on plain-string path
            # order (the pid itself when pids are string-sorted).
            rank = catalog.order_rank
            order = np.lexsort((cand if rank is None else rank[cand],
                                values))
            cand, values = cand[order], values[order]
            if target > 0:
                cum = np.cumsum(state.size[cand])
                cut = int(np.searchsorted(cum, target, side="left"))
                idxs = cand if cut >= cand.size else cand[:cut + 1]
            else:
                # No mandatory target: the information-lifecycle mode
                # purges everything below the value threshold.
                idxs = cand[values < self.policy.value_threshold]
            if idxs.size:
                self._apply_purges(state, report, idxs, None, lookup)

        self._record_survivors(state, report, lookup)
        if target > 0:
            report.target_met = report.purged_bytes_total >= target
        return report

    # ------------------------------------------------------------------
    # scratch-as-a-cache baseline (related work): evict non-resident users

    def _cache_trigger(self, catalog, state, t_c: int,
                       activeness: dict[int, UserActiveness],
                       lookup: GroupLookup,
                       exempt: np.ndarray | None) -> RetentionReport:
        config = self.policy.config
        report = RetentionReport(policy=self.policy.name, t_c=t_c,
                                 lifetime_days=config.lifetime_days,
                                 target_bytes=state.purge_target(config))

        live_idx = np.flatnonzero(state.live)
        if live_idx.size:
            owners = state.owner[live_idx]
            resident = self.policy.residency.resident_uids(t_c)
            if resident.size:
                pos = np.minimum(np.searchsorted(resident, owners),
                                 resident.size - 1)
                purge = resident[pos] != owners
            else:
                purge = np.ones(owners.size, dtype=np.bool_)
            if exempt is not None:
                purge &= ~exempt[live_idx]
            idxs = live_idx[purge]
            if idxs.size:
                self._apply_purges(state, report, idxs, None, lookup)

        self._record_survivors(state, report, lookup)
        # The cache policy ignores utilization targets entirely; what it
        # purges is dictated by residency alone.
        report.target_met = True
        return report


# ---------------------------------------------------------------------------
# the batch fast emulator


class FastEmulator:
    """Columnar replay of a compiled trace against one retention policy.

    Drop-in for the reference :class:`Emulator` across the whole retention
    spectrum -- ``FixedLifetimePolicy``, ``ActiveDRPolicy``,
    ``ValueBasedPolicy`` (stock ``CompositeValueFunction`` only), and
    ``ScratchAsCachePolicy``: construction mirrors
    ``Emulator(policy, activeness_params, config, exemptions)`` and
    :meth:`run` returns the same :class:`EmulationResult`, bit-identical
    to the reference replay of the same dataset.
    """

    def __init__(self, policy: RetentionPolicy,
                 activeness_params: ActivenessParams | None = None,
                 config: EmulatorConfig | None = None,
                 exemptions: ExemptionList | None = None) -> None:
        self._engine = TriggerEngine(policy)
        self.policy = policy
        self.params = activeness_params or policy.config.activeness
        self.config = config or EmulatorConfig()
        self.exemptions = exemptions

    # ------------------------------------------------------------------

    def run(self, compiled: CompiledTrace,
            known_uids: Sequence[int] = (),
            activeness_cache: dict | None = None) -> EmulationResult:
        """Replay the compiled window; ``compiled`` itself is not mutated.

        ``activeness_cache`` memoizes the per-trigger activeness
        evaluations keyed by trigger instant.  Pass one dict across
        replays of the *same* compiled trace with the same params and
        ``known_uids`` (the paired FLT/ActiveDR comparison does) to
        evaluate each trigger once; the evaluations are read-only to
        every consumer, so sharing is exact.
        """
        index = compiled.index
        n_days = index.n_days
        metrics = DailyMetrics(n_days)
        result = EmulationResult(policy=self.policy.name,
                                 lifetime_days=self.policy.config.lifetime_days,
                                 metrics=metrics)

        state = _ReplayState(compiled)
        exempt = compiled.exempt_mask(self.exemptions)
        store = compiled.store

        def evaluate(t_c: int) -> dict[int, UserActiveness]:
            if activeness_cache is None:
                return store.evaluate(t_c, self.params, known_uids)
            got = activeness_cache.get(t_c)
            if got is None:
                got = store.evaluate(t_c, self.params, known_uids)
                activeness_cache[t_c] = got
            return got

        activeness = evaluate(compiled.replay_start)
        classes = classify_all(activeness)
        result.group_count_history.append(group_counts(classes))
        lookup = GroupLookup(classes)

        trigger_interval = self.policy.config.purge_trigger_days
        # Scratch column reused across days: first position at which each
        # path materializes today (or NEVER_POS).
        add_pos = np.full(compiled.n_paths, _NEVER, dtype=np.int64)

        for day in range(n_days):
            if day > 0 and day % trigger_interval == 0:
                t_c = compiled.replay_start + day * DAY_SECONDS
                activeness = evaluate(t_c)
                classes = classify_all(activeness)
                result.group_count_history.append(group_counts(classes))
                lookup = GroupLookup(classes)
                report = self._engine.trigger(compiled, state, t_c,
                                              activeness, lookup, exempt)
                result.reports.append(report)
            replay_day_columns(self.config, compiled.det_size, state, day,
                               metrics, lookup, add_pos,
                               *index.day_slice(day))

        result.final_classes = classes
        result.final_total_bytes = state.total_bytes
        result.final_file_count = state.file_count
        return result
