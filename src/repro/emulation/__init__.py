"""Trace-replay emulation: the day-granular replay loop, miss metrics,
the columnar fast-replay engine, and the FLT-vs-ActiveDR comparison
runner."""

from .compiled import (
    CompiledTrace,
    FastEmulator,
    ReplayIndex,
    compile_dataset,
    replay_bounds,
)
from .emulator import (
    EmulationResult,
    Emulator,
    EmulatorConfig,
    advance_filesystem,
    deterministic_file_size,
)
from .metrics import DailyMetrics
from .runner import (
    ACTIVEDR,
    FLT,
    ComparisonResult,
    ComparisonRunner,
    run_lifetime_sweep,
    single_snapshot_comparison,
)

__all__ = [
    "CompiledTrace",
    "FastEmulator",
    "ReplayIndex",
    "compile_dataset",
    "replay_bounds",
    "EmulationResult",
    "Emulator",
    "EmulatorConfig",
    "advance_filesystem",
    "deterministic_file_size",
    "DailyMetrics",
    "ACTIVEDR",
    "FLT",
    "ComparisonResult",
    "ComparisonRunner",
    "run_lifetime_sweep",
    "single_snapshot_comparison",
]
