"""Trace-replay emulation: the day-granular replay loop, miss metrics,
the columnar fast-replay engine, and the multi-policy comparison runner
(FLT vs ActiveDR by default, full retention spectrum on request)."""

from .compiled import (
    NEVER_POS,
    CompiledTrace,
    FastEmulator,
    GroupLookup,
    ReplayIndex,
    TriggerEngine,
    compile_dataset,
    replay_bounds,
    replay_day_columns,
)
from .emulator import (
    EmulationResult,
    Emulator,
    EmulatorConfig,
    advance_filesystem,
    deterministic_file_size,
)
from .metrics import DailyMetrics
from .runner import (
    ACTIVEDR,
    FLT,
    SCRATCHCACHE,
    SPECTRUM,
    VALUEBASED,
    ComparisonResult,
    ComparisonRunner,
    normalize_policies,
    run_lifetime_sweep,
    single_snapshot_comparison,
)

__all__ = [
    "NEVER_POS",
    "CompiledTrace",
    "FastEmulator",
    "GroupLookup",
    "ReplayIndex",
    "TriggerEngine",
    "compile_dataset",
    "replay_bounds",
    "replay_day_columns",
    "EmulationResult",
    "Emulator",
    "EmulatorConfig",
    "advance_filesystem",
    "deterministic_file_size",
    "DailyMetrics",
    "ACTIVEDR",
    "FLT",
    "SCRATCHCACHE",
    "SPECTRUM",
    "VALUEBASED",
    "ComparisonResult",
    "ComparisonRunner",
    "normalize_policies",
    "run_lifetime_sweep",
    "single_snapshot_comparison",
]
