"""Replay metrics: daily access/miss accounting per user group.

The emulator counts a *file miss* whenever a replayed access names a path
absent from the virtual file system (paper section 4.1.3).  Misses are
attributed to the owner's activeness group as classified at the most
recent purge trigger, which is how Fig. 7 breaks the series down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.classification import UserClass

__all__ = ["DailyMetrics"]


@dataclass(slots=True)
class DailyMetrics:
    """Per-day counters over the replay window."""

    n_days: int
    accesses: np.ndarray = field(init=False)
    misses: np.ndarray = field(init=False)
    group_misses: dict[UserClass, np.ndarray] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")
        self.accesses = np.zeros(self.n_days, dtype=np.int64)
        self.misses = np.zeros(self.n_days, dtype=np.int64)
        self.group_misses = {cls: np.zeros(self.n_days, dtype=np.int64)
                             for cls in UserClass}

    # ------------------------------------------------------------------

    def record_access(self, day: int) -> None:
        self.accesses[day] += 1

    def record_miss(self, day: int, group: UserClass) -> None:
        self.misses[day] += 1
        self.group_misses[group][day] += 1

    # ------------------------------------------------------------------

    def miss_ratio(self) -> np.ndarray:
        """Daily miss ratio; days without accesses score 0."""
        out = np.zeros(self.n_days, dtype=np.float64)
        has = self.accesses > 0
        out[has] = self.misses[has] / self.accesses[has]
        return out

    @property
    def total_accesses(self) -> int:
        return int(self.accesses.sum())

    @property
    def total_misses(self) -> int:
        return int(self.misses.sum())

    def total_group_misses(self, group: UserClass) -> int:
        return int(self.group_misses[group].sum())

    def monthly_group_misses(self, group: UserClass,
                             days_per_month: int = 30) -> np.ndarray:
        """Misses of ``group`` folded into ~monthly buckets (Fig. 7 series)."""
        series = self.group_misses[group]
        n_buckets = -(-self.n_days // days_per_month)
        padded = np.zeros(n_buckets * days_per_month, dtype=np.int64)
        padded[:self.n_days] = series
        return padded.reshape(n_buckets, days_per_month).sum(axis=1)
