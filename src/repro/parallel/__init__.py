"""Parallel execution substrate: MPI-style communicators, partitioners,
shard-parallel scanning, and the time/memory probes behind Fig. 12."""

from .comm import Communicator, PipeComm, SerialComm, run_spmd
from .partition import block_partition, block_ranges, cyclic_partition
from .probes import ProbeLog, Timer, rss_bytes, rss_mib
from .retention import (
    RankDecisions,
    apply_purge_decisions,
    parallel_purge_decisions,
    user_shard_payload,
)
from .scan import RankScanResult, parallel_shard_scan, scan_rank

__all__ = [
    "Communicator",
    "PipeComm",
    "SerialComm",
    "run_spmd",
    "block_partition",
    "block_ranges",
    "cyclic_partition",
    "ProbeLog",
    "Timer",
    "rss_bytes",
    "rss_mib",
    "RankScanResult",
    "parallel_shard_scan",
    "scan_rank",
    "RankDecisions",
    "apply_purge_decisions",
    "parallel_purge_decisions",
    "user_shard_payload",
]
