"""Shard-parallel snapshot scanning.

The paper scans the weekly metadata snapshot -- stored as a series of
gzipped text files -- with multiple parallel processes, each timing its
shards (Fig. 12c/d).  ``parallel_shard_scan`` reproduces that pattern:
shards are block-partitioned across ranks, every rank maps ``shard_fn``
over its block and times each shard, and rank results are gathered.

The worker function must be a module-level (picklable) callable.  With
``n_ranks=1`` everything runs serially in-process, which is what the unit
tests exercise; the Fig. 12 bench uses real processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .comm import Communicator, SerialComm, run_spmd
from .partition import block_partition
from .probes import Timer

__all__ = ["RankScanResult", "parallel_shard_scan", "scan_rank"]


@dataclass(slots=True)
class RankScanResult:
    """What one rank produced: per-shard timings and per-shard values."""

    rank: int
    shard_paths: list[str] = field(default_factory=list)
    shard_seconds: list[float] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(self.shard_seconds)


def scan_rank(comm: Communicator, payload: tuple[list[list[str]],
                                                 Callable[[str], Any]],
              ) -> RankScanResult:
    """SPMD body: scan this rank's shard block (also usable standalone)."""
    blocks, shard_fn = payload
    result = RankScanResult(rank=comm.rank)
    for shard in blocks[comm.rank]:
        with Timer() as t:
            value = shard_fn(shard)
        result.shard_paths.append(shard)
        result.shard_seconds.append(t.elapsed)
        result.values.append(value)
    return result


def parallel_shard_scan(shards: list[str], shard_fn: Callable[[str], Any],
                        n_ranks: int = 1) -> list[RankScanResult]:
    """Scan ``shards`` with ``shard_fn`` across ``n_ranks`` processes.

    Returns one :class:`RankScanResult` per rank, rank order.  ``shard_fn``
    must be picklable when ``n_ranks > 1``.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    blocks = block_partition(shards, n_ranks)
    if n_ranks == 1:
        return [scan_rank(SerialComm(), (blocks, shard_fn))]
    return run_spmd(scan_rank, n_ranks, (blocks, shard_fn))
