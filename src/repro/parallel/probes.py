"""Time and memory probes.

The paper instruments its runs with "multiple probes to monitor the
running time and the memory consumption of the program" (section 4.1.3);
Fig. 12 reports the numbers.  These are the equivalents: a wall-clock
timer context manager and an RSS reader, plus a record type the Fig. 12
bench aggregates.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

__all__ = ["Timer", "rss_bytes", "rss_mib", "ProbeLog"]


class Timer:
    """Wall-clock context manager.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def rss_bytes() -> int:
    """Resident-set size of this process, from ``/proc`` (0 if unreadable)."""
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def rss_mib() -> float:
    """RSS in MiB."""
    return rss_bytes() / (1024.0 * 1024.0)


@dataclass(slots=True)
class ProbeLog:
    """Named (seconds, delta-RSS) measurements accumulated during a run."""

    timings: dict[str, float] = field(default_factory=dict)
    memory_mib: dict[str, float] = field(default_factory=dict)

    def measure(self, name: str):
        """Context manager recording wall time and RSS growth under ``name``.

        >>> log = ProbeLog()
        >>> with log.measure("load"):
        ...     data = list(range(10))
        >>> "load" in log.timings
        True
        """
        return _Measurement(self, name)

    def record_time(self, name: str, seconds: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    def record_memory(self, name: str, mib: float) -> None:
        self.memory_mib[name] = self.memory_mib.get(name, 0.0) + mib


class _Measurement:
    def __init__(self, log: ProbeLog, name: str) -> None:
        self._log = log
        self._name = name
        self._timer = Timer()
        self._rss0 = 0.0

    def __enter__(self) -> "_Measurement":
        self._rss0 = rss_mib()
        self._timer.__enter__()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.__exit__(*exc)
        self._log.record_time(self._name, self._timer.elapsed)
        self._log.record_memory(self._name, max(rss_mib() - self._rss0, 0.0))
