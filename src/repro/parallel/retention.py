"""Shard-parallel purge-decision making (the paper's Fig. 12b pattern).

The prototype's parallel mode has rank 0 run the activeness evaluation
("the main process takes 700 ms ... while other processes only take a few
microseconds"), broadcast the result, and then *every* rank make purge
decisions for its shard of the namespace ("all processes accumulatively
take 1 to 5 seconds for making purge decision for all 1,040,886 files").

``parallel_purge_decisions`` reproduces exactly that division of labour:

1. users (with their file lists) are block-partitioned across ranks;
2. rank 0 computes every user's Eq. 7 adjusted lifetime from the
   activeness evaluation -- timed as the *evaluation* phase;
3. the lifetime map is broadcast; each rank walks its shard and emits
   ``(path, uid, size)`` purge decisions -- timed as the *decision* phase;
4. per-rank results (decisions + both timings) are returned to the
   caller, which can merge and apply them.

The decision stage is pure (no file-system mutation), so ranks need no
coordination beyond the broadcast; :func:`apply_purge_decisions` applies
a merged decision list against the live file system, optionally stopping
at a purge-target byte count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.activeness import UserActiveness
from ..core.classification import UserClass, classify
from ..core.config import RetentionConfig
from ..core.retention import adjusted_lifetime_seconds
from ..vfs.filesystem import VirtualFileSystem
from .comm import Communicator, SerialComm, run_spmd
from .partition import block_partition
from .probes import Timer

__all__ = ["RankDecisions", "parallel_purge_decisions",
           "apply_purge_decisions", "user_shard_payload"]


@dataclass(slots=True)
class RankDecisions:
    """One rank's output: purge decisions plus the Fig. 12b timings."""

    rank: int
    eval_seconds: float = 0.0
    decide_seconds: float = 0.0
    files_examined: int = 0
    #: ``(path, uid, size)`` of every file this rank decided to purge.
    decisions: list[tuple[str, int, int]] = field(default_factory=list)


def user_shard_payload(fs: VirtualFileSystem,
                       ) -> list[tuple[int, list[tuple[str, int, int]]]]:
    """Flatten the namespace into picklable per-user file lists.

    Each entry is ``(uid, [(path, size, atime), ...])`` -- the compact
    form shipped to worker ranks (a live trie does not cross process
    boundaries cheaply; this mirrors how the prototype ships text shards).
    """
    out = []
    for uid in sorted(fs.uids()):
        files = [(path, meta.size, meta.atime)
                 for path, meta in fs.iter_user_files(uid)]
        out.append((uid, files))
    return out


def _lifetime_map(activeness: Mapping[int, UserActiveness],
                  uids: Sequence[int],
                  config: RetentionConfig) -> dict[int, float]:
    """Every owner's Eq. 7 adjusted lifetime in seconds (inf = never)."""
    lifetimes: dict[int, float] = {}
    for uid in uids:
        ua = activeness.get(uid) or UserActiveness(uid)
        lifetimes[uid] = adjusted_lifetime_seconds(config, ua, classify(ua))
    return lifetimes


def _decide_rank(comm: Communicator, payload) -> RankDecisions:
    """SPMD body: rank 0 evaluates lifetimes, everyone decides."""
    shards, activeness, config, t_c = payload
    result = RankDecisions(rank=comm.rank)

    with Timer() as eval_timer:
        lifetimes = None
        if comm.rank == 0:
            all_uids = [uid for shard in shards for uid, _ in shard]
            lifetimes = _lifetime_map(activeness, all_uids, config)
    result.eval_seconds = eval_timer.elapsed
    lifetimes = comm.bcast(lifetimes)

    with Timer() as decide_timer:
        for uid, files in shards[comm.rank]:
            lifetime = lifetimes[uid]
            for path, size, atime in files:
                result.files_examined += 1
                if not math.isinf(lifetime) and t_c - atime > lifetime:
                    result.decisions.append((path, uid, size))
    result.decide_seconds = decide_timer.elapsed
    return result


def parallel_purge_decisions(fs: VirtualFileSystem,
                             activeness: Mapping[int, UserActiveness],
                             config: RetentionConfig, t_c: int,
                             n_ranks: int = 1) -> list[RankDecisions]:
    """Purge decisions for every file, computed across ``n_ranks`` ranks.

    Deterministic and side-effect free: the union of all ranks' decisions
    equals the serial stale set under the same lifetimes.  With
    ``n_ranks=1`` everything runs in-process (no pickling).
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    shards = block_partition(user_shard_payload(fs), n_ranks)
    payload = (shards, dict(activeness), config, t_c)
    if n_ranks == 1:
        return [_decide_rank(SerialComm(), payload)]
    return run_spmd(_decide_rank, n_ranks, payload)


def apply_purge_decisions(fs: VirtualFileSystem,
                          decisions: Sequence[tuple[str, int, int]],
                          target_bytes: int = 0) -> int:
    """Apply merged decisions to the live file system.

    Decisions are applied in the given order; with a positive
    ``target_bytes`` the application stops once that many bytes are gone
    (the caller orders decisions by the section 3.4 scan priority to get
    ActiveDR semantics).  Returns bytes purged.
    """
    purged = 0
    for path, _uid, _size in decisions:
        meta = fs.remove_file(path)
        if meta is not None:
            purged += meta.size
            if target_bytes > 0 and purged >= target_bytes:
                break
    return purged
