"""Work partitioners for shard-parallel scanning."""

from __future__ import annotations

from typing import Sequence, TypeVar

__all__ = ["block_ranges", "block_partition", "cyclic_partition"]

T = TypeVar("T")


def block_ranges(n_items: int, n_parts: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges, sizes differing by at most 1.

    The first ``n_items % n_parts`` parts get the extra element, matching
    MPI block-distribution conventions.  Empty parts are allowed when
    ``n_parts > n_items``.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_items < 0:
        raise ValueError("n_items must be >= 0")
    base, extra = divmod(n_items, n_parts)
    ranges = []
    start = 0
    for part in range(n_parts):
        size = base + (1 if part < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def block_partition(items: Sequence[T], n_parts: int) -> list[list[T]]:
    """Split ``items`` into contiguous blocks."""
    return [list(items[lo:hi]) for lo, hi in block_ranges(len(items), n_parts)]


def cyclic_partition(items: Sequence[T], n_parts: int) -> list[list[T]]:
    """Deal ``items`` round-robin (balances heterogeneous shard costs)."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    return [list(items[part::n_parts]) for part in range(n_parts)]
