"""MPI-style communicator abstraction.

The paper's prototype uses mpi4py to shard the snapshot scan across ranks.
mpi4py cannot be installed in this environment, so this module reproduces
the communication pattern the prototype needs -- rank/size identity plus
the small set of collectives (bcast / scatter / gather / allgather /
reduce / allreduce / barrier) -- over two backends:

* :class:`SerialComm` -- a single-rank communicator whose collectives are
  identities; tests and small runs use it, and any SPMD function written
  against the interface runs unchanged.
* :func:`run_spmd` -- true multi-process SPMD execution: ``size`` OS
  processes each receive a :class:`PipeComm` wired in a star topology to
  rank 0, mirroring mpi4py's ``COMM_WORLD`` usage in the paper.

As in MPI, collectives must be called by *all* ranks in the same order.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, Protocol, Sequence

__all__ = ["Communicator", "SerialComm", "PipeComm", "run_spmd"]


class Communicator(Protocol):
    """The subset of MPI semantics the scanners rely on."""

    rank: int
    size: int

    def bcast(self, obj: Any, root: int = 0) -> Any: ...
    def scatter(self, items: Sequence[Any] | None, root: int = 0) -> Any: ...
    def gather(self, obj: Any, root: int = 0) -> list[Any] | None: ...
    def allgather(self, obj: Any) -> list[Any]: ...
    def reduce(self, obj: Any, op: Callable[[Any, Any], Any],
               root: int = 0) -> Any | None: ...
    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any: ...
    def barrier(self) -> None: ...


class SerialComm:
    """Single-rank communicator: every collective is the identity."""

    rank = 0
    size = 1

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return obj

    def scatter(self, items: Sequence[Any] | None, root: int = 0) -> Any:
        if items is None or len(items) != 1:
            raise ValueError("serial scatter needs exactly one item")
        return items[0]

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        return [obj]

    def allgather(self, obj: Any) -> list[Any]:
        return [obj]

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any],
               root: int = 0) -> Any | None:
        return obj

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        return obj

    def barrier(self) -> None:
        return None


class PipeComm:
    """Star-topology communicator used inside :func:`run_spmd` workers.

    Rank 0 holds one pipe per peer and coordinates every collective; other
    ranks hold a single pipe to rank 0.  This is not a performance-optimal
    MPI (no tree algorithms) but preserves the semantics and the
    per-rank measurement points of the paper's parallel scans.
    """

    def __init__(self, rank: int, size: int,
                 root_conns: list[Any] | None, my_conn: Any | None) -> None:
        self.rank = rank
        self.size = size
        self._root_conns = root_conns  # rank 0 only: conns to ranks 1..size-1
        self._my_conn = my_conn        # non-root only: conn to rank 0

    # -- point-to-point through the star ---------------------------------

    def _send_to(self, peer: int, obj: Any) -> None:
        if self.rank != 0:
            raise RuntimeError("only rank 0 routes messages")
        self._root_conns[peer - 1].send(obj)

    def _recv_from(self, peer: int) -> Any:
        if self.rank != 0:
            raise RuntimeError("only rank 0 routes messages")
        return self._root_conns[peer - 1].recv()

    # -- collectives ------------------------------------------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if root != 0:
            raise NotImplementedError("star topology broadcasts from rank 0")
        if self.size == 1:
            return obj
        if self.rank == 0:
            for peer in range(1, self.size):
                self._send_to(peer, obj)
            return obj
        return self._my_conn.recv()

    def scatter(self, items: Sequence[Any] | None, root: int = 0) -> Any:
        if root != 0:
            raise NotImplementedError("star topology scatters from rank 0")
        if self.rank == 0:
            if items is None or len(items) != self.size:
                raise ValueError("scatter needs exactly one item per rank")
            for peer in range(1, self.size):
                self._send_to(peer, items[peer])
            return items[0]
        return self._my_conn.recv()

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        if root != 0:
            raise NotImplementedError("star topology gathers to rank 0")
        if self.rank == 0:
            out = [obj]
            for peer in range(1, self.size):
                out.append(self._recv_from(peer))
            return out
        self._my_conn.send(obj)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj)
        return self.bcast(gathered)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any],
               root: int = 0) -> Any | None:
        gathered = self.gather(obj, root)
        if gathered is None:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        return self.bcast(self.reduce(obj, op))

    def barrier(self) -> None:
        self.gather(None)
        self.bcast(None)


def _spmd_worker(rank: int, size: int, root_conns: list[Any] | None,
                 my_conn: Any | None, fn: Callable[..., Any], payload: Any,
                 result_queue: mp.Queue) -> None:
    comm = PipeComm(rank, size, root_conns, my_conn)
    try:
        result = fn(comm, payload)
        result_queue.put((rank, result, None))
    except Exception as exc:  # surface worker failures to the parent
        result_queue.put((rank, None, repr(exc)))


def run_spmd(fn: Callable[[Communicator, Any], Any], size: int,
             payload: Any = None) -> list[Any]:
    """Run ``fn(comm, payload)`` on ``size`` ranks; return per-rank results.

    ``fn`` and ``payload`` must be picklable (module-level functions).
    Raises ``RuntimeError`` if any rank raised, with the rank's exception
    repr attached.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    if size == 1:
        return [fn(SerialComm(), payload)]

    ctx = mp.get_context("fork")
    pipes = [ctx.Pipe() for _ in range(size - 1)]
    root_conns = [parent for parent, _child in pipes]
    result_queue: mp.Queue = ctx.Queue()

    procs = []
    procs.append(ctx.Process(target=_spmd_worker,
                             args=(0, size, root_conns, None, fn, payload,
                                   result_queue)))
    for rank in range(1, size):
        procs.append(ctx.Process(
            target=_spmd_worker,
            args=(rank, size, None, pipes[rank - 1][1], fn, payload,
                  result_queue)))
    for p in procs:
        p.start()
    results: dict[int, Any] = {}
    errors: dict[int, str] = {}
    for _ in range(size):
        rank, result, error = result_queue.get()
        if error is not None:
            errors[rank] = error
        results[rank] = result
    for p in procs:
        p.join()
    if errors:
        raise RuntimeError(f"SPMD ranks failed: {errors}")
    return [results[r] for r in range(size)]
