"""Summary statistics: the box-plot numbers behind Fig. 8."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoxStats", "box_stats"]


@dataclass(frozen=True, slots=True)
class BoxStats:
    """Five-number summary plus the mean (the green triangle in Fig. 8)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    def row(self) -> tuple[float, float, float, float, float, float]:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum,
                self.mean)


def box_stats(values) -> BoxStats:
    """Box statistics of a sample; empty samples give all-zero stats."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return BoxStats(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
    q1, med, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    return BoxStats(float(arr.min()), float(q1), float(med), float(q3),
                    float(arr.max()), float(arr.mean()), int(arr.size))
