"""Analysis helpers: miss-ratio histograms, box statistics, table output."""

from .histogram import MISS_RATIO_RANGES, days_above, days_per_range, range_labels
from .reportgen import render_emulation_summary, render_retention_report
from .stats import BoxStats, box_stats
from .tables import format_bytes, format_table, percent, series_block

__all__ = [
    "MISS_RATIO_RANGES",
    "days_above",
    "days_per_range",
    "range_labels",
    "BoxStats",
    "box_stats",
    "format_bytes",
    "format_table",
    "percent",
    "series_block",
    "render_emulation_summary",
    "render_retention_report",
]
