"""Rendering retention and replay results as operator-facing text reports.

Used by the command-line tools and handy for cron-mail style summaries:
one call turns a :class:`~repro.core.report.RetentionReport` or an
:class:`~repro.emulation.emulator.EmulationResult` into a readable block.
"""

from __future__ import annotations

from ..core.classification import UserClass
from ..core.report import RetentionReport
from .histogram import days_above, days_per_range, range_labels
from .tables import format_bytes, format_table, percent

__all__ = ["render_retention_report", "render_emulation_summary"]


def render_retention_report(report: RetentionReport) -> str:
    """A complete text rendering of one retention run."""
    header = [
        f"policy: {report.policy}",
        f"evaluated at: t={report.t_c}",
        f"file lifetime: {report.lifetime_days:g} days",
    ]
    if report.target_bytes > 0:
        status = "met" if report.target_met else "NOT MET"
        header.append(
            f"purge target: {format_bytes(report.target_bytes)} -- {status} "
            f"(purged {format_bytes(report.purged_bytes_total)}, "
            f"{report.passes_used} pass(es))")
    else:
        header.append(
            f"purge target: none (purged "
            f"{format_bytes(report.purged_bytes_total)})")

    rows = []
    for cls in UserClass:
        tally = report.tally(cls)
        rows.append([cls.label, tally.purged_files,
                     format_bytes(tally.purged_bytes),
                     tally.retained_files,
                     format_bytes(tally.retained_bytes),
                     tally.affected_users])
    table = format_table(
        ["group", "purged files", "purged bytes", "retained files",
         "retained bytes", "users affected"], rows)
    return "\n".join(header) + "\n\n" + table


def render_emulation_summary(result) -> str:
    """Summary of one replay (:class:`EmulationResult`)."""
    metrics = result.metrics
    ratios = metrics.miss_ratio()
    lines = [
        f"policy: {result.policy}  (lifetime {result.lifetime_days:g} days)",
        f"accesses replayed: {metrics.total_accesses}",
        f"file misses: {metrics.total_misses} "
        f"({percent(metrics.total_misses / metrics.total_accesses)})"
        if metrics.total_accesses else "file misses: 0",
        f"days with >5% misses: {days_above(ratios, 0.05)} of {metrics.n_days}",
        f"retention runs: {len(result.reports)} "
        f"({sum(1 for r in result.reports if not r.target_met)} unmet targets)",
        f"final state: {result.final_file_count} files, "
        f"{format_bytes(result.final_total_bytes)}",
        "",
        format_table(["miss-ratio range", "days"],
                     list(zip(range_labels(), days_per_range(ratios)))),
        "",
        format_table(
            ["group", "misses"],
            [[cls.label, metrics.total_group_misses(cls)]
             for cls in UserClass]),
    ]
    return "\n".join(lines)
