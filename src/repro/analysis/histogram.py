"""Miss-ratio range histograms (Figs. 1 and 6).

The paper bins daily file-miss ratios into eleven ranges -- 1-5 %, 5-10 %,
10-20 %, then decade-wide bins up to 100 % -- and reports the number of
days falling in each.  Days under 1 % (including zero-miss days) fall
outside every bin, exactly as in the paper's figures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MISS_RATIO_RANGES", "range_labels", "days_per_range",
           "days_above"]

#: The Fig. 1 / Fig. 6 bin edges, as (low, high] fractions.
MISS_RATIO_RANGES: tuple[tuple[float, float], ...] = (
    (0.01, 0.05), (0.05, 0.10), (0.10, 0.20), (0.20, 0.30), (0.30, 0.40),
    (0.40, 0.50), (0.50, 0.60), (0.60, 0.70), (0.70, 0.80), (0.80, 0.90),
    (0.90, 1.00),
)


def range_labels() -> list[str]:
    """Human-readable bin labels: '1%-5%', '5%-10%', ..."""
    return [f"{int(lo * 100)}%-{int(hi * 100)}%" for lo, hi in
            MISS_RATIO_RANGES]


def days_per_range(daily_miss_ratios: np.ndarray) -> list[int]:
    """Number of days whose miss ratio falls in each paper bin.

    Bins are half-open ``(low, high]`` except the first, which includes
    its lower edge (a day at exactly 1 % counts as 1-5 %).
    """
    ratios = np.asarray(daily_miss_ratios, dtype=np.float64)
    counts = []
    for i, (lo, hi) in enumerate(MISS_RATIO_RANGES):
        if i == 0:
            mask = (ratios >= lo) & (ratios <= hi)
        else:
            mask = (ratios > lo) & (ratios <= hi)
        counts.append(int(mask.sum()))
    return counts


def days_above(daily_miss_ratios: np.ndarray, threshold: float) -> int:
    """Days with a miss ratio strictly above ``threshold``.

    The paper's headline "days with more than 5 % file misses" statistic.
    """
    ratios = np.asarray(daily_miss_ratios, dtype=np.float64)
    return int((ratios > threshold).sum())
