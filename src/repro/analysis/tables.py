"""Paper-style table and series formatting shared by the benchmarks.

Every benchmark regenerates its figure/table as plain text rows; these
helpers keep the output format consistent and dependency-free.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_bytes", "percent", "series_block"]

_UNITS = ("B", "KiB", "MiB", "GiB", "TiB", "PiB")


def format_bytes(n: float) -> str:
    """Human-readable byte count ('3.42 TiB')."""
    value = float(n)
    sign = "-" if value < 0 else ""
    value = abs(value)
    for unit in _UNITS:
        if value < 1024.0 or unit == _UNITS[-1]:
            return f"{sign}{value:.2f} {unit}"
        value /= 1024.0
    return f"{sign}{value:.2f} {_UNITS[-1]}"


def percent(fraction: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{fraction * 100.0:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width text table.

    >>> print(format_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_block(title: str, labels: Sequence[object],
                 values: Sequence[object]) -> str:
    """A labelled series as 'label: value' lines under a title."""
    lines = [title, "-" * len(title)]
    for label, value in zip(labels, values):
        lines.append(f"{label}: {value}")
    return "\n".join(lines)
