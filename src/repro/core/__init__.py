"""ActiveDR core: activity model, activeness evaluation, classification,
and the retention policies (ActiveDR + the FLT baseline)."""

from .activeness import (
    ActivenessEvaluator,
    ActivenessParams,
    UserActiveness,
    RankAccumulator,
    evaluate_type_bulk,
    accumulate_type_ranks,
    fold_type_ranks,
    safe_exp,
    type_log_rank,
)
from .activity import (
    DATA_TRANSFER,
    DATASET_GENERATED,
    FILE_ACCESS,
    JOB_COMPLETION,
    JOB_SUBMISSION,
    PUBLICATION,
    SHELL_LOGIN,
    Activity,
    ActivityCategory,
    ActivityLedger,
    ActivityType,
    activities_from_jobs,
    activities_from_publications,
)
from .classification import (
    GROUP_SCAN_ORDER,
    UserClass,
    classify,
    classify_all,
    group_counts,
    scan_ordered_uids,
)
from .config import FACILITY_PRESETS, RetentionConfig, facility_preset
from .exemption import ExemptionList
from .cache_policy import JobResidencyIndex, ScratchAsCachePolicy
from .flt import FixedLifetimePolicy
from .incremental import ColumnarActivityStore, build_activity_store
from .notify import (
    CollectingNotifier,
    FileNotifier,
    LoggingNotifier,
    Notification,
    Notifier,
    notification_from_report,
    render_notification,
)
from .policy import RetentionPolicy, purge_target_bytes
from .report import GroupTally, RetentionReport
from .retention import ActiveDRPolicy, adjusted_lifetime_seconds
from .value_based import CompositeValueFunction, ValueBasedPolicy

__all__ = [
    "ActivenessEvaluator",
    "ActivenessParams",
    "UserActiveness",
    "RankAccumulator",
    "evaluate_type_bulk",
    "accumulate_type_ranks",
    "fold_type_ranks",
    "safe_exp",
    "type_log_rank",
    "Activity",
    "ActivityCategory",
    "ActivityLedger",
    "ActivityType",
    "activities_from_jobs",
    "activities_from_publications",
    "JOB_SUBMISSION",
    "PUBLICATION",
    "SHELL_LOGIN",
    "FILE_ACCESS",
    "DATA_TRANSFER",
    "JOB_COMPLETION",
    "DATASET_GENERATED",
    "GROUP_SCAN_ORDER",
    "UserClass",
    "classify",
    "classify_all",
    "group_counts",
    "scan_ordered_uids",
    "FACILITY_PRESETS",
    "RetentionConfig",
    "facility_preset",
    "ExemptionList",
    "FixedLifetimePolicy",
    "JobResidencyIndex",
    "ScratchAsCachePolicy",
    "CompositeValueFunction",
    "ValueBasedPolicy",
    "ColumnarActivityStore",
    "build_activity_store",
    "CollectingNotifier",
    "FileNotifier",
    "LoggingNotifier",
    "Notification",
    "Notifier",
    "notification_from_report",
    "render_notification",
    "RetentionPolicy",
    "purge_target_bytes",
    "GroupTally",
    "RetentionReport",
    "ActiveDRPolicy",
    "adjusted_lifetime_seconds",
]
