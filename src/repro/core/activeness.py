"""User-activeness evaluation -- Eqs. (1)-(6) of the paper.

For a user's activities of one type, sorted by timestamp ``a_0 .. a_{k-1}``
and evaluated at current time ``t_c`` with period length ``d`` days:

* the number of periods (Eq. 1)::

      m = ceil((a_{k-1}.ts - a_0.ts) / to_ts(d)),   clamped to >= 1

* the per-period average activeness (Eq. 2)::

      Avg(D) = sum(impacts) / m

* each activity lands in period ``e`` (Eq. 4; periods are anchored at
  ``t_c`` and count back, so the most recent period has the largest
  index)::

      e = m - ceil((t_c - a.ts) / to_ts(d)) + 1

  activities older than the ``m``-period window get ``e < 1`` and drop out;

* per-period activeness ratio (Eq. 3): ``b_e = D_e / Avg(D)`` where ``D_e``
  sums the impacts that fell in period ``e``;

* the overall rank of the type (Eq. 5)::

      Phi = prod_{e=1..m} (b_e)^e

  so recent periods dominate through the exponent; ``Phi >= 1`` means the
  user is *active* for this type, ``Phi < 1`` inactive.

* category ranks (Eq. 6) multiply the type ranks within the operation and
  outcome categories.

Numerical notes
---------------
``Phi`` ranges across many orders of magnitude (the paper's Fig. 5 spans
[0, 1e7]); with ~100 periods the literal product over ``b^e`` overflows
float64, so all rank arithmetic here is performed in log space
(``log Phi = sum e * log b_e``) and only materialized linearly for
reporting.

A period with no activity has ``b_e = 0``, which collapses the product to
zero.  That is the faithful reading of Eq. (5) and reproduces the paper's
extreme skew (92-95 % of users rank as both-inactive); ``empty_period``
exposes two relaxations (``"skip"``: ignore empty periods; ``"epsilon"``:
floor ``b`` at a small constant) for the ablation study.

Both a plain-Python reference implementation and a vectorized NumPy bulk
evaluator are provided; property tests pin them to each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..vfs.file_meta import DAY_SECONDS
from .activity import Activity, ActivityCategory, ActivityLedger, ActivityType

__all__ = [
    "ActivenessParams",
    "UserActiveness",
    "type_log_rank",
    "collapse_cutoff",
    "evaluate_type_bulk",
    "fold_type_ranks",
    "RankAccumulator",
    "accumulate_type_ranks",
    "ActivenessEvaluator",
    "safe_exp",
]

_EMPTY_POLICIES = ("zero", "skip", "epsilon")


def safe_exp(log_value: float) -> float:
    """``exp`` that saturates to ``inf`` instead of raising on overflow."""
    if log_value == -math.inf:
        return 0.0
    try:
        return math.exp(log_value)
    except OverflowError:
        return math.inf


@dataclass(frozen=True, slots=True)
class ActivenessParams:
    """Tunables of the activeness evaluation.

    Attributes
    ----------
    period_days:
        Length ``d`` of one evaluation period; the paper sweeps
        7 / 30 / 60 / 90 days.
    empty_period:
        Treatment of periods with no activity inside the ``m``-period
        window: ``"zero"`` (faithful Eq. 5 -- the rank collapses to 0),
        ``"skip"`` (empty periods contribute factor 1), or ``"epsilon"``
        (``b`` floored at ``epsilon``).
    epsilon:
        Floor used by the ``"epsilon"`` policy.
    max_periods:
        Optional cap on ``m``: evaluate at most this many recent periods
        (the paper's introduction speaks of "a specified number of
        periods").  ``None`` (default) derives ``m`` purely from the
        activity span per Eq. (1).  With a cap, activities older than
        ``max_periods`` periods before ``t_c`` drop out of both the
        window *and* the Eq. (2) average.
    """

    period_days: float = 7.0
    empty_period: str = "zero"
    epsilon: float = 1e-9
    max_periods: int | None = None

    def __post_init__(self) -> None:
        if self.period_days <= 0:
            raise ValueError("period_days must be positive")
        if self.empty_period not in _EMPTY_POLICIES:
            raise ValueError(f"empty_period must be one of {_EMPTY_POLICIES}")
        if not (0 < self.epsilon < 1):
            raise ValueError("epsilon must lie in (0, 1)")
        if self.max_periods is not None and self.max_periods < 1:
            raise ValueError("max_periods must be >= 1 when set")

    @property
    def period_seconds(self) -> int:
        """``to_ts(d)`` of Eq. (1): the period length in trace time units."""
        return int(round(self.period_days * DAY_SECONDS))


@dataclass(slots=True)
class UserActiveness:
    """Evaluated activeness of one user at one instant.

    ``log_op`` / ``log_oc`` are ``log Phi_op`` / ``log Phi_oc`` (Eq. 6);
    ``has_op`` / ``has_oc`` record whether the user had *any* activity in
    the category -- users without history default to the initial rank 1.0
    for lifetime purposes (section 3.4) but are classified *inactive*.
    """

    uid: int
    log_op: float = 0.0
    log_oc: float = 0.0
    has_op: bool = False
    has_oc: bool = False
    #: Timestamp of the user's most recent activity (any type); -1 when the
    #: user has no history.  Used only as a scan-order tie-breaker: under
    #: the faithful Eq. (5) most inactive users collapse to rank exactly 0,
    #: and "ascending activeness" must still purge the longest-idle users
    #: first for the prioritization of section 3.4 to mean anything.
    last_ts: int = -1
    #: Total impact across all activities (secondary tie-breaker).
    total_impact: float = 0.0

    @property
    def op_rank(self) -> float:
        """Linear ``Phi_op`` (0 when the user has no operation history)."""
        return safe_exp(self.log_op) if self.has_op else 0.0

    @property
    def oc_rank(self) -> float:
        return safe_exp(self.log_oc) if self.has_oc else 0.0

    @property
    def op_active(self) -> bool:
        """Active iff ``Phi_op >= 1`` -- users without history are inactive."""
        return self.has_op and self.log_op >= 0.0

    @property
    def oc_active(self) -> bool:
        return self.has_oc and self.log_oc >= 0.0

    def log_lifetime_multiplier(self, *, zero_rank_as_initial: bool = True) -> float:
        """``log(Phi_op * Phi_oc)`` as used by the Eq. (7) lifetime rule.

        Categories without history contribute the initial rank 1.0
        (section 3.4's new-user rule).  With ``zero_rank_as_initial`` a
        category whose computed rank collapsed to exactly 0 (an empty
        period under the faithful Eq. 5) also falls back to the initial
        rank -- otherwise every such user's lifetime would be zero, which
        contradicts the first-scan protection of section 3.4.
        """
        total = 0.0
        for has, log_rank in ((self.has_op, self.log_op),
                              (self.has_oc, self.log_oc)):
            if not has:
                continue
            if log_rank == -math.inf:
                if not zero_rank_as_initial:
                    return -math.inf
                continue  # fall back to initial rank 1.0 (log 0)
            total += log_rank
        return total


# ----------------------------------------------------------------------
# scalar reference implementation

def _ceil_div(numerator: int, denominator: int) -> int:
    return -((-numerator) // denominator)


def type_log_rank(timestamps: Sequence[int], impacts: Sequence[float],
                  t_c: int, params: ActivenessParams) -> float:
    """``log Phi_lambda`` for one user's activities of one type.

    Reference (plain Python) implementation of Eqs. (1)-(5).  Activities
    need not be pre-sorted.  Activities after ``t_c`` are rejected --
    callers clip the ledger first.  Returns ``0.0`` (rank 1.0, the initial
    rank) when there are no activities.
    """
    k = len(timestamps)
    if k != len(impacts):
        raise ValueError("timestamps and impacts must have equal length")
    if k == 0:
        return 0.0
    order = sorted(range(k), key=lambda i: timestamps[i])
    ts = [int(timestamps[i]) for i in order]
    imp = [float(impacts[i]) for i in order]
    if ts[-1] > t_c:
        raise ValueError("activity timestamp after evaluation time t_c")

    length = params.period_seconds
    if params.max_periods is not None:
        # Window cap: only the last max_periods periods are visible; a
        # user whose entire history is older ranks 0 (stale, not new).
        horizon = t_c - params.max_periods * length
        keep = [i for i, t in enumerate(ts) if t >= horizon]
        if not keep:
            return -math.inf
        ts = [ts[i] for i in keep]
        imp = [imp[i] for i in keep]
    m = max(_ceil_div(ts[-1] - ts[0], length), 1)          # Eq. (1)
    avg = sum(imp) / m                                      # Eq. (2)
    if avg <= 0.0:
        return -math.inf  # all impacts zero: no measurable activeness

    period_sums = [0.0] * (m + 1)  # index 1..m
    for t, d in zip(ts, imp):
        q = max(_ceil_div(t_c - t, length), 1)
        e = m - q + 1                                       # Eq. (4)
        if 1 <= e <= m:
            period_sums[e] += d

    log_rank = 0.0
    for e in range(1, m + 1):
        b = period_sums[e] / avg                            # Eq. (3)
        if b <= 0.0:
            if params.empty_period == "zero":
                return -math.inf
            if params.empty_period == "skip":
                continue
            b = params.epsilon
        log_rank += e * math.log(b)                         # Eq. (5), log space
    return log_rank


def collapse_cutoff(t_c: int, params: ActivenessParams) -> int | None:
    """Timestamp below which a user's *newest* activity forces rank 0.

    Under the faithful ``empty_period="zero"`` policy, period ``e = m``
    (the newest, anchored at ``t_c``) is always inside the evaluation
    window: by Eq. (4) an activity lands there iff
    ``ceil((t_c - ts) / L) <= 1``, i.e. ``ts >= t_c - L``.  A user whose
    most recent activity satisfies ``last_ts < t_c - L`` therefore has
    an empty newest period, so Eq. (5) collapses their type rank to
    exactly 0 (``log rank = -inf``) -- regardless of how the rest of the
    history buckets, and regardless of ``max_periods`` (a cap only
    shrinks the window, never repopulates period ``m``).

    Incremental evaluators use this to skip the full per-user fold for
    stale users: only users with ``last_ts >= t_c - L`` need their
    history refolded.  Returns the cutoff ``t_c - L`` (collapse iff
    ``last_ts < cutoff``), or ``None`` when the shortcut is unsound
    (the ``"skip"`` and ``"epsilon"`` relaxations keep stale users at
    finite ranks that depend on the whole history).
    """
    if params.empty_period != "zero":
        return None
    return t_c - params.period_seconds


# ----------------------------------------------------------------------
# vectorized bulk implementation

def evaluate_type_bulk(uids: np.ndarray, timestamps: np.ndarray,
                       impacts: np.ndarray, t_c: int,
                       params: ActivenessParams, *,
                       assume_sorted: bool = False,
                       ) -> tuple[np.ndarray, np.ndarray]:
    """``log Phi_lambda`` for *all* users of one activity type at once.

    Parameters are parallel arrays over activities.  Returns
    ``(unique_uids, log_ranks)`` with users in ascending uid order.
    Numerically identical to :func:`type_log_rank` per user (pinned by
    property tests).

    ``assume_sorted`` declares the inputs already sorted by
    ``np.lexsort((timestamps, uids))`` (uid-major, time-minor), skipping
    the internal sort -- callers that need per-user aggregates anyway
    (see :func:`accumulate_type_ranks`) sort once and share the order.
    """
    uids = np.asarray(uids, dtype=np.int64)
    ts = np.asarray(timestamps, dtype=np.int64)
    imp = np.asarray(impacts, dtype=np.float64)
    if not (uids.shape == ts.shape == imp.shape):
        raise ValueError("uids, timestamps, impacts must be parallel arrays")
    if uids.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    if ts.max() > t_c:
        raise ValueError("activity timestamp after evaluation time t_c")

    if not assume_sorted:
        order = np.lexsort((ts, uids))
        uids, ts, imp = uids[order], ts[order], imp[order]

    length = params.period_seconds

    if params.max_periods is not None:
        # Apply the window cap up front; users whose whole history falls
        # outside the window still appear in the output, at rank 0.
        all_uids = np.unique(uids)
        keep = ts >= t_c - params.max_periods * length
        uids, ts, imp = uids[keep], ts[keep], imp[keep]
        if uids.size == 0:
            return all_uids, np.full(all_uids.size, -np.inf)
        in_uids, in_ranks = evaluate_type_bulk(
            uids, ts, imp, t_c,
            ActivenessParams(period_days=params.period_days,
                             empty_period=params.empty_period,
                             epsilon=params.epsilon),
            assume_sorted=True)  # masking preserves the sort
        ranks = np.full(all_uids.size, -np.inf)
        ranks[np.searchsorted(all_uids, in_uids)] = in_ranks
        return all_uids, ranks

    unique_uids, starts, counts = np.unique(uids, return_index=True,
                                            return_counts=True)
    n_users = unique_uids.size
    first_ts = ts[starts]
    last_ts = ts[starts + counts - 1]

    span = last_ts - first_ts
    m_u = np.maximum(-((-span) // length), 1)               # Eq. (1)
    sums = np.add.reduceat(imp, starts)
    avg_u = sums / m_u                                      # Eq. (2)

    # Period index per activity (Eq. 4).
    q = np.maximum(-((ts - t_c) // length), 1)
    m_per_act = np.repeat(m_u, counts)
    e_act = m_per_act - q + 1
    in_window = e_act >= 1  # e <= m is guaranteed because q >= 1

    # Per-(user, period) impact sums via a flat bincount.
    max_m = int(m_u.max())
    user_idx_per_act = np.repeat(np.arange(n_users), counts)
    stride = max_m + 1
    keys = user_idx_per_act[in_window] * stride + e_act[in_window]
    period_sums = np.bincount(keys, weights=imp[in_window],
                              minlength=n_users * stride)

    # Expand to one row per (user, e=1..m_u) and fold Eq. (5) in log space.
    # ``offsets`` marks each user's first row; it doubles as the reduceat
    # segment index below, so it is computed exactly once.
    total_rows = int(m_u.sum())
    user_idx_flat = np.repeat(np.arange(n_users), m_u)
    offsets = np.concatenate(([0], np.cumsum(m_u)[:-1]))
    e_flat = np.arange(total_rows) - np.repeat(offsets, m_u) + 1
    d_flat = period_sums[user_idx_flat * stride + e_flat]
    avg_flat = avg_u[user_idx_flat]

    log_ranks = np.zeros(n_users, dtype=np.float64)
    zero_avg = avg_u <= 0.0

    with np.errstate(divide="ignore", invalid="ignore"):
        b_flat = d_flat / avg_flat

    # "Empty" means the period ratio is not positive -- judged on the
    # ratio (not the raw sum) so denormal underflow agrees with the
    # scalar reference.  NaN ratios (avg == 0) are handled by zero_avg.
    empty = b_flat <= 0.0
    if params.empty_period == "zero":
        b_safe = np.where(empty, 1.0, b_flat)
        contrib = e_flat * np.log(b_safe)
        collapsed = np.bincount(user_idx_flat, weights=empty.astype(np.float64),
                                minlength=n_users) > 0
    elif params.empty_period == "skip":
        b_safe = np.where(empty, 1.0, b_flat)  # log(1) = 0 contribution
        contrib = e_flat * np.log(b_safe)
        collapsed = np.zeros(n_users, dtype=bool)
    else:  # epsilon
        b_safe = np.where(empty, params.epsilon, b_flat)
        contrib = e_flat * np.log(b_safe)
        collapsed = np.zeros(n_users, dtype=bool)

    contrib = np.where(np.isfinite(avg_flat) & (avg_flat > 0), contrib, 0.0)
    log_ranks = np.add.reduceat(contrib, offsets)
    log_ranks[collapsed | zero_avg] = -np.inf
    return unique_uids, log_ranks


def fold_type_ranks(uid_arr: np.ndarray, ts_arr: np.ndarray,
                    imp_arr: np.ndarray, t_c: int,
                    params: ActivenessParams,
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Segment-fold one activity type's columns per user.

    Returns parallel arrays ``(uids, log_ranks, last_ts, impact_sums)``
    with users in ascending uid order.  The uid-major/time-minor lexsort
    is computed once and reused for the rank evaluation *and* the
    per-user recency / total-impact aggregates (no second argsort pass).
    """
    uid_arr = np.asarray(uid_arr, dtype=np.int64)
    ts_arr = np.asarray(ts_arr, dtype=np.int64)
    imp_arr = np.asarray(imp_arr, dtype=np.float64)
    if uid_arr.size == 0:
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0, dtype=np.float64)
        return empty_i, empty_f, empty_i.copy(), empty_f.copy()
    order = np.lexsort((ts_arr, uid_arr))
    uid_s, ts_s, imp_s = uid_arr[order], ts_arr[order], imp_arr[order]
    uids, log_ranks = evaluate_type_bulk(uid_s, ts_s, imp_s, t_c, params,
                                         assume_sorted=True)
    # Per-user recency / volume for the scan-order tie-breakers: within a
    # uid the timestamps ascend, so the last row of each segment is the max.
    _, starts, counts = np.unique(uid_s, return_index=True,
                                  return_counts=True)
    last_ts = ts_s[starts + counts - 1]
    impact_sums = np.add.reduceat(imp_s, starts)
    return uids, log_ranks, last_ts, impact_sums


class RankAccumulator:
    """Preallocated per-uid columns folding Eq. (6) across activity types.

    The evaluators used to fold each type's bulk evaluation into a dict of
    :class:`UserActiveness` objects with a per-user Python loop -- the top
    profile entry on the fast replay path.  This accumulator keeps the
    fold columnar: one array slot per uid, scatter-adds per type, and a
    single object-materialization pass at the end.  The arithmetic is the
    same sequence of float operations as the old per-object fold (category
    ranks start at ``log 1 = 0`` and add each type's log rank in type
    order), so results are bit-identical.
    """

    __slots__ = ("uids", "log_op", "log_oc", "has_op", "has_oc",
                 "last_ts", "total_impact")

    def __init__(self, uids: np.ndarray) -> None:
        self.uids = np.asarray(uids, dtype=np.int64)  # sorted, unique
        n = self.uids.size
        self.log_op = np.zeros(n, dtype=np.float64)
        self.log_oc = np.zeros(n, dtype=np.float64)
        self.has_op = np.zeros(n, dtype=np.bool_)
        self.has_oc = np.zeros(n, dtype=np.bool_)
        self.last_ts = np.full(n, -1, dtype=np.int64)
        self.total_impact = np.zeros(n, dtype=np.float64)

    def scatter(self, atype: ActivityType, uids: np.ndarray,
                log_ranks: np.ndarray, last_ts: np.ndarray,
                impact_sums: np.ndarray) -> None:
        """Fold one type's :func:`fold_type_ranks` output in.

        Every uid in ``uids`` must be present in ``self.uids``.
        """
        if uids.size == 0:
            return
        idx = np.searchsorted(self.uids, uids)
        if atype.category is ActivityCategory.OPERATION:
            self.log_op[idx] += log_ranks
            self.has_op[idx] = True
        else:
            self.log_oc[idx] += log_ranks
            self.has_oc[idx] = True
        self.last_ts[idx] = np.maximum(self.last_ts[idx], last_ts)
        self.total_impact[idx] += impact_sums

    def finalize(self, known_uids: Iterable[int] = (),
                 ) -> dict[int, UserActiveness]:
        """Materialize the accumulated columns as ``{uid: UserActiveness}``.

        ``known_uids`` seeds users that may have no activity (initial rank,
        both categories inactive), matching the evaluator contracts.
        """
        results: dict[int, UserActiveness] = {
            int(uid): UserActiveness(int(uid)) for uid in known_uids
        }
        for uid, log_op, log_oc, has_op, has_oc, last_ts, impact in zip(
                self.uids.tolist(), self.log_op.tolist(),
                self.log_oc.tolist(), self.has_op.tolist(),
                self.has_oc.tolist(), self.last_ts.tolist(),
                self.total_impact.tolist()):
            ua = results.get(uid)
            if ua is None:
                ua = results[uid] = UserActiveness(uid)
            ua.log_op = log_op if has_op else 0.0
            ua.log_oc = log_oc if has_oc else 0.0
            ua.has_op = has_op
            ua.has_oc = has_oc
            ua.last_ts = last_ts
            ua.total_impact = impact
        return results


def accumulate_type_ranks(results: dict[int, "UserActiveness"],
                          atype: ActivityType,
                          uid_arr: np.ndarray, ts_arr: np.ndarray,
                          imp_arr: np.ndarray, t_c: int,
                          params: ActivenessParams) -> None:
    """Fold one activity type's bulk evaluation into ``results``.

    Compatibility shim over :func:`fold_type_ranks` for callers holding a
    dict of live :class:`UserActiveness` objects.  The evaluators
    themselves batch every type through a :class:`RankAccumulator`
    instead, materializing objects once -- prefer that shape for new code.
    """
    uids, log_ranks, last_ts, impact_sums = fold_type_ranks(
        uid_arr, ts_arr, imp_arr, t_c, params)
    is_op = atype.category is ActivityCategory.OPERATION
    for uid, log_rank, ts_last, impact in zip(
            uids.tolist(), log_ranks.tolist(), last_ts.tolist(),
            impact_sums.tolist()):
        ua = results.get(uid)
        if ua is None:
            ua = results[uid] = UserActiveness(uid)
        if is_op:
            ua.log_op = ua.log_op + log_rank if ua.has_op else log_rank
            ua.has_op = True
        else:
            ua.log_oc = ua.log_oc + log_rank if ua.has_oc else log_rank
            ua.has_oc = True
        ua.last_ts = max(ua.last_ts, ts_last)
        ua.total_impact += impact


# ----------------------------------------------------------------------
# the evaluator facade

class ActivenessEvaluator:
    """Evaluates every user's operation and outcome activeness.

    The evaluator folds the per-type ranks of Eq. (5) into the category
    ranks of Eq. (6)::

        log Phi_op = sum over operation types of log Phi_lambda
        log Phi_oc = sum over outcome  types of log Phi_lambda

    Types a user has no activities of contribute the initial rank 1.0
    (log 0), matching the paper's new-user rule.
    """

    def __init__(self, params: ActivenessParams | None = None) -> None:
        self.params = params or ActivenessParams()

    def evaluate(self, ledger: ActivityLedger, t_c: int,
                 known_uids: Iterable[int] = (),
                 ) -> dict[int, UserActiveness]:
        """Activeness of every user at time ``t_c``.

        ``known_uids`` adds users (e.g. the system user list) that may have
        no recorded activity; they come out with the initial rank and both
        categories inactive.
        """
        folded: list[tuple[ActivityType, tuple[np.ndarray, ...]]] = []
        for atype in ledger.types():
            acts = ledger.activities(atype)
            if not acts:
                continue
            uid_arr = np.fromiter((a.uid for a in acts), dtype=np.int64,
                                  count=len(acts))
            ts_arr = np.fromiter((a.ts for a in acts), dtype=np.int64,
                                 count=len(acts))
            imp_arr = np.fromiter((a.impact for a in acts), dtype=np.float64,
                                  count=len(acts))
            folded.append((atype, fold_type_ranks(uid_arr, ts_arr, imp_arr,
                                                  t_c, self.params)))

        all_uids = (np.unique(np.concatenate([f[1][0] for f in folded]))
                    if folded else np.empty(0, dtype=np.int64))
        acc = RankAccumulator(all_uids)
        for atype, columns in folded:
            acc.scatter(atype, *columns)
        return acc.finalize(known_uids)
