"""User classification: the 2x2 activeness matrix (Fig. 4) and scan order.

ActiveDR classifies every user by whether their operation and outcome
activeness ranks reach 1.0, then scans user directories group by group,
least-protected first (section 3.4):

1. **BOTH_INACTIVE** and **OUTCOME_ACTIVE_ONLY** first, in ascending order
   of user activeness (operation rank primary, outcome rank secondary);
2. then **OPERATION_ACTIVE_ONLY** and **BOTH_ACTIVE**, "in an ascending
   order of the outcome activeness".

Files of users visited earlier face the purge first, so the ordering *is*
the policy's protection mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping

from .activeness import UserActiveness

__all__ = ["UserClass", "classify", "classify_all", "group_counts",
           "scan_ordered_uids", "GROUP_SCAN_ORDER"]


class UserClass(Enum):
    """The four activeness categories of Fig. 4.

    Values match the paper's Fig. 5 group labels G(1)..G(4).
    """

    BOTH_ACTIVE = 1
    OPERATION_ACTIVE_ONLY = 2
    OUTCOME_ACTIVE_ONLY = 3
    BOTH_INACTIVE = 4

    @property
    def label(self) -> str:
        return {
            UserClass.BOTH_ACTIVE: "Both Active",
            UserClass.OPERATION_ACTIVE_ONLY: "Operation Active Only",
            UserClass.OUTCOME_ACTIVE_ONLY: "Outcome Active Only",
            UserClass.BOTH_INACTIVE: "Both Inactive",
        }[self]


#: Purge scan order: least-protected group first.
GROUP_SCAN_ORDER: tuple[UserClass, ...] = (
    UserClass.BOTH_INACTIVE,
    UserClass.OUTCOME_ACTIVE_ONLY,
    UserClass.OPERATION_ACTIVE_ONLY,
    UserClass.BOTH_ACTIVE,
)


def classify(activeness: UserActiveness) -> UserClass:
    """Map one user's activeness to their Fig. 4 quadrant."""
    if activeness.op_active:
        return (UserClass.BOTH_ACTIVE if activeness.oc_active
                else UserClass.OPERATION_ACTIVE_ONLY)
    return (UserClass.OUTCOME_ACTIVE_ONLY if activeness.oc_active
            else UserClass.BOTH_INACTIVE)


def classify_all(activeness: Mapping[int, UserActiveness],
                 ) -> dict[int, UserClass]:
    """Classification for every evaluated user."""
    return {uid: classify(ua) for uid, ua in activeness.items()}


def group_counts(classes: Mapping[int, UserClass]) -> dict[UserClass, int]:
    """Population of each quadrant (the Fig. 5 percentages derive from it)."""
    counts = {cls: 0 for cls in UserClass}
    for cls in classes.values():
        counts[cls] += 1
    return counts


def scan_ordered_uids(activeness: Mapping[int, UserActiveness],
                      ) -> list[tuple[UserClass, list[int]]]:
    """Users grouped and ordered exactly as the retention scan visits them.

    Returns the four groups in :data:`GROUP_SCAN_ORDER`; within the first
    two groups users ascend by (operation rank, outcome rank), within the
    last two by (outcome rank, operation rank) per section 3.4.

    Under the faithful Eq. (5) most inactive users share rank exactly 0,
    so rank ties break by *staleness*: users whose most recent activity is
    older come first (are purged first), then lower total impact, then uid
    for determinism.  This keeps "ascending order of user activeness"
    meaningful inside the collapsed group.
    """
    by_class: dict[UserClass, list[UserActiveness]] = {c: [] for c in UserClass}
    for ua in activeness.values():
        by_class[classify(ua)].append(ua)

    neg_inf = -float("inf")

    ordered: list[tuple[UserClass, list[int]]] = []
    for cls in GROUP_SCAN_ORDER:
        members = by_class[cls]
        if cls in (UserClass.BOTH_INACTIVE, UserClass.OUTCOME_ACTIVE_ONLY):
            members.sort(key=lambda ua: (ua.log_op if ua.has_op else neg_inf,
                                         ua.log_oc if ua.has_oc else neg_inf,
                                         ua.last_ts, ua.total_impact, ua.uid))
        else:
            members.sort(key=lambda ua: (ua.log_oc if ua.has_oc else neg_inf,
                                         ua.log_op if ua.has_op else neg_inf,
                                         ua.last_ts, ua.total_impact, ua.uid))
        ordered.append((cls, [ua.uid for ua in members]))
    return ordered
