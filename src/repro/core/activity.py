"""User-activity model: activity types, activities, and trace extractors.

Section 3.1 of the paper splits user activities into two *categories*:

* **operations** -- things users do on the system (job submission, shell
  login, file access, data transfer, ...), and
* **outcomes** -- what users produce by using the system (completed jobs,
  generated datasets, publications, ...).

For the activeness algorithm every activity reduces to a ``(user, time,
impact)`` triple; the *type* carries the category and an administrator
weight (section 5: administrators configure which activities count and how
much).  The evaluation in the paper uses two concrete types, reproduced by
the extractors here:

* ``job_submission`` (operation) with impact = core hours, and
* ``publication`` (outcome) with impact = Eq. (8),
  ``(citations + 1) * (n_authors - author_index + 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

from ..traces.schema import JobRecord, PublicationRecord

__all__ = [
    "ActivityCategory",
    "ActivityType",
    "Activity",
    "ActivityLedger",
    "JOB_SUBMISSION",
    "PUBLICATION",
    "SHELL_LOGIN",
    "FILE_ACCESS",
    "DATA_TRANSFER",
    "JOB_COMPLETION",
    "DATASET_GENERATED",
    "activities_from_jobs",
    "activities_from_publications",
]


class ActivityCategory(Enum):
    """The two activity dimensions of the activeness matrix."""

    OPERATION = "operation"
    OUTCOME = "outcome"


@dataclass(frozen=True, slots=True)
class ActivityType:
    """An administrator-configured activity type.

    ``weight`` scales every impact of this type; the paper's evaluation
    uses weight 1.0 for both of its types, but section 5 explicitly allows
    facilities to weight what they track.
    """

    name: str
    category: ActivityCategory
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("activity weight must be positive")


# The Table 2 example types, pre-declared for convenience.
JOB_SUBMISSION = ActivityType("job_submission", ActivityCategory.OPERATION)
SHELL_LOGIN = ActivityType("shell_login", ActivityCategory.OPERATION)
FILE_ACCESS = ActivityType("file_access", ActivityCategory.OPERATION)
DATA_TRANSFER = ActivityType("data_transfer", ActivityCategory.OPERATION)
JOB_COMPLETION = ActivityType("job_completion", ActivityCategory.OUTCOME)
DATASET_GENERATED = ActivityType("dataset_generated", ActivityCategory.OUTCOME)
PUBLICATION = ActivityType("publication", ActivityCategory.OUTCOME)


@dataclass(slots=True)
class Activity:
    """One ``(user, time, impact)`` observation of some activity type."""

    uid: int
    ts: int
    impact: float

    def __post_init__(self) -> None:
        if self.impact < 0:
            raise ValueError("activity impact must be non-negative")


class ActivityLedger:
    """All activities known to the evaluator, grouped by type.

    The ledger is what the activeness evaluator consumes; it is cheap to
    append to incrementally between purge triggers (the emulator extends it
    as the replay clock advances).
    """

    def __init__(self) -> None:
        self._by_type: dict[ActivityType, list[Activity]] = {}

    def add(self, activity_type: ActivityType, activity: Activity) -> None:
        self._by_type.setdefault(activity_type, []).append(activity)

    def extend(self, activity_type: ActivityType,
               activities: Iterable[Activity]) -> None:
        self._by_type.setdefault(activity_type, []).extend(activities)

    def types(self) -> list[ActivityType]:
        return list(self._by_type)

    def types_in(self, category: ActivityCategory) -> list[ActivityType]:
        return [t for t in self._by_type if t.category is category]

    def activities(self, activity_type: ActivityType) -> list[Activity]:
        return self._by_type.get(activity_type, [])

    def until(self, t_c: int) -> "ActivityLedger":
        """A ledger restricted to activities with ``ts <= t_c``.

        The emulator evaluates activeness "as of" each purge trigger; this
        prevents future activities from leaking into the evaluation.
        """
        clipped = ActivityLedger()
        for atype, acts in self._by_type.items():
            clipped._by_type[atype] = [a for a in acts if a.ts <= t_c]
        return clipped

    def total_activities(self) -> int:
        return sum(len(v) for v in self._by_type.values())

    def uids(self) -> set[int]:
        """Every user with at least one recorded activity."""
        out: set[int] = set()
        for acts in self._by_type.values():
            out.update(a.uid for a in acts)
        return out


# ----------------------------------------------------------------------
# trace extractors (the paper's two concrete activity sources)

def activities_from_jobs(jobs: Iterable[JobRecord],
                         activity_type: ActivityType = JOB_SUBMISSION,
                         ) -> Iterator[Activity]:
    """Map job submissions to operation activities.

    Time is the submission time; impact is core hours scaled by the type
    weight (section 4.1.3: "for each job, we use the core hours ... as the
    activeness score").
    """
    for job in jobs:
        yield Activity(job.uid, job.submit_ts,
                       job.core_hours() * activity_type.weight)


def activities_from_publications(pubs: Iterable[PublicationRecord],
                                 activity_type: ActivityType = PUBLICATION,
                                 ) -> Iterator[Activity]:
    """Map publications to per-author outcome activities (Eq. 8).

    One publication yields one activity per author, each scored by the
    author's rank in the author list.
    """
    for pub in pubs:
        for uid in pub.author_uids:
            yield Activity(uid, pub.ts,
                           pub.author_score(uid) * activity_type.weight)
