"""The value-based retention baseline (related work, section 2).

Value-based approaches score each *file* by a combination of attributes
-- age, size, type, access frequency -- and purge the lowest-value files
first.  The paper excludes them from its evaluation because "there is no
consensus on the definition of data value"; precisely for that reason the
implementation here makes the value function pluggable, with the
composite weighted form the literature converges on as the default:

    value(f) = w_recency * recency(f) + w_size * smallness(f)
             + w_type * type_weight(ext(f))

where recency decays exponentially with the file's age and smallness
favours cheap-to-keep files.  The policy ranks all files ascending by
value and purges until the target utilization is reached (or, without a
target, purges every file whose value falls below a threshold).

This baseline is *file-centric*: like FLT it knows nothing about users,
which is exactly the contrast ActiveDR draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..vfs.file_meta import FileMeta
from ..vfs.filesystem import VirtualFileSystem
from .activeness import UserActiveness
from .classification import UserClass, classify
from .config import RetentionConfig
from .exemption import ExemptionList
from .policy import RetentionPolicy, purge_target_bytes
from .report import RetentionReport

__all__ = ["ValueFunction", "CompositeValueFunction", "ValueBasedPolicy"]

#: A value function maps (path, metadata, now) to a non-negative score.
ValueFunction = Callable[[str, FileMeta, int], float]

#: Default per-extension keep weights: checkpoints and logs are cheap to
#: regenerate; curated datasets are not.
_DEFAULT_TYPE_WEIGHTS = {
    "h5": 1.0, "nc": 1.0, "dat": 0.8, "bin": 0.7,
    "out": 0.4, "chk": 0.2, "log": 0.1,
}


@dataclass(frozen=True, slots=True)
class CompositeValueFunction:
    """The weighted-attribute value definition most variants share."""

    w_recency: float = 1.0
    w_size: float = 0.3
    w_type: float = 0.3
    recency_halflife_days: float = 30.0
    type_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_TYPE_WEIGHTS))
    default_type_weight: float = 0.5

    def type_weight(self, path: str) -> float:
        """Keep weight for the file's extension.

        The extension is taken from the *basename*: a dotted directory
        (``/proj/v1.2/output``) must not leak into the extension, and an
        extensionless file under a dotted directory has no extension.
        """
        name = path.rsplit("/", 1)[-1]
        ext = name.rsplit(".", 1)[-1] if "." in name else ""
        return self.type_weights.get(ext, self.default_type_weight)

    def __call__(self, path: str, meta: FileMeta, now: int) -> float:
        age_days = max(meta.age_days(now), 0.0)
        recency = 0.5 ** (age_days / self.recency_halflife_days)
        # Smallness in (0, 1]: a 4 KiB file scores ~1, a 1 TiB file ~0.06.
        smallness = 1.0 / (1.0 + math.log2(max(meta.size, 1) / 4096.0) / 10.0
                           ) if meta.size > 4096 else 1.0
        return (self.w_recency * recency + self.w_size * smallness
                + self.w_type * self.type_weight(path))


class ValueBasedPolicy(RetentionPolicy):
    """Purge lowest-value files first, up to the purge target.

    Without a positive purge target the policy purges every file whose
    value is below ``value_threshold`` (the "information lifecycle"
    formulation).
    """

    name = "ValueBased"

    def __init__(self, config: RetentionConfig | None = None, *,
                 value_function: ValueFunction | None = None,
                 value_threshold: float = 0.1) -> None:
        super().__init__(config)
        self.value_function = value_function or CompositeValueFunction()
        self.value_threshold = value_threshold

    def run(self, fs: VirtualFileSystem, t_c: int, *,
            activeness: Mapping[int, UserActiveness] | None = None,
            exemptions: ExemptionList | None = None) -> RetentionReport:
        target = purge_target_bytes(fs, self.config)
        report = RetentionReport(policy=self.name, t_c=t_c,
                                 lifetime_days=self.config.lifetime_days,
                                 target_bytes=target)

        def group_of(uid: int) -> UserClass:
            if activeness is None:
                return UserClass.BOTH_INACTIVE
            ua = activeness.get(uid)
            return classify(ua) if ua is not None else UserClass.BOTH_INACTIVE

        scored: list[tuple[float, str, FileMeta]] = []
        for path, meta in fs.iter_files():
            if exemptions is not None and path in exemptions:
                continue
            scored.append((self.value_function(path, meta, t_c), path, meta))
        scored.sort(key=lambda item: (item[0], item[1]))

        purged = 0
        for value, path, meta in scored:
            if target > 0:
                if purged >= target:
                    break
            elif value >= self.value_threshold:
                break  # ascending order: everything further is valuable
            fs.remove_file(path)
            report.record_purge(group_of(meta.uid), meta.uid, meta.size)
            purged += meta.size

        for path, meta in fs.iter_files():
            report.record_retain(group_of(meta.uid), meta.uid, meta.size)
        if target > 0:
            report.target_met = purged >= target
        return report
