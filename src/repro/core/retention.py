"""The ActiveDR retention engine (section 3.4).

The procedure, faithful to the paper:

1. Users are classified into the four activeness groups and visited in
   :data:`repro.core.classification.GROUP_SCAN_ORDER` -- both-inactive
   first, both-active last -- with users inside each group ascending by
   activeness rank.  Least-protected files face the purge first.
2. For each non-reserved file of a user, the lifetime is *adjusted* by the
   user's activeness (Eq. 7)::

       epsilon_f = d * Phi_op * Phi_oc

   and the file is purged when ``t_c - atime_f > epsilon_f``.  Both-inactive
   and history-less users fall back to the initial lifetime ``d`` on their
   first scan (the section 3.4 new-user rule).
3. The moment the purge target is reached the whole procedure stops.
4. When a group finishes and the target is still unmet, ActiveDR
   *retrospectively* re-scans that group up to ``retrospective_passes``
   times (5 in the paper), decaying the user activeness rank by
   ``rank_decay`` (20 %) on each pass -- i.e. pass ``i`` uses
   ``epsilon_f * (1 - rank_decay)^i``.
5. If the target is still unmet after every group is tried, the run ends
   with ``target_met=False`` so the administrator can be alerted.

All rank arithmetic is in log space (ranks can exceed 1e300 for extremely
active users; the adjusted lifetime saturates at "never purge").
"""

from __future__ import annotations

import math
from typing import Mapping

from ..vfs.file_meta import DAY_SECONDS
from ..vfs.filesystem import VirtualFileSystem
from .activeness import UserActiveness
from .classification import UserClass, classify, scan_ordered_uids
from .config import RetentionConfig
from .exemption import ExemptionList
from .policy import RetentionPolicy, purge_target_bytes
from .report import RetentionReport

__all__ = ["ActiveDRPolicy", "adjusted_lifetime_seconds"]


def adjusted_lifetime_seconds(config: RetentionConfig, ua: UserActiveness,
                              group: UserClass, decay_factor: float = 1.0,
                              ) -> float:
    """Eq. (7): the activeness-adjusted lifetime of a user's files.

    ``decay_factor`` is ``(1 - rank_decay)^pass`` during retrospective
    passes.  Both-inactive users are floored at the initial lifetime
    (before decay), implementing the first-scan protection of section 3.4.
    Returns ``inf`` when the rank is large enough that the file can never
    age out.
    """
    log_mult = ua.log_lifetime_multiplier(
        zero_rank_as_initial=config.zero_rank_as_initial)
    if group is UserClass.BOTH_INACTIVE:
        log_mult = max(log_mult, 0.0)
    base_seconds = config.lifetime_days * DAY_SECONDS
    log_lifetime = math.log(base_seconds) + log_mult
    if decay_factor < 1.0:
        log_lifetime += math.log(decay_factor)
    if log_lifetime > 700.0:  # exp overflow guard: effectively "never purge"
        return math.inf
    return math.exp(log_lifetime)


class _TargetReached(Exception):
    """Internal control flow: the purge target was hit mid-scan."""


class ActiveDRPolicy(RetentionPolicy):
    """Activeness-based data retention.

    ``notifier`` is the section 3.4 administrator-reporting mechanism
    (see :mod:`repro.core.notify`); it fires whenever a run ends with the
    purge target unmet.
    """

    name = "ActiveDR"

    def __init__(self, config: RetentionConfig | None = None, *,
                 notifier=None) -> None:
        super().__init__(config)
        self.notifier = notifier

    def run(self, fs: VirtualFileSystem, t_c: int, *,
            activeness: Mapping[int, UserActiveness] | None = None,
            exemptions: ExemptionList | None = None) -> RetentionReport:
        if activeness is None:
            raise ValueError("ActiveDR requires a user-activeness evaluation")

        target = purge_target_bytes(fs, self.config)
        report = RetentionReport(policy=self.name, t_c=t_c,
                                 lifetime_days=self.config.lifetime_days,
                                 target_bytes=target)

        # Owners present on disk but absent from the evaluation are new
        # users: initial rank, classified both-inactive.
        full = dict(activeness)
        for uid in fs.uids():
            full.setdefault(uid, UserActiveness(uid))

        groups = scan_ordered_uids(full)
        self._classes = {uid: cls for cls, uids in groups for uid in uids}

        if target <= 0:
            # Already at or below the target utilization: stop immediately
            # (section 3.4 -- the procedure halts the moment the target is
            # reached, and here it is reached before any purge).
            self._record_survivors(fs, report, full)
            return report

        try:
            for group, uids in groups:
                self._scan_group(fs, t_c, report, full, group, uids,
                                 exemptions, target, decay_factor=1.0)
                for retro in range(1, self.config.retrospective_passes + 1):
                    if report.purged_bytes_total >= target:
                        break
                    decay = (1.0 - self.config.rank_decay) ** retro
                    report.passes_used = max(report.passes_used, retro + 1)
                    self._scan_group(fs, t_c, report, full, group, uids,
                                     exemptions, target, decay_factor=decay)
        except _TargetReached:
            pass

        report.target_met = report.purged_bytes_total >= target
        self._record_survivors(fs, report, full)
        if not report.target_met and self.notifier is not None:
            from .notify import notification_from_report
            self.notifier.notify(notification_from_report(report))
        return report

    # ------------------------------------------------------------------

    def _scan_group(self, fs: VirtualFileSystem, t_c: int,
                    report: RetentionReport,
                    activeness: Mapping[int, UserActiveness],
                    group: UserClass, uids: list[int],
                    exemptions: ExemptionList | None,
                    target: int, decay_factor: float) -> None:
        for uid in uids:
            ua = activeness[uid]
            lifetime = adjusted_lifetime_seconds(self.config, ua, group,
                                                 decay_factor)
            if math.isinf(lifetime):
                continue
            stale: list[tuple[str, int]] = []
            for path, meta in fs.iter_user_files(uid):
                if exemptions is not None and path in exemptions:
                    continue
                if t_c - meta.atime > lifetime:
                    stale.append((path, meta.size))
            for path, size in stale:
                fs.remove_file(path)
                report.record_purge(group, uid, size)
                if report.purged_bytes_total >= target:
                    raise _TargetReached

    def _record_survivors(self, fs: VirtualFileSystem,
                          report: RetentionReport,
                          activeness: Mapping[int, UserActiveness]) -> None:
        for path, meta in fs.iter_files():
            cls = self._classes.get(meta.uid)
            if cls is None:
                ua = activeness.get(meta.uid)
                cls = classify(ua) if ua else UserClass.BOTH_INACTIVE
            report.record_retain(cls, meta.uid, meta.size)
