"""Columnar activity storage for rapid repeated activeness evaluation.

The paper's preparation procedure re-evaluates every user's activeness at
each purge trigger ("finishes rapidly, within one second").  The plain
:class:`~repro.core.activeness.ActivenessEvaluator` walks Python
``Activity`` objects to build NumPy arrays on every call -- fine for one
shot, wasteful when a year-long replay triggers 52 evaluations over a
mostly-append-only history.

:class:`ColumnarActivityStore` keeps activities as per-type *column
chunks* (uid / timestamp / impact arrays).  Appends are O(1) amortized;
evaluation consolidates each type's chunks at most once between appends
and feeds the cached columns straight into the vectorized evaluator.
Semantically it matches ``ActivenessEvaluator.evaluate`` over an
equivalent ledger exactly (pinned by tests).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..traces.schema import JobRecord, PublicationRecord
from .activeness import (ActivenessParams, RankAccumulator, UserActiveness,
                         fold_type_ranks)
from .activity import (
    Activity,
    ActivityType,
    JOB_SUBMISSION,
    PUBLICATION,
)

__all__ = ["ColumnarActivityStore", "build_activity_store"]


class _TypeColumns:
    """Append-optimized (uids, ts, impacts) columns for one activity type."""

    __slots__ = ("_chunks", "_cache")

    def __init__(self) -> None:
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def append_arrays(self, uids: np.ndarray, ts: np.ndarray,
                      impacts: np.ndarray) -> None:
        if not (uids.shape == ts.shape == impacts.shape):
            raise ValueError("columns must be parallel arrays")
        if uids.size == 0:
            return
        if impacts.min() < 0:
            raise ValueError("activity impact must be non-negative")
        self._chunks.append((uids.astype(np.int64, copy=True),
                             ts.astype(np.int64, copy=True),
                             impacts.astype(np.float64, copy=True)))
        self._cache = None

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._cache is None:
            if not self._chunks:
                empty_i = np.empty(0, dtype=np.int64)
                self._cache = (empty_i, empty_i.copy(),
                               np.empty(0, dtype=np.float64))
            elif len(self._chunks) == 1:
                self._cache = self._chunks[0]
            else:
                self._cache = tuple(  # type: ignore[assignment]
                    np.concatenate([c[i] for c in self._chunks])
                    for i in range(3))
                self._chunks = [self._cache]
        return self._cache

    def __len__(self) -> int:
        return sum(c[0].size for c in self._chunks)


class ColumnarActivityStore:
    """Append-only activity history with cached per-type columns."""

    def __init__(self) -> None:
        self._types: dict[ActivityType, _TypeColumns] = {}

    # ------------------------------------------------------------------
    # ingestion

    def _columns_for(self, activity_type: ActivityType) -> _TypeColumns:
        cols = self._types.get(activity_type)
        if cols is None:
            cols = self._types[activity_type] = _TypeColumns()
        return cols

    def append(self, activity_type: ActivityType, uid: int, ts: int,
               impact: float) -> None:
        """Append a single activity."""
        self._columns_for(activity_type).append_arrays(
            np.asarray([uid]), np.asarray([ts]), np.asarray([impact]))

    def extend(self, activity_type: ActivityType,
               activities: Iterable[Activity]) -> int:
        """Append a batch of :class:`Activity` records; returns the count."""
        acts = list(activities)
        if not acts:
            return 0
        self._columns_for(activity_type).append_arrays(
            np.fromiter((a.uid for a in acts), np.int64, len(acts)),
            np.fromiter((a.ts for a in acts), np.int64, len(acts)),
            np.fromiter((a.impact for a in acts), np.float64, len(acts)))
        return len(acts)

    def ingest_jobs(self, jobs: Iterable[JobRecord],
                    activity_type: ActivityType = JOB_SUBMISSION) -> int:
        """Columnar fast path for job traces (impact = core hours)."""
        jobs = list(jobs)
        if not jobs:
            return 0
        n = len(jobs)
        self._columns_for(activity_type).append_arrays(
            np.fromiter((j.uid for j in jobs), np.int64, n),
            np.fromiter((j.submit_ts for j in jobs), np.int64, n),
            np.fromiter((j.core_hours() * activity_type.weight
                         for j in jobs), np.float64, n))
        return n

    def ingest_publications(self, pubs: Iterable[PublicationRecord],
                            activity_type: ActivityType = PUBLICATION) -> int:
        """Columnar fast path for publications (Eq. 8 per author)."""
        uids: list[int] = []
        ts: list[int] = []
        impacts: list[float] = []
        for pub in pubs:
            for uid in pub.author_uids:
                uids.append(uid)
                ts.append(pub.ts)
                impacts.append(pub.author_score(uid) * activity_type.weight)
        if not uids:
            return 0
        self._columns_for(activity_type).append_arrays(
            np.asarray(uids), np.asarray(ts), np.asarray(impacts))
        return len(uids)

    # ------------------------------------------------------------------
    # inspection

    def types(self) -> list[ActivityType]:
        return [t for t, c in self._types.items() if len(c)]

    def total_activities(self) -> int:
        return sum(len(c) for c in self._types.values())

    # ------------------------------------------------------------------
    # snapshot / restore

    def consolidate(self) -> None:
        """Merge every type's chunks into one contiguous column set.

        Evaluation does this lazily per type; call it eagerly before
        forking worker processes (or snapshotting) so the concatenation
        cost is paid once, pre-fork, instead of once per child.
        """
        for cols in self._types.values():
            cols.columns()

    def snapshot_state(self) -> dict[ActivityType, tuple[np.ndarray,
                                                         np.ndarray,
                                                         np.ndarray]]:
        """Consolidated ``{type: (uids, ts, impacts)}`` columns.

        The arrays are copies in ingestion order, so later appends to the
        store never alias a snapshot.  Feed the result to
        :meth:`restore_state` (of this store or a fresh one) to rebuild
        an equivalent history; evaluations of the restored store are
        bit-identical because the column contents and type insertion
        order round-trip exactly.
        """
        out = {}
        for atype, cols in self._types.items():
            uids, ts, imp = cols.columns()
            out[atype] = (uids.copy(), ts.copy(), imp.copy())
        return out

    def restore_state(self, state: Mapping[ActivityType,
                                           tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]]) -> None:
        """Replace this store's history with a :meth:`snapshot_state`.

        Types are recreated in the mapping's iteration order (the
        snapshot preserves the source store's), which keeps the per-type
        scatter order -- and therefore evaluation results -- identical.
        """
        self._types = {}
        for atype, (uids, ts, imp) in state.items():
            self._columns_for(atype).append_arrays(
                np.asarray(uids), np.asarray(ts), np.asarray(imp))

    # ------------------------------------------------------------------
    # evaluation

    def evaluate(self, t_c: int, params: ActivenessParams | None = None,
                 known_uids: Iterable[int] = (),
                 ) -> dict[int, UserActiveness]:
        """Every user's activeness at ``t_c`` -- identical semantics to
        :meth:`repro.core.activeness.ActivenessEvaluator.evaluate` over an
        equivalent ledger.

        Activities after ``t_c`` are excluded (the store may legitimately
        hold future history; the replay clips per trigger).
        """
        params = params or ActivenessParams()

        folded = []
        for atype, cols in self._types.items():
            uids, ts, imp = cols.columns()
            if uids.size == 0:
                continue
            visible = ts <= t_c
            if not visible.all():
                uids, ts, imp = uids[visible], ts[visible], imp[visible]
            if uids.size == 0:
                continue
            folded.append((atype, fold_type_ranks(uids, ts, imp, t_c,
                                                  params)))

        all_uids = (np.unique(np.concatenate([f[1][0] for f in folded]))
                    if folded else np.empty(0, dtype=np.int64))
        acc = RankAccumulator(all_uids)
        for atype, columns in folded:
            acc.scatter(atype, *columns)
        return acc.finalize(known_uids)


def build_activity_store(jobs: Iterable[JobRecord] = (),
                         publications: Iterable[PublicationRecord] = (),
                         ) -> ColumnarActivityStore:
    """A store pre-loaded with the paper's two activity sources.

    This is the trigger-time preparation input of the emulation: ingest
    once, then evaluate at every purge trigger against the consolidated
    columns.
    """
    store = ColumnarActivityStore()
    store.ingest_jobs(jobs)
    store.ingest_publications(publications)
    return store
