"""Retention run reports: the counters behind Figs. 9-11 / Tables 4-6.

The paper's emulation keeps, per parallel process, "a series of counters to
record the number of purged/retained files, the total size of the
purged/retained files, and the number of users whose files are
purged/retained".  ``RetentionReport`` is the merged form of those
counters, broken down by user activeness group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .classification import UserClass

__all__ = ["GroupTally", "RetentionReport"]


@dataclass(slots=True)
class GroupTally:
    """Purge/retain counters for one user-activeness group."""

    purged_files: int = 0
    purged_bytes: int = 0
    retained_files: int = 0
    retained_bytes: int = 0
    users_purged: set[int] = field(default_factory=set)
    users_scanned: set[int] = field(default_factory=set)

    @property
    def affected_users(self) -> int:
        """Users that lost at least one file (the Fig. 11 measure)."""
        return len(self.users_purged)

    def merge(self, other: "GroupTally") -> None:
        self.purged_files += other.purged_files
        self.purged_bytes += other.purged_bytes
        self.retained_files += other.retained_files
        self.retained_bytes += other.retained_bytes
        self.users_purged |= other.users_purged
        self.users_scanned |= other.users_scanned


@dataclass(slots=True)
class RetentionReport:
    """Outcome of one retention run.

    ``target_bytes`` is how much the run had to purge; ``target_met``
    records whether it got there (ActiveDR reports unmet targets to the
    administrator, section 3.4).
    """

    policy: str
    t_c: int
    lifetime_days: float
    target_bytes: int = 0
    purged_bytes_total: int = 0
    target_met: bool = True
    passes_used: int = 1
    groups: dict[UserClass, GroupTally] = field(
        default_factory=lambda: {cls: GroupTally() for cls in UserClass})

    # ------------------------------------------------------------------

    def tally(self, group: UserClass) -> GroupTally:
        return self.groups[group]

    def record_purge(self, group: UserClass, uid: int, size: int) -> None:
        t = self.groups[group]
        t.purged_files += 1
        t.purged_bytes += size
        t.users_purged.add(uid)
        self.purged_bytes_total += size

    def record_retain(self, group: UserClass, uid: int, size: int) -> None:
        t = self.groups[group]
        t.retained_files += 1
        t.retained_bytes += size
        t.users_scanned.add(uid)

    # ------------------------------------------------------------------
    # aggregate views

    @property
    def purged_files_total(self) -> int:
        return sum(t.purged_files for t in self.groups.values())

    @property
    def retained_bytes_total(self) -> int:
        return sum(t.retained_bytes for t in self.groups.values())

    @property
    def retained_files_total(self) -> int:
        return sum(t.retained_files for t in self.groups.values())

    def purged_bytes(self, group: UserClass) -> int:
        return self.groups[group].purged_bytes

    def retained_bytes(self, group: UserClass) -> int:
        return self.groups[group].retained_bytes

    def affected_users(self, group: UserClass) -> int:
        return self.groups[group].affected_users

    def merge(self, other: "RetentionReport") -> None:
        """Fold in a report from another shard (parallel scan reduction)."""
        self.purged_bytes_total += other.purged_bytes_total
        self.target_met = self.target_met and other.target_met
        self.passes_used = max(self.passes_used, other.passes_used)
        for cls, tally in other.groups.items():
            self.groups[cls].merge(tally)

    def summary_rows(self) -> list[tuple[str, int, int, int, int, int]]:
        """Per-group rows: (label, purged files, purged bytes, retained
        files, retained bytes, affected users)."""
        return [(cls.label, t.purged_files, t.purged_bytes, t.retained_files,
                 t.retained_bytes, t.affected_users)
                for cls, t in self.groups.items()]
