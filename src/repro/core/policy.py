"""Common retention-policy interface.

Both the FLT baseline and ActiveDR expose ``run(fs, t_c, ...)`` returning a
:class:`repro.core.report.RetentionReport`; the emulator drives them
through this interface.  Shared helpers for target computation live here.
"""

from __future__ import annotations

import abc
from typing import Mapping

from ..vfs.filesystem import VirtualFileSystem
from .activeness import UserActiveness
from .config import RetentionConfig
from .exemption import ExemptionList
from .report import RetentionReport

__all__ = ["RetentionPolicy", "purge_target_bytes"]


def purge_target_bytes(fs: VirtualFileSystem, config: RetentionConfig) -> int:
    """Bytes that must be purged to reach the configured utilization.

    The paper sets the purge target as a fraction of total capacity
    (section 4.1.3: "50% of the total storage capacity").  When the file
    system has no declared capacity the target is 0 (nothing *must* go;
    FLT still purges stale files, ActiveDR stops immediately).
    """
    if fs.capacity_bytes <= 0:
        return 0
    allowed = int(config.purge_target_utilization * fs.capacity_bytes)
    return max(0, fs.total_bytes - allowed)


class RetentionPolicy(abc.ABC):
    """A data-retention policy driving purge decisions over a VFS."""

    #: Human-readable policy name used in reports and benchmark output.
    name: str = "abstract"

    def __init__(self, config: RetentionConfig | None = None) -> None:
        self.config = config or RetentionConfig()

    @abc.abstractmethod
    def run(self, fs: VirtualFileSystem, t_c: int, *,
            activeness: Mapping[int, UserActiveness] | None = None,
            exemptions: ExemptionList | None = None) -> RetentionReport:
        """Execute one retention pass at time ``t_c``, mutating ``fs``.

        ``activeness`` is the user-activeness evaluation as of ``t_c``
        (required by ActiveDR; used by FLT only to label report groups so
        the two policies are comparable per user class).
        """
