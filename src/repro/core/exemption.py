"""Purge exemption: the administrator's file-reservation list.

Section 3.4: the administrator may specify a list of reserved files;
ActiveDR loads the paths into a compact prefix tree and skips reserved
files during the retention scan.  The reservation is a *contract on paths*:
if a user moves a reserved file, the reservation silently lapses (the new
path is not on the list).

Beyond the paper's exact-file reservations this implementation also accepts
directory reservations (a reserved directory covers every file below it),
which is how sites express "never purge /scratch/projX/inputs".
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..vfs.path_trie import PathTrie

__all__ = ["ExemptionList"]


class ExemptionList:
    """Reserved paths indexed in a compact prefix tree."""

    def __init__(self, paths: Iterable[str] = (),
                 directories: Iterable[str] = ()) -> None:
        self._files = PathTrie()
        self._dirs = PathTrie()
        for p in paths:
            self.reserve_file(p)
        for d in directories:
            self.reserve_directory(d)

    # ------------------------------------------------------------------

    def reserve_file(self, path: str) -> None:
        """Reserve one exact file path."""
        self._files.insert(path, True)

    def reserve_directory(self, path: str) -> None:
        """Reserve every current and future file under ``path``."""
        self._dirs.insert(path, True)

    def cancel(self, path: str) -> bool:
        """Drop a reservation (file or directory); True if one existed."""
        return self._files.delete(path) or self._dirs.delete(path)

    # ------------------------------------------------------------------

    def is_exempt(self, path: str) -> bool:
        """Whether the retention scan must skip ``path``."""
        if path in self._files:
            return True
        return self._dirs.covering_prefix(path) is not None

    def __contains__(self, path: str) -> bool:
        return self.is_exempt(path)

    def __len__(self) -> int:
        return len(self._files) + len(self._dirs)

    def reserved_files(self) -> Iterator[str]:
        for path, _ in self._files.items():
            yield path

    def reserved_directories(self) -> Iterator[str]:
        for path, _ in self._dirs.items():
            yield path

    @classmethod
    def from_file(cls, list_path: str) -> "ExemptionList":
        """Load a reservation list: one path per line.

        Lines ending in ``/`` reserve a directory; blank lines and lines
        starting with ``#`` are ignored.
        """
        exemptions = cls()
        with open(list_path) as f:
            for raw in f:
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                if line.endswith("/"):
                    exemptions.reserve_directory(line.rstrip("/"))
                else:
                    exemptions.reserve_file(line)
        return exemptions
