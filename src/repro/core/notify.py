"""Administrator notification (section 3.4's reporting mechanism).

"If the purge target is still not reached after all activeness groups are
tried, ActiveDR will stop and report to the administrator via specified
reporting mechanism."  The mechanism is site-specific, so the library
exposes a small protocol with three stock implementations:

* :class:`CollectingNotifier` -- in-memory, what tests and the emulator
  inspect;
* :class:`LoggingNotifier` -- standard-library logging;
* :class:`FileNotifier` -- append-only text log, the classic cron-mail
  substitute.

Attach one to :class:`~repro.core.retention.ActiveDRPolicy` via the
``notifier`` keyword; it fires once per retention run that ends with the
target unmet.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Protocol

from .report import RetentionReport

__all__ = ["Notification", "Notifier", "CollectingNotifier",
           "LoggingNotifier", "FileNotifier", "render_notification"]


@dataclass(frozen=True, slots=True)
class Notification:
    """An unmet-target event."""

    t_c: int
    policy: str
    target_bytes: int
    purged_bytes: int
    passes_used: int

    @property
    def shortfall_bytes(self) -> int:
        return max(self.target_bytes - self.purged_bytes, 0)


def render_notification(note: Notification) -> str:
    """One-line human-readable rendering."""
    return (f"{note.policy} purge target unmet at t={note.t_c}: "
            f"purged {note.purged_bytes} of {note.target_bytes} bytes "
            f"({note.shortfall_bytes} short) after {note.passes_used} "
            f"pass(es); administrator action required")


class Notifier(Protocol):
    """The site-specific reporting mechanism."""

    def notify(self, note: Notification) -> None: ...


class CollectingNotifier:
    """Collects notifications in memory."""

    def __init__(self) -> None:
        self.notifications: list[Notification] = []

    def notify(self, note: Notification) -> None:
        self.notifications.append(note)

    def __len__(self) -> int:
        return len(self.notifications)


class LoggingNotifier:
    """Emits a warning through the standard logging machinery."""

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self._logger = logger or logging.getLogger("repro.retention")

    def notify(self, note: Notification) -> None:
        self._logger.warning("%s", render_notification(note))


class FileNotifier:
    """Appends one line per event to a text file."""

    def __init__(self, path: str) -> None:
        self.path = path

    def notify(self, note: Notification) -> None:
        with open(self.path, "a") as f:
            f.write(render_notification(note) + "\n")


def notification_from_report(report: RetentionReport) -> Notification:
    """Build the event payload from an unmet-target report."""
    return Notification(t_c=report.t_c, policy=report.policy,
                        target_bytes=report.target_bytes,
                        purged_bytes=report.purged_bytes_total,
                        passes_used=report.passes_used)
