"""The scratch-as-a-cache retention baseline (related work, section 2).

Monti et al. treat the scratch space as a cache for running jobs: "a data
file can only stay in a given scratch space if an application is using
it".  The paper excludes the approach for its heavy staging traffic, but
it is the natural aggressive endpoint of the retention spectrum, so the
library implements it for comparison.

The policy is driven by the job trace: a user's files are *resident*
while the user has a job running (or within a configurable grace window
around job execution, modelling stage-in/stage-out); everything else is
evicted.  An interval index over job (start, end) times answers the
residency query in O(log n) per user.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Mapping

import numpy as np

from ..traces.schema import JobRecord
from ..vfs.file_meta import DAY_SECONDS
from ..vfs.filesystem import VirtualFileSystem
from .activeness import UserActiveness
from .classification import UserClass, classify
from .config import RetentionConfig
from .exemption import ExemptionList
from .policy import RetentionPolicy, purge_target_bytes
from .report import RetentionReport

__all__ = ["JobResidencyIndex", "ScratchAsCachePolicy"]


class JobResidencyIndex:
    """Per-user merged job-execution intervals with a grace window.

    ``grace_seconds`` extends each job's interval on both sides --
    stage-in before the job starts, stage-out after it ends.
    """

    def __init__(self, jobs: Iterable[JobRecord],
                 grace_seconds: int = DAY_SECONDS) -> None:
        if grace_seconds < 0:
            raise ValueError("grace_seconds must be >= 0")
        self.grace_seconds = grace_seconds
        self._cols: tuple[np.ndarray, ...] | None = None
        raw: dict[int, list[tuple[int, int]]] = {}
        for job in jobs:
            raw.setdefault(job.uid, []).append(
                (job.start_ts - grace_seconds, job.end_ts + grace_seconds))
        # Merge overlaps so residency queries are a single bisect.
        self._starts: dict[int, list[int]] = {}
        self._ends: dict[int, list[int]] = {}
        for uid, intervals in raw.items():
            intervals.sort()
            merged: list[tuple[int, int]] = []
            for lo, hi in intervals:
                if merged and lo <= merged[-1][1]:
                    merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
                else:
                    merged.append((lo, hi))
            self._starts[uid] = [lo for lo, _ in merged]
            self._ends[uid] = [hi for _, hi in merged]

    def is_resident(self, uid: int, t: int) -> bool:
        """Whether ``uid`` has a job (plus grace) covering instant ``t``."""
        starts = self._starts.get(uid)
        if not starts:
            return False
        i = bisect.bisect_right(starts, t) - 1
        return i >= 0 and t <= self._ends[uid][i]

    def users(self) -> list[int]:
        return list(self._starts)

    # ------------------------------------------------------------------
    # columnar view (the fast replay engine's residency kernel)

    def _interval_columns(self) -> tuple[np.ndarray, ...]:
        """``(uids, offsets, starts, ends)``: merged intervals flattened
        uid-ascending, with ``offsets`` of length ``len(uids) + 1``."""
        if self._cols is None:
            uids = np.fromiter(sorted(self._starts), np.int64,
                               len(self._starts))
            counts = np.fromiter((len(self._starts[int(u)]) for u in uids),
                                 np.int64, uids.size)
            offsets = np.concatenate((np.zeros(1, dtype=np.int64),
                                      np.cumsum(counts)))
            if uids.size:
                starts = np.concatenate(
                    [np.asarray(self._starts[int(u)], dtype=np.int64)
                     for u in uids])
                ends = np.concatenate(
                    [np.asarray(self._ends[int(u)], dtype=np.int64)
                     for u in uids])
            else:
                starts = np.empty(0, dtype=np.int64)
                ends = np.empty(0, dtype=np.int64)
            self._cols = (uids, offsets, starts, ends)
        return self._cols

    def resident_uids(self, t: int) -> np.ndarray:
        """Sorted uid array of every user resident at instant ``t``.

        Vectorized equivalent of calling :meth:`is_resident` for each
        indexed user: the merged intervals are disjoint, so a user is
        resident iff exactly one of their intervals covers ``t``.
        """
        uids, offsets, starts, ends = self._interval_columns()
        if uids.size == 0:
            return uids
        covered = (starts <= t) & (t <= ends)
        per_user = np.add.reduceat(covered, offsets[:-1])
        return uids[per_user > 0]


class ScratchAsCachePolicy(RetentionPolicy):
    """Evict every file whose owner has no job in execution at ``t_c``."""

    name = "ScratchAsCache"

    def __init__(self, config: RetentionConfig | None = None, *,
                 residency: JobResidencyIndex) -> None:
        super().__init__(config)
        self.residency = residency

    def run(self, fs: VirtualFileSystem, t_c: int, *,
            activeness: Mapping[int, UserActiveness] | None = None,
            exemptions: ExemptionList | None = None) -> RetentionReport:
        report = RetentionReport(policy=self.name, t_c=t_c,
                                 lifetime_days=self.config.lifetime_days,
                                 target_bytes=purge_target_bytes(fs,
                                                                 self.config))

        def group_of(uid: int) -> UserClass:
            if activeness is None:
                return UserClass.BOTH_INACTIVE
            ua = activeness.get(uid)
            return classify(ua) if ua is not None else UserClass.BOTH_INACTIVE

        to_purge: list[tuple[str, int, int]] = []
        for uid in fs.uids():
            if self.residency.is_resident(uid, t_c):
                continue
            for path, meta in fs.iter_user_files(uid):
                if exemptions is not None and path in exemptions:
                    continue
                to_purge.append((path, uid, meta.size))

        for path, uid, size in to_purge:
            fs.remove_file(path)
            report.record_purge(group_of(uid), uid, size)
        for path, meta in fs.iter_files():
            report.record_retain(group_of(meta.uid), meta.uid, meta.size)
        # The cache policy ignores utilization targets entirely; what it
        # purges is dictated by residency alone.
        report.target_met = True
        return report
