"""The fixed-lifetime (FLT) baseline retention policy.

FLT is the dominant strategy in production HPC systems (Table 1): a file is
purged as soon as it has not been accessed for a fixed lifetime, regardless
of who owns it.  The scan visits files in system order -- here the
deterministic path order of the compact prefix tree, standing in for the
inode-order directory walk a real purge daemon performs.

Two modes:

* ``enforce_target=False`` (default, the classic daemon): every stale,
  non-exempt file goes;
* ``enforce_target=True``: the scan stops once the purge target is
  reached, which is the "same purge target" setting the paper uses when
  comparing against ActiveDR.  FLT can *undershoot* the target -- it never
  purges a file inside its lifetime -- in which case ``target_met`` is
  ``False``.
"""

from __future__ import annotations

from typing import Mapping

from ..vfs.file_meta import DAY_SECONDS
from ..vfs.filesystem import VirtualFileSystem
from .activeness import UserActiveness
from .classification import UserClass, classify
from .config import RetentionConfig
from .exemption import ExemptionList
from .policy import RetentionPolicy, purge_target_bytes
from .report import RetentionReport

__all__ = ["FixedLifetimePolicy"]


class FixedLifetimePolicy(RetentionPolicy):
    """Purge any file older than the configured lifetime."""

    name = "FLT"

    def __init__(self, config: RetentionConfig | None = None, *,
                 enforce_target: bool = False) -> None:
        super().__init__(config)
        self.enforce_target = enforce_target

    def run(self, fs: VirtualFileSystem, t_c: int, *,
            activeness: Mapping[int, UserActiveness] | None = None,
            exemptions: ExemptionList | None = None) -> RetentionReport:
        lifetime_seconds = self.config.lifetime_days * DAY_SECONDS
        target = purge_target_bytes(fs, self.config) if self.enforce_target else 0

        report = RetentionReport(policy=self.name, t_c=t_c,
                                 lifetime_days=self.config.lifetime_days,
                                 target_bytes=target)

        def group_of(uid: int) -> UserClass:
            if activeness is None:
                return UserClass.BOTH_INACTIVE
            ua = activeness.get(uid)
            return classify(ua) if ua is not None else UserClass.BOTH_INACTIVE

        if self.enforce_target and target <= 0:
            # Utilization is already at or below the target: under the
            # "same purge target" comparison, this run purges nothing
            # (mirroring ActiveDR's immediate stop).
            for path, meta in fs.iter_files():
                report.record_retain(group_of(meta.uid), meta.uid, meta.size)
            return report

        # Decide first, mutate after: the trie must not change mid-walk.
        to_purge: list[tuple[str, UserClass, int, int]] = []
        purged_bytes = 0
        done = False
        for path, meta in fs.iter_files():
            if done:
                break
            if exemptions is not None and path in exemptions:
                continue
            if t_c - meta.atime > lifetime_seconds:
                to_purge.append((path, group_of(meta.uid), meta.uid, meta.size))
                purged_bytes += meta.size
                if self.enforce_target and target > 0 and purged_bytes >= target:
                    done = True

        for path, group, uid, size in to_purge:
            fs.remove_file(path)
            report.record_purge(group, uid, size)

        for path, meta in fs.iter_files():
            report.record_retain(group_of(meta.uid), meta.uid, meta.size)

        if self.enforce_target and target > 0:
            report.target_met = report.purged_bytes_total >= target
        return report
