"""Retention configuration and the Table 1 facility presets."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .activeness import ActivenessParams

__all__ = ["RetentionConfig", "FACILITY_PRESETS", "facility_preset"]


@dataclass(frozen=True, slots=True)
class RetentionConfig:
    """Administrator-facing configuration of a retention run.

    Attributes
    ----------
    lifetime_days:
        The initial file lifetime ``d`` of Eq. (7); applied verbatim by
        FLT, scaled by user activeness under ActiveDR.  New users and
        both-inactive users follow this initial lifetime on their first
        scan (section 3.4).
    purge_trigger_days:
        Interval between purge triggers (7 days at OLCF).
    purge_target_utilization:
        Target utilization of capacity after a purge run; the paper sets
        0.5 ("50 % of the total storage capacity").  ActiveDR stops the
        scan the moment usage drops to the target.
    retrospective_passes:
        How many extra passes over a group ActiveDR performs when the
        target is not yet met ("currently five times in our
        implementation").
    rank_decay:
        Fraction by which the user activeness rank decays on each
        retrospective pass ("currently 20%").
    activeness:
        Parameters of the activeness evaluation (period length etc.).
    zero_rank_as_initial:
        Whether a rank that collapsed to exactly 0 falls back to the
        initial rank 1.0 for lifetime adjustment (see
        :meth:`repro.core.activeness.UserActiveness.log_lifetime_multiplier`).
    """

    lifetime_days: float = 90.0
    purge_trigger_days: int = 7
    purge_target_utilization: float = 0.5
    retrospective_passes: int = 5
    rank_decay: float = 0.2
    activeness: ActivenessParams = field(default_factory=ActivenessParams)
    zero_rank_as_initial: bool = True

    def __post_init__(self) -> None:
        if self.lifetime_days <= 0:
            raise ValueError("lifetime_days must be positive")
        if self.purge_trigger_days < 1:
            raise ValueError("purge_trigger_days must be >= 1")
        if not (0.0 <= self.purge_target_utilization <= 1.0):
            raise ValueError("purge_target_utilization must lie in [0, 1]")
        if self.retrospective_passes < 0:
            raise ValueError("retrospective_passes must be >= 0")
        if not (0.0 <= self.rank_decay < 1.0):
            raise ValueError("rank_decay must lie in [0, 1)")

    def with_lifetime(self, lifetime_days: float) -> "RetentionConfig":
        """A copy with a different initial lifetime (sweep helper)."""
        return replace(self, lifetime_days=lifetime_days)


#: Table 1 of the paper: fixed-lifetime settings at four HPC facilities.
FACILITY_PRESETS: dict[str, RetentionConfig] = {
    "NCAR": RetentionConfig(lifetime_days=120.0),
    "OLCF": RetentionConfig(lifetime_days=90.0),
    "TACC": RetentionConfig(lifetime_days=30.0),
    "NERSC": RetentionConfig(lifetime_days=84.0),  # "12-week old"
}


def facility_preset(name: str) -> RetentionConfig:
    """Look up a Table 1 facility preset by name (case-insensitive)."""
    try:
        return FACILITY_PRESETS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(FACILITY_PRESETS))
        raise KeyError(f"unknown facility {name!r}; known: {known}") from None
