"""Per-file metadata records for the virtual file system.

The Spider II metadata snapshots used by the paper expose, per file: the
path, owner uid, timestamps, and the Lustre stripe count (the file size is
*not* recorded -- the paper synthesizes it from the stripe count, see
:mod:`repro.vfs.striping`).  ``FileMeta`` mirrors that record with the
synthesized size attached.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FileMeta", "DAY_SECONDS"]

#: Seconds per day; the emulation clock is integer epoch seconds.
DAY_SECONDS = 86_400


@dataclass(slots=True)
class FileMeta:
    """Metadata of one file in the virtual file system.

    Attributes
    ----------
    size:
        File size in bytes (synthesized from ``stripe_count`` when loaded
        from a metadata snapshot).
    atime / mtime / ctime:
        Access / modification / change timestamps, epoch seconds.
    uid:
        Owner user id.
    stripe_count:
        Lustre stripe count recorded in the snapshot.
    """

    size: int
    atime: int
    mtime: int
    ctime: int
    uid: int
    stripe_count: int = 1

    def age_seconds(self, now: int) -> int:
        """Seconds since last access (the FLT staleness measure)."""
        return now - self.atime

    def age_days(self, now: int) -> float:
        """Days since last access."""
        return (now - self.atime) / DAY_SECONDS

    def touch(self, now: int) -> None:
        """Record an access at time ``now`` (atime only, like ``open``)."""
        if now > self.atime:
            self.atime = now

    def copy(self) -> "FileMeta":
        """An independent copy (used when replicating file systems)."""
        return FileMeta(self.size, self.atime, self.mtime, self.ctime,
                        self.uid, self.stripe_count)
