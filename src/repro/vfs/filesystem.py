"""The virtual parallel file system used by the retention emulation.

The paper formulates a *virtual file system* from snapshot paths indexed in
a compact prefix tree (section 4.1.3); retention policies then operate on
that structure.  ``VirtualFileSystem`` provides:

* path-existence tests and metadata lookup (trie-backed, shared-prefix
  compressed);
* per-owner file indexes, so the ActiveDR retention procedure can "scan the
  user's directory" in O(files of that user);
* capacity accounting (total bytes, per-user bytes) maintained
  incrementally on every insert / purge;
* atime updates when the emulator replays file accesses.

The object is deliberately not thread-safe: the parallel scan substrate
shards files *across* file-system replicas rather than sharing one.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .file_meta import FileMeta
from .path_trie import PathTrie

__all__ = ["VirtualFileSystem"]


class VirtualFileSystem:
    """In-memory file system over a compact prefix tree.

    Parameters
    ----------
    capacity_bytes:
        Nominal capacity of the scratch space.  The paper pins the purge
        target to a fraction of "the total synthesized size of all files in
        the last weekly metadata snapshot of 2015"; pass that figure here
        (or leave 0 and call :meth:`freeze_capacity` after loading).
    """

    def __init__(self, capacity_bytes: int = 0) -> None:
        self._trie = PathTrie()
        self._by_uid: dict[int, dict[str, FileMeta]] = {}
        self._user_bytes: dict[int, int] = {}
        self._total_bytes = 0
        self.capacity_bytes = capacity_bytes

    # ------------------------------------------------------------------
    # capacity / accounting

    @property
    def total_bytes(self) -> int:
        """Bytes currently stored."""
        return self._total_bytes

    @property
    def file_count(self) -> int:
        return len(self._trie)

    def utilization(self) -> float:
        """Used fraction of capacity (0 when capacity is unset)."""
        if self.capacity_bytes <= 0:
            return 0.0
        return self._total_bytes / self.capacity_bytes

    def freeze_capacity(self) -> None:
        """Declare current usage to be the nominal capacity (paper setup)."""
        self.capacity_bytes = self._total_bytes

    def user_bytes(self, uid: int) -> int:
        """Bytes owned by ``uid`` -- O(1), maintained incrementally."""
        return self._user_bytes.get(uid, 0)

    def user_file_count(self, uid: int) -> int:
        return len(self._by_uid.get(uid, {}))

    def uids(self) -> list[int]:
        """Owners that currently hold at least one file."""
        return [uid for uid, files in self._by_uid.items() if files]

    # ------------------------------------------------------------------
    # mutation

    def add_file(self, path: str, meta: FileMeta) -> None:
        """Insert (or replace) ``path``.

        Replacement removes the old accounting entry first so the byte
        totals stay exact.
        """
        old = self._trie.lookup(path)
        if old is not None:
            self._remove_accounting(path, old)
        self._trie.insert(path, meta)
        self._by_uid.setdefault(meta.uid, {})[path] = meta
        self._user_bytes[meta.uid] = self._user_bytes.get(meta.uid, 0) + meta.size
        self._total_bytes += meta.size

    def remove_file(self, path: str) -> FileMeta | None:
        """Delete ``path``; returns its metadata or ``None`` if absent."""
        meta = self._trie.lookup(path)
        if meta is None:
            return None
        self._trie.delete(path)
        self._remove_accounting(path, meta)
        return meta

    def _remove_accounting(self, path: str, meta: FileMeta) -> None:
        self._total_bytes -= meta.size
        user_files = self._by_uid.get(meta.uid)
        if user_files is not None and user_files.pop(path, None) is not None:
            remaining = self._user_bytes.get(meta.uid, 0) - meta.size
            if remaining:
                self._user_bytes[meta.uid] = remaining
            else:
                self._user_bytes.pop(meta.uid, None)

    def touch(self, path: str, now: int) -> bool:
        """Update atime of ``path``; ``False`` when the path is missing.

        This is the emulator's file-access primitive: a ``False`` return is
        exactly a *file miss* in the paper's accounting.
        """
        meta = self._trie.lookup(path)
        if meta is None:
            return False
        meta.touch(now)
        return True

    # ------------------------------------------------------------------
    # queries

    def __contains__(self, path: str) -> bool:
        return path in self._trie

    def stat(self, path: str) -> FileMeta | None:
        return self._trie.lookup(path)

    def iter_files(self) -> Iterator[tuple[str, FileMeta]]:
        """All files in deterministic path order (FLT system-scan order)."""
        return self._trie.items()

    def iter_user_files(self, uid: int) -> Iterator[tuple[str, FileMeta]]:
        """Files of one user in deterministic path order."""
        files = self._by_uid.get(uid, {})
        for path in sorted(files):
            yield path, files[path]

    def iter_prefix(self, prefix: str) -> Iterator[tuple[str, FileMeta]]:
        return self._trie.iter_prefix(prefix)

    def count_prefix(self, prefix: str) -> int:
        return self._trie.count_prefix(prefix)

    # ------------------------------------------------------------------
    # bulk construction / replication

    def add_files(self, entries: Iterable[tuple[str, FileMeta]]) -> int:
        """Bulk insert; returns the number of entries added."""
        n = 0
        for path, meta in entries:
            self.add_file(path, meta)
            n += 1
        return n

    def replicate(self) -> "VirtualFileSystem":
        """Deep copy, used to run two policies on identical initial state."""
        clone = VirtualFileSystem(self.capacity_bytes)
        for path, meta in self.iter_files():
            clone.add_file(path, meta.copy())
        return clone
