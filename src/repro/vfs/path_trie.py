"""Compact prefix tree (radix tree) over file-system paths.

ActiveDR (SC'21, section 3.4 and 4.1.3) uses a *compact prefix tree* for two
purposes:

1. as the **virtual file system** of the trace-replay emulation -- testing
   whether an accessed path exists, and retrieving per-file metadata; and
2. as the **purge-exemption index** -- the administrator's reservation list
   is loaded into a compact prefix tree so that each scanned file can be
   checked against the reservation contract in O(depth).

This module implements that structure from scratch.  Keys are slash-separated
paths; internal edges are *compressed* (an edge may carry several path
components), so long chains such as ``/lustre/atlas1/csc108/scratch`` cost a
single node until they branch.

The tree supports exact-match payload storage (a "file"), prefix queries
(a "directory"), deletion with automatic re-compression, and subtree
iteration.  Each node maintains the number of payload-bearing entries in its
subtree so that ``count_prefix`` is O(depth).

Example
-------
>>> t = PathTrie()
>>> t.insert("/scratch/u1/run1/out.h5", 42)
True
>>> t.lookup("/scratch/u1/run1/out.h5")
42
>>> t.count_prefix("/scratch/u1")
1
>>> sorted(p for p, _ in t.iter_prefix("/scratch"))
['/scratch/u1/run1/out.h5']
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["PathTrie", "split_path", "join_path"]


def split_path(path: str) -> tuple[str, ...]:
    """Split ``path`` into its non-empty components.

    Accepts absolute or relative paths; repeated slashes are collapsed.
    The root path ``"/"`` maps to the empty tuple.
    """
    return tuple(part for part in path.split("/") if part)


def join_path(components: Iterable[str]) -> str:
    """Inverse of :func:`split_path` for absolute paths."""
    return "/" + "/".join(components)


class _Node:
    """One radix-tree node.

    ``label`` is the (possibly multi-component) edge label leading *into*
    this node.  ``children`` maps the first component of each child's label
    to the child node.  ``has_payload`` distinguishes "a file lives exactly
    here" from "this is only an interior directory node".
    """

    __slots__ = ("label", "children", "payload", "has_payload", "n_entries")

    def __init__(self, label: tuple[str, ...]) -> None:
        self.label = label
        self.children: dict[str, _Node] = {}
        self.payload: Any = None
        self.has_payload = False
        self.n_entries = 0  # payload-bearing nodes in this subtree (incl. self)


def _common_prefix_len(a: tuple[str, ...], b: tuple[str, ...]) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


class PathTrie:
    """A compressed path trie mapping exact paths to payloads.

    The payload is arbitrary; the virtual file system stores
    :class:`repro.vfs.file_meta.FileMeta` records, while the exemption list
    stores ``True`` markers.
    """

    def __init__(self) -> None:
        self._root = _Node(())

    # ------------------------------------------------------------------
    # basic properties

    def __len__(self) -> int:
        return self._root.n_entries

    def __bool__(self) -> bool:
        # An empty trie is falsy, mirroring dict semantics.
        return self._root.n_entries > 0

    def __contains__(self, path: str) -> bool:
        return self._find(split_path(path)) is not None

    # ------------------------------------------------------------------
    # mutation

    def insert(self, path: str, payload: Any = True) -> bool:
        """Insert ``path`` with ``payload``.

        Returns ``True`` if the path is new, ``False`` if an existing
        payload was overwritten.  Inserting the root path is rejected
        because a file cannot be the file-system root.
        """
        components = split_path(path)
        if not components:
            raise ValueError("cannot insert the root path as a file")
        new = self._insert(self._root, components, payload)
        return new

    def _insert(self, node: _Node, rest: tuple[str, ...], payload: Any) -> bool:
        if not rest:
            fresh = not node.has_payload
            node.payload = payload
            node.has_payload = True
            if fresh:
                node.n_entries += 1
            return fresh

        child = node.children.get(rest[0])
        if child is None:
            leaf = _Node(rest)
            leaf.payload = payload
            leaf.has_payload = True
            leaf.n_entries = 1
            node.children[rest[0]] = leaf
            node.n_entries += 1
            return True

        k = _common_prefix_len(rest, child.label)
        if k == len(child.label):
            # Descend past the whole edge label.
            new = self._insert(child, rest[k:], payload)
            if new:
                node.n_entries += 1
            return new

        # Split the edge: child keeps its suffix under a new interior node.
        interior = _Node(child.label[:k])
        child.label = child.label[k:]
        interior.children[child.label[0]] = child
        interior.n_entries = child.n_entries
        node.children[interior.label[0]] = interior

        new = self._insert(interior, rest[k:], payload)
        if new:
            node.n_entries += 1
        return new

    def delete(self, path: str) -> bool:
        """Remove ``path``; returns ``True`` if it was present."""
        components = split_path(path)
        if not components:
            return False
        return self._delete(self._root, components)

    def _delete(self, node: _Node, rest: tuple[str, ...]) -> bool:
        child = node.children.get(rest[0]) if rest else None
        if not rest:
            if not node.has_payload:
                return False
            node.has_payload = False
            node.payload = None
            node.n_entries -= 1
            return True
        if child is None:
            return False
        k = _common_prefix_len(rest, child.label)
        if k != len(child.label):
            return False
        removed = self._delete(child, rest[k:])
        if removed:
            node.n_entries -= 1
            if child.n_entries == 0:
                del node.children[rest[0]]
            elif not child.has_payload and len(child.children) == 1:
                # Re-compress: splice the single grandchild into child's edge.
                (grand,) = child.children.values()
                grand.label = child.label + grand.label
                node.children[rest[0]] = grand
        return removed

    def clear(self) -> None:
        """Drop every entry."""
        self._root = _Node(())

    # ------------------------------------------------------------------
    # queries

    def _find(self, components: tuple[str, ...]) -> _Node | None:
        node = self._root
        rest = components
        while rest:
            child = node.children.get(rest[0])
            if child is None:
                return None
            k = _common_prefix_len(rest, child.label)
            if k != len(child.label):
                return None
            node = child
            rest = rest[k:]
        return node if node.has_payload else None

    def lookup(self, path: str, default: Any = None) -> Any:
        """Return the payload stored at ``path``, or ``default``."""
        node = self._find(split_path(path))
        return node.payload if node is not None else default

    def _locate_prefix(self, components: tuple[str, ...]) -> tuple[_Node, tuple[str, ...]] | None:
        """Find the node whose subtree holds all entries under ``components``.

        Returns ``(node, residual)`` where ``residual`` is the portion of the
        node's edge label that extends *beyond* the requested prefix (the
        prefix may end mid-edge), or ``None`` when nothing matches.
        """
        node = self._root
        rest = components
        while rest:
            child = node.children.get(rest[0])
            if child is None:
                return None
            k = _common_prefix_len(rest, child.label)
            if k == len(rest):
                return child, child.label[k:]
            if k != len(child.label):
                return None
            node = child
            rest = rest[k:]
        return node, ()

    def count_prefix(self, prefix: str) -> int:
        """Number of stored paths at or below ``prefix`` -- O(depth)."""
        located = self._locate_prefix(split_path(prefix))
        return located[0].n_entries if located is not None else 0

    def has_prefix(self, prefix: str) -> bool:
        """Whether any stored path lives at or below ``prefix``."""
        return self.count_prefix(prefix) > 0

    def covering_prefix(self, path: str) -> str | None:
        """Return the shortest stored path that is a prefix of ``path``.

        Used by exemption lists configured with directory-level
        reservations: a file is exempt when any reserved path covers it.
        """
        node = self._root
        rest = split_path(path)
        walked: list[str] = []
        if node.has_payload:
            return join_path(walked)
        while rest:
            child = node.children.get(rest[0])
            if child is None:
                return None
            k = _common_prefix_len(rest, child.label)
            if k != len(child.label):
                return None
            walked.extend(child.label)
            rest = rest[k:]
            node = child
            if node.has_payload:
                return join_path(walked)
        return None

    # ------------------------------------------------------------------
    # iteration

    def iter_prefix(self, prefix: str = "/") -> Iterator[tuple[str, Any]]:
        """Yield ``(path, payload)`` for every entry under ``prefix``.

        Paths are yielded in lexicographic component order, which gives the
        deterministic "system scan order" used by the FLT baseline.
        """
        located = self._locate_prefix(split_path(prefix))
        if located is None:
            return
        node, residual = located
        base = list(split_path(prefix)) + list(residual)
        yield from self._iter_node(node, base)

    def _iter_node(self, node: _Node, components: list[str]) -> Iterator[tuple[str, Any]]:
        if node.has_payload:
            yield join_path(components), node.payload
        for first in sorted(node.children):
            child = node.children[first]
            components.extend(child.label)
            yield from self._iter_node(child, components)
            del components[len(components) - len(child.label):]

    def __iter__(self) -> Iterator[str]:
        for path, _ in self.iter_prefix("/"):
            yield path

    def items(self) -> Iterator[tuple[str, Any]]:
        """All ``(path, payload)`` pairs in scan order."""
        return self.iter_prefix("/")

    # ------------------------------------------------------------------
    # diagnostics

    def node_count(self) -> int:
        """Total number of radix nodes (compression diagnostic)."""
        def count(node: _Node) -> int:
            return 1 + sum(count(c) for c in node.children.values())
        return count(self._root)
