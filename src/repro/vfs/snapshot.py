"""Weekly metadata snapshots: the Spider-style snapshot pipeline.

OLCF captures weekly metadata snapshots of the Spider file system as a
series of gzipped text files; the paper replays retention against those
snapshots, with one parallel rank scanning each shard (Fig. 12c/d).  This
module reproduces the format and the shard-level access pattern:

* :class:`SnapshotWriter` splits a stream of file records across ``n``
  gzipped shards (``snapshot-0000.gz``, ...), one record per line;
* :func:`read_shard` / :func:`iter_snapshot` parse records back;
* :func:`load_filesystem` materializes a :class:`VirtualFileSystem` from a
  snapshot directory, synthesizing file sizes from stripe counts exactly as
  the paper does (sizes are *not* stored in the snapshot).

Record line format (8 ``|``-separated fields)::

    path|stripe_count|atime|mtime|ctime|uid|flags|size

The trailing ``size`` is an extension over the OLCF format: real Spider
snapshots do not record sizes (the paper synthesizes them from stripe
counts), so ``size`` may be ``-1`` ("unknown"), in which case loading
synthesizes it.  Seven-field legacy lines parse as size-unknown.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .file_meta import FileMeta
from .filesystem import VirtualFileSystem
from .striping import synthesize_sizes

__all__ = [
    "SnapshotRecord",
    "SnapshotWriter",
    "write_snapshot",
    "shard_paths",
    "read_shard",
    "iter_snapshot",
    "load_filesystem",
]

_SHARD_TEMPLATE = "snapshot-{:04d}.gz"


@dataclass(slots=True)
class SnapshotRecord:
    """One metadata-snapshot line.

    ``size`` is -1 when unknown (the OLCF case); loading then synthesizes
    a size from the stripe count.
    """

    path: str
    stripe_count: int
    atime: int
    mtime: int
    ctime: int
    uid: int
    flags: int = 0
    size: int = -1

    def to_line(self) -> str:
        # The path is the *first* field here (unlike the app log, where
        # it is last), so a '|' or newline inside it would shear the
        # record apart on parse -- reject rather than corrupt.
        if "|" in self.path or "\n" in self.path:
            raise ValueError(f"snapshot path {self.path!r} cannot contain "
                             "'|' or newlines")
        return (f"{self.path}|{self.stripe_count}|{self.atime}|{self.mtime}"
                f"|{self.ctime}|{self.uid}|{self.flags}|{self.size}\n")

    @classmethod
    def from_line(cls, line: str) -> "SnapshotRecord":
        parts = line.rstrip("\n").split("|")
        if len(parts) == 7:       # legacy sizeless line
            parts.append("-1")
        if len(parts) != 8:
            raise ValueError(f"malformed snapshot line: {line!r}")
        path, stripes, atime, mtime, ctime, uid, flags, size = parts
        return cls(path, int(stripes), int(atime), int(mtime), int(ctime),
                   int(uid), int(flags), int(size))


class SnapshotWriter:
    """Round-robin shard writer for snapshot records.

    Use as a context manager::

        with SnapshotWriter(outdir, n_shards=8) as w:
            for rec in records:
                w.write(rec)
    """

    def __init__(self, directory: str, n_shards: int = 4) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.n_shards = n_shards
        # Shards stream into .tmp siblings and are renamed into place
        # only on a successful close, so a crash mid-write leaves any
        # previous snapshot intact and never a truncated shard.
        self._shard_paths = [os.path.join(directory, _SHARD_TEMPLATE.format(i))
                             for i in range(n_shards)]
        self._files = [gzip.open(f"{p}.tmp", "wt") for p in self._shard_paths]
        self._next = 0
        self._closed = False
        self.records_written = 0

    def write(self, record: SnapshotRecord) -> None:
        self._files[self._next].write(record.to_line())
        self._next = (self._next + 1) % self.n_shards
        self.records_written += 1

    def close(self, commit: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        for f in self._files:
            f.close()
        for p in self._shard_paths:
            if commit:
                os.replace(f"{p}.tmp", p)
            else:
                try:
                    os.remove(f"{p}.tmp")
                except OSError:
                    pass

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(commit=exc_type is None)


def write_snapshot(directory: str, records: Iterable[SnapshotRecord],
                   n_shards: int = 4) -> int:
    """Write all ``records`` into a sharded snapshot; returns record count."""
    with SnapshotWriter(directory, n_shards) as writer:
        for rec in records:
            writer.write(rec)
        return writer.records_written


def shard_paths(directory: str) -> list[str]:
    """Sorted list of shard files in a snapshot directory."""
    names = [n for n in os.listdir(directory)
             if n.startswith("snapshot-") and n.endswith(".gz")]
    return [os.path.join(directory, n) for n in sorted(names)]


def read_shard(path: str) -> Iterator[SnapshotRecord]:
    """Parse one gzipped shard."""
    with gzip.open(path, "rt") as f:
        for line in f:
            if line.strip():
                yield SnapshotRecord.from_line(line)


def iter_snapshot(directory: str) -> Iterator[SnapshotRecord]:
    """All records of a snapshot, shard by shard."""
    for shard in shard_paths(directory):
        yield from read_shard(shard)


def load_filesystem(directory: str, *, size_seed: int = 2021,
                    capacity_bytes: int | None = None,
                    uid_filter=None) -> VirtualFileSystem:
    """Build a :class:`VirtualFileSystem` from a snapshot directory.

    Sizes are synthesized from stripe counts with a generator seeded by
    ``size_seed`` so repeated loads agree byte-for-byte (the paper relies
    on the same determinism to compare FLT and ActiveDR on equal ground).
    When ``capacity_bytes`` is ``None`` the loaded usage becomes the
    nominal capacity, matching the paper's experimental setup.

    ``uid_filter`` (``uid -> bool``) keeps only the files of the owners
    a shard worker is responsible for.  Size synthesis runs over the
    *unfiltered* record sequence first, so a file gets the same
    synthesized size whether it is loaded by one process or by N shard
    workers each loading its own slice -- the fleet's per-file bytes
    stay the union of a single-process load.
    """
    records = list(iter_snapshot(directory))
    rng = np.random.default_rng(size_seed)
    synthesized = synthesize_sizes(
        np.asarray([r.stripe_count for r in records], dtype=np.int64), rng)

    fs = VirtualFileSystem()
    for rec, synth_size in zip(records, synthesized):
        if uid_filter is not None and not uid_filter(rec.uid):
            continue
        size = rec.size if rec.size >= 0 else int(synth_size)
        fs.add_file(rec.path, FileMeta(size, rec.atime, rec.mtime,
                                       rec.ctime, rec.uid, rec.stripe_count))
    if capacity_bytes is None:
        fs.freeze_capacity()
    else:
        fs.capacity_bytes = capacity_bytes
    return fs
