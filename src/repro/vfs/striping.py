"""Synthesizing file sizes from Lustre stripe counts.

The Spider II metadata snapshots record the *stripe count* of each file but
not its size.  Following the paper (section 4.1.1), we synthesize a size for
each file "according to the best striping practice of the Spider file
system": the OLCF best-practice guide recommends striping so that each
stripe (OST object) holds on the order of one gigabyte, with small files on
a single stripe and very large files fanned out across many OSTs.

The inverse mapping implemented here:

* ``stripe_count == 1`` -- the file is at most one stripe-capacity unit;
  sizes are drawn log-uniformly between 4 KiB and the per-stripe capacity,
  reproducing the heavy small-file population of HPC scratch spaces.
* ``stripe_count == s > 1`` -- the file occupies ``s`` stripes under best
  practice, so its size lies in ``((s - 1) * C, s * C]`` where ``C`` is the
  per-stripe capacity; we draw uniformly within that band.

The forward mapping (:func:`best_practice_stripe_count`) is used by the
synthetic snapshot generator so that generated (size, stripe) pairs are
self-consistent.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "STRIPE_CAPACITY_BYTES",
    "MIN_FILE_BYTES",
    "MAX_STRIPE_COUNT",
    "best_practice_stripe_count",
    "synthesize_size",
    "synthesize_sizes",
]

#: Best-practice per-stripe capacity (1 GiB per OST object).
STRIPE_CAPACITY_BYTES = 1 << 30

#: Smallest synthesized file (a 4 KiB block).
MIN_FILE_BYTES = 4 << 10

#: Spider II had 1 008 OSTs; best practice caps stripe counts well below.
MAX_STRIPE_COUNT = 512


def best_practice_stripe_count(size_bytes: int) -> int:
    """Stripe count the OLCF best-practice guide assigns to ``size_bytes``."""
    if size_bytes <= STRIPE_CAPACITY_BYTES:
        return 1
    count = -(-size_bytes // STRIPE_CAPACITY_BYTES)  # ceil division
    return int(min(count, MAX_STRIPE_COUNT))


def synthesize_size(stripe_count: int, rng: np.random.Generator) -> int:
    """Draw one synthesized file size consistent with ``stripe_count``."""
    return int(synthesize_sizes(np.asarray([stripe_count]), rng)[0])


def synthesize_sizes(stripe_counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Vectorized size synthesis for an array of stripe counts.

    Parameters
    ----------
    stripe_counts:
        Integer array of per-file stripe counts (values < 1 are treated
        as 1, as Lustre reports unstriped metadata oddities).
    rng:
        Seeded NumPy generator; the synthesis is deterministic given the
        generator state, which keeps snapshot loading reproducible.

    Returns
    -------
    ``int64`` array of sizes in bytes, elementwise consistent with
    :func:`best_practice_stripe_count`.
    """
    counts = np.maximum(np.asarray(stripe_counts, dtype=np.int64), 1)
    n = counts.shape[0]
    sizes = np.empty(n, dtype=np.int64)

    single = counts == 1
    n_single = int(single.sum())
    if n_single:
        # Log-uniform between 4 KiB and 1 GiB: most scratch files are small.
        lo, hi = np.log(MIN_FILE_BYTES), np.log(STRIPE_CAPACITY_BYTES)
        draws = np.exp(rng.uniform(lo, hi, size=n_single))
        sizes[single] = draws.astype(np.int64)

    multi = ~single
    n_multi = int(multi.sum())
    if n_multi:
        c = counts[multi]
        low = (c - 1) * STRIPE_CAPACITY_BYTES
        span = rng.uniform(0.0, 1.0, size=n_multi)
        sizes[multi] = low + 1 + (span * (STRIPE_CAPACITY_BYTES - 1)).astype(np.int64)

    return sizes
