"""Virtual parallel file system substrate.

Reproduces the storage-side machinery the paper's emulation rests on: a
compact prefix tree over paths, per-file metadata with synthesized sizes,
capacity accounting, and the Spider-style sharded metadata snapshots.
"""

from .file_meta import DAY_SECONDS, FileMeta
from .filesystem import VirtualFileSystem
from .path_trie import PathTrie, join_path, split_path
from .snapshot import (
    SnapshotRecord,
    SnapshotWriter,
    iter_snapshot,
    load_filesystem,
    read_shard,
    shard_paths,
    write_snapshot,
)
from .walker import (
    DirEntry,
    find_stale,
    list_dir,
    subtree_usage,
    usage_report,
)
from .striping import (
    MAX_STRIPE_COUNT,
    MIN_FILE_BYTES,
    STRIPE_CAPACITY_BYTES,
    best_practice_stripe_count,
    synthesize_size,
    synthesize_sizes,
)

__all__ = [
    "DAY_SECONDS",
    "FileMeta",
    "VirtualFileSystem",
    "PathTrie",
    "join_path",
    "split_path",
    "SnapshotRecord",
    "SnapshotWriter",
    "iter_snapshot",
    "load_filesystem",
    "read_shard",
    "shard_paths",
    "write_snapshot",
    "MAX_STRIPE_COUNT",
    "MIN_FILE_BYTES",
    "STRIPE_CAPACITY_BYTES",
    "best_practice_stripe_count",
    "synthesize_size",
    "synthesize_sizes",
    "DirEntry",
    "find_stale",
    "list_dir",
    "subtree_usage",
    "usage_report",
]
