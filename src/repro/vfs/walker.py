"""Directory-walk API over the virtual file system.

Production purge daemons are directory walkers: they enumerate user
roots, descend subtrees, and apply per-file predicates ("ActiveDR scans
each file in the user's directory", section 3.4).  The trie already holds
the namespace; this module exposes the hierarchical view:

* :func:`list_dir` -- immediate children of a directory, split into
  subdirectories and files;
* :func:`subtree_usage` -- ``du``-style (file count, bytes) for a prefix;
* :func:`find_stale` -- the classic purge-candidate walk;
* :func:`usage_report` -- per-child usage rows for capacity dashboards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .file_meta import DAY_SECONDS, FileMeta
from .filesystem import VirtualFileSystem
from .path_trie import split_path

__all__ = ["DirEntry", "list_dir", "subtree_usage", "find_stale",
           "usage_report"]


@dataclass(frozen=True, slots=True)
class DirEntry:
    """One child of a directory."""

    name: str
    path: str
    is_dir: bool
    #: For files: the size; for directories: total bytes below.
    size: int
    #: Files at or below this entry (1 for a plain file).
    file_count: int


def list_dir(fs: VirtualFileSystem, directory: str) -> list[DirEntry]:
    """Immediate children of ``directory``, sorted by name.

    A name can be both a file and a directory (a payload node with
    children); it then appears once, as a directory whose stats include
    the file stored at the directory path itself.
    """
    prefix_parts = split_path(directory)
    depth = len(prefix_parts)
    base = "/" + "/".join(prefix_parts)
    if base == "/":
        base = ""

    children: dict[str, dict] = {}
    for path, meta in fs.iter_prefix(directory or "/"):
        parts = split_path(path)
        if len(parts) <= depth:
            continue  # the directory path itself holds a file; skip here
        name = parts[depth]
        info = children.setdefault(name, {"bytes": 0, "files": 0,
                                          "is_dir": False})
        info["bytes"] += meta.size
        info["files"] += 1
        if len(parts) > depth + 1:
            info["is_dir"] = True

    out = []
    for name in sorted(children):
        info = children[name]
        out.append(DirEntry(name=name, path=f"{base}/{name}",
                            is_dir=info["is_dir"], size=info["bytes"],
                            file_count=info["files"]))
    return out


def subtree_usage(fs: VirtualFileSystem, prefix: str) -> tuple[int, int]:
    """``du``: (file count, total bytes) at or below ``prefix``."""
    files = 0
    total = 0
    for _path, meta in fs.iter_prefix(prefix):
        files += 1
        total += meta.size
    return files, total


def find_stale(fs: VirtualFileSystem, prefix: str, now: int,
               lifetime_days: float) -> Iterator[tuple[str, FileMeta]]:
    """Purge candidates under ``prefix``: files idle beyond the lifetime.

    This is the inner loop of every fixed-lifetime purge daemon; yielded
    in deterministic path order.
    """
    cutoff = lifetime_days * DAY_SECONDS
    for path, meta in fs.iter_prefix(prefix):
        if now - meta.atime > cutoff:
            yield path, meta


def usage_report(fs: VirtualFileSystem, directory: str,
                 ) -> list[tuple[str, int, int, float]]:
    """Per-child rows ``(name, files, bytes, share-of-directory)``.

    The capacity-dashboard view administrators sort by to find the heavy
    subtrees before a purge campaign.
    """
    entries = list_dir(fs, directory)
    total = sum(e.size for e in entries) or 1
    rows = [(e.name, e.file_count, e.size, e.size / total) for e in entries]
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows
