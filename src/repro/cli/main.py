"""The ``activedr`` command-line interface.

Subcommands::

    activedr generate  --out DIR [--users N] [--seed S] [--shards K]
                       [--chunk-users N]
    activedr validate  --workspace DIR
    activedr evaluate  --workspace DIR [--at-day D] [--period-days P] [--top K]
    activedr retain    --workspace DIR [--policy activedr|flt]
                       [--lifetime D] [--target U] [--advance-days N]
                       [--exempt FILE] [--alert-log FILE]
    activedr replay    --workspace DIR
                       [--policy both|spectrum|flt|activedr|value|cache]
                       [--lifetime D] [--target U] [--engine reference|fast]
    activedr sweep     --workspace DIR [--lifetimes D,D,...] [--target U]
                       [--ranks N] [--engine fast|reference] [--spectrum]
    activedr calibrate --workspace DIR [--lifetime D]
    activedr serve     --workspace DIR
                       [--policy flt|activedr|value|cache]
                       [--lifetime D] [--target U]
                       [--checkpoint-dir DIR] [--checkpoint-every DAYS]
                       [--checkpoint-retain K] [--resume]
                       [--stop-after-events N] [--dead-letter FILE]
                       [--fault-plan FILE]
                       [--listen ADDR] [--admin ADDR]
                       [--tls-cert PEM] [--tls-key PEM]
                       [--tenant SPEC ...] [--expect-producers N]
                       [--shards N] [--fleet-dir DIR]
    activedr publish   --workspace DIR --connect ADDR
                       [--sources jobs,publications,accesses]
                       [--producer NAME] [--retry-for S]
                       [--tls-ca PEM]
    activedr admin     --connect ADDR
                       {status|health|tenants|metrics|activity|export|
                        query|tenants-add|tenants-remove|shards|
                        shards-rebalance} [--uid N]
                       [--history N] [--prom]
                       [--spec SPEC] [--name NAME] [--clone-from NAME]
                       [--donor NAME]
    activedr dashboard [--connect ADDR | --history-file FILE]
                       [--out FILE.html] [--samples N]
    activedr supervise --checkpoint-dir DIR [--max-restarts N]
                       [--backoff-base S] [--healthy-seconds S]
                       -- serve --workspace DIR ...

``generate`` writes a synthetic Titan workspace to disk; the other
commands operate on any directory in that format (real traces can be
converted by writing the four trace files plus a snapshot -- see
``repro.cli.workspace``).

``replay`` covers the full retention spectrum: the two related-work
baselines ride along as ``--policy value`` (lowest-value-first) and
``--policy cache`` (scratch-as-a-cache), and ``--policy spectrum`` runs
all four policies over identical replicas.  Multi-policy selections
(``both``/``spectrum``) go through :class:`ComparisonRunner`, so the
policies share one compiled trace and one activeness evaluation per
trigger instead of redoing that work per policy.  ``sweep --spectrum``
adds the two baselines' miss columns to the lifetime table.

``serve`` runs the *online* retention service: the workspace's traces
are merged into one time-ordered event stream and consumed record by
record, with incremental activeness state and crash-safe checkpoints
(``--checkpoint-dir``).  Ingestion goes through the reliability layer
(``repro.stream.reliability``): failing sources are retried with
backoff, malformed or disordered events are quarantined to a
dead-letter file, and checkpoints form a self-verifying chain of the
last ``--checkpoint-retain`` links.  Kill it mid-run, then ``serve
--resume`` rolls back to the newest checkpoint that passes digest
verification (exit code 3 when none does) and finishes with results
bit-identical to ``replay --engine fast``.  ``--fault-plan`` injects
scripted ingest/checkpoint faults for chaos testing.

With ``--listen`` (or any ``--tenant``) ``serve`` becomes the
*networked multi-tenant server*: events arrive from concurrent
``publish`` producers over a TCP or Unix socket instead of local files,
any number of ``--tenant name=...,policy=...`` configurations share one
event feed and one activeness state (evaluated once per trigger, not
once per tenant), and ``--admin`` opens a query plane that ``admin``
interrogates (``status``/``health``/``tenants``/``metrics``/``query``)
while ingestion is running.  The engine appends an observability sample
to a rotating metrics-history ring at every day boundary
(``--metrics-history``, defaulting into ``--checkpoint-dir``); ``admin
metrics --history N`` returns the newest samples, ``admin export
--prom`` (or a plain HTTP ``GET /metrics`` against the admin socket)
emits the Prometheus text exposition, and ``dashboard`` renders a
terminal or static-HTML view of activeness distributions and per-tenant
purge pressure from the live socket or an offline history file.
``supervise`` wraps any serve command in a
restart loop: crashes resume from the newest verifying checkpoint under
seeded exponential backoff, with a bounded give-up.

``serve --shards N`` scales the networked server horizontally: a
consistent-hash shard router listens on ``--listen`` and forwards each
event to the worker process owning its user (publications fan out to
every co-author's shard), ``--admin`` becomes a scatter/gather plane
that merges ``status``/``health``/``metrics``/``activity`` across the
fleet while keeping per-shard trigger-latency and miss tails visible,
and ``admin shards-rebalance`` splits the busiest (or ``--donor``)
shard at the next day boundary by cloning its checkpoint into a new
worker and flipping the ring atomically.  The merged per-tenant
results are bit-identical to a single-process ``serve`` over the same
feed.  ``--tls-cert``/``--tls-key`` wrap the ingest socket (single or
sharded) in TLS; producers pin the CA with ``publish --tls-ca``.
``generate --chunk-users N`` streams workspace generation in N-user
chunks so 100k-1M user populations fit in laptop memory.

Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..analysis import (
    format_bytes,
    format_table,
    percent,
    render_emulation_summary,
    render_retention_report,
)
from ..core import (
    ActiveDRPolicy,
    ActivenessEvaluator,
    ActivenessParams,
    ColumnarActivityStore,
    ExemptionList,
    FileNotifier,
    FixedLifetimePolicy,
    JobResidencyIndex,
    RetentionConfig,
    ScratchAsCachePolicy,
    UserClass,
    ValueBasedPolicy,
    classify,
    classify_all,
    group_counts,
)
from ..emulation import (ACTIVEDR, FLT, SCRATCHCACHE, VALUEBASED,
                         ComparisonRunner, Emulator, FastEmulator,
                         advance_filesystem, compile_dataset,
                         run_lifetime_sweep)
from ..synth import (TitanConfig, generate_dataset,
                     generate_workspace_streamed)
from ..traces import validate_dataset
from ..vfs import DAY_SECONDS
from .workspace import Workspace, load_workspace, save_workspace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="activedr",
        description="Activeness-based data retention for HPC scratch "
                    "storage (SC'21 reproduction).")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate",
                         help="generate a synthetic Titan workspace")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--users", type=int, default=400)
    gen.add_argument("--seed", type=int, default=2021)
    gen.add_argument("--shards", type=int, default=4,
                     help="snapshot shard count")
    gen.add_argument("--chunk-users", type=int, default=0, metavar="N",
                     help="generate in chunks of N users, streaming each "
                          "trace to disk (0 = auto: in-memory below 50k "
                          "users, 25k-user chunks at or above; required "
                          "head-room for 100k-1M user workspaces)")

    val = sub.add_parser("validate", help="validate a workspace's traces")
    val.add_argument("--workspace", required=True)

    ev = sub.add_parser("evaluate",
                        help="evaluate user activeness at an instant")
    ev.add_argument("--workspace", required=True)
    ev.add_argument("--at-day", type=int, default=0,
                    help="days into the replay year (default: its start)")
    ev.add_argument("--period-days", type=float, default=7.0)
    ev.add_argument("--top", type=int, default=10,
                    help="how many most-active users to list")

    ret = sub.add_parser("retain", help="run one retention pass")
    ret.add_argument("--workspace", required=True)
    ret.add_argument("--policy", choices=("activedr", "flt"),
                     default="activedr")
    ret.add_argument("--lifetime", type=float, default=90.0,
                     help="initial file lifetime in days")
    ret.add_argument("--target", type=float, default=0.5,
                     help="purge-target utilization in [0,1]")
    ret.add_argument("--advance-days", type=int, default=0,
                     help="apply the access trace (no purging) for this "
                          "many days before the retention pass")
    ret.add_argument("--exempt", default=None,
                     help="reservation-list file (one path per line; "
                          "trailing '/' reserves a directory)")
    ret.add_argument("--alert-log", default=None,
                     help="append unmet-target alerts to this file")

    rep = sub.add_parser("replay",
                         help="replay the full year under one or both "
                              "policies")
    rep.add_argument("--workspace", required=True)
    rep.add_argument("--policy",
                     choices=("both", "spectrum", "flt", "activedr",
                              "value", "cache"),
                     default="both",
                     help="'both' pairs FLT with ActiveDR; 'spectrum' adds "
                          "the value-based and scratch-as-a-cache baselines")
    rep.add_argument("--lifetime", type=float, default=90.0)
    rep.add_argument("--target", type=float, default=0.5)
    rep.add_argument("--engine", choices=("reference", "fast"),
                     default="reference",
                     help="replay engine: per-record reference emulator or "
                          "the columnar fast path (identical results)")

    swp = sub.add_parser("sweep",
                         help="paired replay over several file lifetimes, "
                              "optionally across worker processes")
    swp.add_argument("--workspace", required=True)
    swp.add_argument("--lifetimes", default="7,30,60,90",
                     help="comma-separated lifetimes in days")
    swp.add_argument("--target", type=float, default=0.5)
    swp.add_argument("--ranks", type=int, default=1,
                     help="worker processes for the sweep")
    swp.add_argument("--engine", choices=("reference", "fast"),
                     default="fast")
    swp.add_argument("--spectrum", action="store_true",
                     help="sweep all four policies (adds the value-based "
                          "and scratch-as-a-cache miss columns)")

    cal = sub.add_parser("calibrate",
                         help="report the workload statistics retention "
                              "dynamics depend on")
    cal.add_argument("--workspace", required=True)
    cal.add_argument("--lifetime", type=float, default=90.0)

    srv = sub.add_parser("serve",
                         help="run the online retention service over the "
                              "workspace's merged event stream")
    srv.add_argument("--workspace", required=True)
    srv.add_argument("--policy",
                     choices=("flt", "activedr", "value", "cache"),
                     default="activedr")
    srv.add_argument("--lifetime", type=float, default=90.0)
    srv.add_argument("--target", type=float, default=0.5)
    srv.add_argument("--checkpoint-dir", default=None,
                     help="directory for the rolling atomic checkpoint")
    srv.add_argument("--checkpoint-every", type=int, default=7,
                     help="days between checkpoints (trigger days only)")
    srv.add_argument("--checkpoint-retain", type=int, default=3,
                     help="verified checkpoints kept in the chain")
    srv.add_argument("--resume", action="store_true",
                     help="resume from the newest checkpoint in "
                          "--checkpoint-dir that passes digest "
                          "verification, rolling back past corrupt ones")
    srv.add_argument("--stop-after-events", type=int, default=None,
                     help="stop (without finalizing) after N merged "
                          "events -- simulates a crash for resume testing")
    srv.add_argument("--dead-letter", default=None,
                     help="JSONL file for quarantined events (default: "
                          "dead-letter.jsonl in --checkpoint-dir, if set)")
    srv.add_argument("--fault-plan", default=None,
                     help="JSON fault plan injected into the ingest and "
                          "checkpoint paths (chaos/dev testing)")
    srv.add_argument("--listen", default=None, metavar="ADDR",
                     help="ingest events from producers on this socket "
                          "(unix:/path or host:port) instead of the "
                          "workspace's trace files")
    srv.add_argument("--admin", default=None, metavar="ADDR",
                     help="answer admin/query requests on this socket")
    srv.add_argument("--tenant", action="append", default=None,
                     metavar="SPEC",
                     help="add a tenant: name=ID[,policy=K][,lifetime=D]"
                          "[,target=U][,trigger=D][,period=D]; repeatable. "
                          "Any --tenant (or --listen) switches serve to "
                          "the multi-tenant server")
    srv.add_argument("--expect-producers", default="1",
                     help="producers that must publish each source before "
                          "it is complete (--listen mode): a count "
                          "applied to every source, or per-source "
                          "'jobs=1,publications=1,accesses=2' for relay "
                          "topologies")
    srv.add_argument("--auth-token", default=None, metavar="SECRET",
                     help="require this shared secret in every producer "
                          "hello (mismatches are refused 'unauthorized')")
    srv.add_argument("--max-connections", type=int, default=None,
                     metavar="N",
                     help="ingest connection quota; excess producers get "
                          "a retryable 'busy' refusal")
    srv.add_argument("--write-deadline", type=float, default=30.0,
                     metavar="SECONDS",
                     help="evict a producer whose ack write blocks "
                          "longer than this (0 disables)")
    srv.add_argument("--metrics-history", default=None, metavar="FILE",
                     help="rotating JSONL ring of per-boundary "
                          "observability samples (default: "
                          "metrics-history.jsonl in --checkpoint-dir, "
                          "if set; multi-tenant serve only)")
    srv.add_argument("--tls-cert", default=None, metavar="PEM",
                     help="serve the ingest socket over TLS with this "
                          "certificate (PEM; may include the key)")
    srv.add_argument("--tls-key", default=None, metavar="PEM",
                     help="private key for --tls-cert (when separate)")
    srv.add_argument("--shards", type=int, default=None, metavar="N",
                     help="run a horizontally sharded fleet: N worker "
                          "processes each owning a consistent-hash slice "
                          "of the users, behind a shard router on "
                          "--listen and a scatter/gather admin plane on "
                          "--admin")
    srv.add_argument("--fleet-dir", default=None, metavar="DIR",
                     help="fleet working directory: worker sockets, "
                          "checkpoint chains, logs, results (default: "
                          "--checkpoint-dir, else WORKSPACE/fleet)")
    srv.add_argument("--shard-name", default=None, metavar="NAME",
                     help=argparse.SUPPRESS)  # internal: fleet worker id
    srv.add_argument("--shard-ring", default=None, metavar="FILE",
                     help=argparse.SUPPRESS)  # internal: ring JSON path
    srv.add_argument("--result-json", default=None, metavar="FILE",
                     help="write the per-tenant emulation results as "
                          "JSON (the sharded fleet merges these)")

    pub = sub.add_parser("publish",
                         help="publish a workspace's traces to a serve "
                              "--listen socket")
    pub.add_argument("--workspace", required=True)
    pub.add_argument("--connect", required=True, metavar="ADDR",
                     help="the server's ingest address "
                          "(unix:/path or host:port)")
    pub.add_argument("--sources", default="jobs,publications,accesses",
                     help="comma-separated trace families to publish")
    pub.add_argument("--producer", default="publish",
                     help="producer name reported in the handshake")
    pub.add_argument("--retry-for", type=float, default=0.0,
                     help="keep retrying the whole publish for this many "
                          "seconds when the server is down or restarting")
    pub.add_argument("--batch", type=int, default=None, metavar="N",
                     help="events per binary batch frame (0 forces the "
                          "v1 JSON-per-event path; default 2048)")
    pub.add_argument("--compress", action="store_true",
                     help="zlib-compress batch frames when the server "
                          "grants the capability")
    pub.add_argument("--auth-token", default=None, metavar="SECRET",
                     help="shared secret offered in the hello (must "
                          "match the server's --auth-token)")
    pub.add_argument("--retry-seed", type=int, default=None,
                     help="seed the jittered reconnect backoff (for "
                          "deterministic chaos runs)")
    pub.add_argument("--tls", action="store_true",
                     help="connect over TLS (without --tls-ca the "
                          "server certificate is not verified)")
    pub.add_argument("--tls-ca", default=None, metavar="PEM",
                     help="trust anchor for the server certificate "
                          "(implies --tls; typically the server's own "
                          "self-signed --tls-cert file)")

    chp = sub.add_parser("chaos-proxy",
                         help="run a FaultPlan-scripted chaos proxy "
                              "between publishers and a serve --listen "
                              "socket")
    chp.add_argument("--listen", required=True, metavar="ADDR",
                     help="address publishers connect to")
    chp.add_argument("--upstream", required=True, metavar="ADDR",
                     help="the real server's ingest address")
    chp.add_argument("--fault-plan", required=True,
                     help="JSON fault plan with net:<source> targets")
    chp.add_argument("--name", default="net",
                     help="fault target prefix (default 'net')")

    adm = sub.add_parser("admin",
                         help="query a running server's admin plane")
    adm.add_argument("--connect", required=True, metavar="ADDR")
    adm.add_argument("request",
                     choices=("status", "health", "tenants", "metrics",
                              "activity", "export", "query",
                              "tenants-add", "tenants-remove",
                              "shards", "shards-rebalance"))
    adm.add_argument("--uid", type=int, default=None,
                     help="user id for 'query'")
    adm.add_argument("--history", type=int, default=None, metavar="N",
                     help="with 'metrics': include the newest N "
                          "metrics-history samples")
    adm.add_argument("--prom", action="store_true",
                     help="with 'export': print the raw Prometheus text "
                          "exposition (this is also the default format)")
    adm.add_argument("--spec", default=None,
                     help="tenant spec for 'tenants-add'")
    adm.add_argument("--clone-from", default=None,
                     help="donor tenant whose replay state the new tenant "
                          "clones (default: the first tenant)")
    adm.add_argument("--name", default=None,
                     help="tenant name for 'tenants-remove', or the new "
                          "shard's name for 'shards-rebalance'")
    adm.add_argument("--donor", default=None,
                     help="with 'shards-rebalance': the shard to split "
                          "(default: the one routed the most rows)")

    dash = sub.add_parser("dashboard",
                          help="render a dashboard of a running (or "
                               "crashed) retention server")
    dash.add_argument("--connect", default=None, metavar="ADDR",
                      help="a running server's admin socket")
    dash.add_argument("--history-file", default=None, metavar="FILE",
                      help="render offline from this metrics-history "
                           "JSONL file instead of a live socket")
    dash.add_argument("--out", default=None, metavar="FILE",
                      help="write a static self-contained HTML page here "
                           "instead of printing the terminal view")
    dash.add_argument("--samples", type=int, default=120,
                      help="history samples to fetch/render (default 120)")

    sup = sub.add_parser("supervise",
                         help="run a serve command under supervised "
                              "restarts with checkpoint auto-resume")
    sup.add_argument("--checkpoint-dir", required=True,
                     help="checkpoint directory the child writes to; "
                          "--resume is appended once it holds a link")
    sup.add_argument("--max-restarts", type=int, default=5)
    sup.add_argument("--backoff-base", type=float, default=0.5)
    sup.add_argument("--backoff-max", type=float, default=30.0)
    sup.add_argument("--healthy-seconds", type=float, default=30.0)
    sup.add_argument("--seed", type=int, default=0,
                     help="seed for deterministic backoff jitter")
    sup.add_argument("child", nargs=argparse.REMAINDER,
                     help="the serve command to supervise (everything "
                          "after '--')")
    return parser


# ----------------------------------------------------------------------
# command implementations

def _cmd_generate(args: argparse.Namespace) -> int:
    chunk = args.chunk_users
    if chunk == 0 and args.users >= 50_000:
        chunk = 25_000
    if chunk:
        summary = generate_workspace_streamed(
            TitanConfig(n_users=args.users, seed=args.seed), args.out,
            chunk_users=chunk, n_shards=args.shards,
            log=lambda msg: print(f"generate: {msg}", file=sys.stderr))
    else:
        dataset = generate_dataset(TitanConfig(n_users=args.users,
                                               seed=args.seed))
        save_workspace(dataset, args.out, n_shards=args.shards)
        summary = dataset.summary()
    print(f"workspace written to {args.out}")
    print(f"  users={summary['users']}  jobs={summary['jobs']}  "
          f"pubs={summary['publications']}  accesses={summary['accesses']}")
    print(f"  snapshot: {summary['files']} files, "
          f"{format_bytes(summary['bytes'])}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    ws = load_workspace(args.workspace)
    issues = validate_dataset(ws.users, ws.jobs, ws.accesses,
                              ws.publications)
    if not issues:
        print(f"{args.workspace}: all traces valid "
              f"({len(ws.users)} users, {len(ws.jobs)} jobs, "
              f"{len(ws.accesses)} accesses, "
              f"{len(ws.publications)} publications)")
        return 0
    for issue in issues:
        print(issue)
    errors = sum(1 for i in issues if i.severity == "error")
    print(f"{len(issues)} issue(s), {errors} error(s)")
    return 1 if errors else 0


def _activeness_at(ws: Workspace, t_c: int, params: ActivenessParams):
    store = ColumnarActivityStore()
    store.ingest_jobs(ws.jobs)
    store.ingest_publications(ws.publications)
    return store.evaluate(t_c, params, known_uids=[u.uid for u in ws.users])


def _cmd_evaluate(args: argparse.Namespace) -> int:
    ws = load_workspace(args.workspace)
    t_c = ws.replay_start + args.at_day * DAY_SECONDS
    params = ActivenessParams(period_days=args.period_days)
    activeness = _activeness_at(ws, t_c, params)

    counts = group_counts(classify_all(activeness))
    total = sum(counts.values())
    print(format_table(
        ["group", "users", "share"],
        [[cls.label, counts[cls], percent(counts[cls] / total, 1)]
         for cls in UserClass],
        title=f"User activeness at day {args.at_day} "
              f"({args.period_days:g}-day periods)"))

    ranked = sorted(activeness.values(),
                    key=lambda ua: (ua.log_op if ua.has_op else -1e18,
                                    ua.log_oc if ua.has_oc else -1e18),
                    reverse=True)
    rows = [[ua.uid, f"{ua.op_rank:.4g}", f"{ua.oc_rank:.4g}",
             classify(ua).label] for ua in ranked[:args.top]]
    print()
    print(format_table(["uid", "Phi_op", "Phi_oc", "class"], rows,
                       title=f"Top {args.top} users by operation activeness"))
    return 0


def _cmd_retain(args: argparse.Namespace) -> int:
    ws = load_workspace(args.workspace)
    config = RetentionConfig(lifetime_days=args.lifetime,
                             purge_target_utilization=args.target)
    t_c = ws.replay_start + args.advance_days * DAY_SECONDS

    fs = ws.fresh_filesystem()
    if args.advance_days > 0:
        advance_filesystem(fs, ws.accesses, t_c)

    exemptions = (ExemptionList.from_file(args.exempt)
                  if args.exempt else None)
    activeness = _activeness_at(ws, t_c, config.activeness)

    if args.policy == "flt":
        policy = FixedLifetimePolicy(config, enforce_target=True)
    else:
        notifier = FileNotifier(args.alert_log) if args.alert_log else None
        policy = ActiveDRPolicy(config, notifier=notifier)
    report = policy.run(fs, t_c, activeness=activeness,
                        exemptions=exemptions)
    print(render_retention_report(report))
    return 0 if report.target_met else 2


def _replay_policy(ws: Workspace, policy, config: RetentionConfig,
                   engine: str, known: list[int], compiled=None):
    if engine == "fast":
        if compiled is None:
            compiled = compile_dataset(ws)
        return FastEmulator(policy, config.activeness).run(
            compiled, known_uids=known), compiled
    emulator = Emulator(policy, config.activeness)
    fs = ws.fresh_filesystem()
    return emulator.run(fs, ws.accesses, ws.jobs, ws.publications,
                        ws.replay_start, ws.replay_end,
                        known_uids=known), compiled


def _cmd_replay(args: argparse.Namespace) -> int:
    ws = load_workspace(args.workspace)
    config = RetentionConfig(lifetime_days=args.lifetime,
                             purge_target_utilization=args.target)
    known = [u.uid for u in ws.users]

    if args.policy in ("both", "spectrum"):
        # Multi-policy replays go through the ComparisonRunner so the
        # policies share one compiled trace and one activeness
        # evaluation per trigger (the standalone per-policy path used to
        # redo both for every policy).
        selection = ((FLT, ACTIVEDR) if args.policy == "both"
                     else "spectrum")
        comparison = ComparisonRunner(ws, config, engine=args.engine,
                                      policies=selection).run()
        for result in comparison.results.values():
            print(render_emulation_summary(result))
            print()
        flt_m = comparison.total_misses(FLT)
        adr_m = comparison.total_misses(ACTIVEDR)
        if flt_m:
            print(f"ActiveDR miss reduction vs FLT: "
                  f"{percent(1.0 - adr_m / flt_m)}")
        return 0

    if args.policy == "flt":
        policy = FixedLifetimePolicy(config)
    elif args.policy == "activedr":
        policy = ActiveDRPolicy(config)
    elif args.policy == "value":
        policy = ValueBasedPolicy(config)
    else:
        policy = ScratchAsCachePolicy(
            config, residency=JobResidencyIndex(ws.jobs))
    result, _ = _replay_policy(ws, policy, config, args.engine, known)
    print(render_emulation_summary(result))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    ws = load_workspace(args.workspace)
    try:
        lifetimes = tuple(float(x) for x in args.lifetimes.split(",") if x)
    except ValueError:
        print(f"invalid --lifetimes {args.lifetimes!r}: expected "
              "comma-separated days, e.g. 7,30,60,90", file=sys.stderr)
        return 1
    if not lifetimes:
        print("no lifetimes given", file=sys.stderr)
        return 1
    base = RetentionConfig(purge_target_utilization=args.target)
    policies = "spectrum" if args.spectrum else (FLT, ACTIVEDR)
    sweep = run_lifetime_sweep(ws, lifetimes, base_config=base,
                               n_ranks=max(1, args.ranks),
                               engine=args.engine, policies=policies)
    rows = []
    for lifetime in lifetimes:
        comparison = sweep[lifetime]
        final = comparison[ACTIVEDR].final_report
        row = [
            f"{lifetime:g}",
            comparison.total_misses(FLT),
            comparison.total_misses(ACTIVEDR),
            percent(comparison.miss_reduction()),
            format_bytes(final.purged_bytes_total if final else 0),
            "yes" if (final and final.target_met) else "no",
        ]
        if args.spectrum:
            row[4:4] = [comparison.total_misses(VALUEBASED),
                        comparison.total_misses(SCRATCHCACHE)]
        rows.append(row)
    headers = ["lifetime (d)", "FLT misses", "ActiveDR misses", "reduction",
               "ActiveDR purged (final)", "target met"]
    if args.spectrum:
        headers[4:4] = ["ValueBased misses", "Cache misses"]
    print(format_table(
        headers, rows,
        title=f"Lifetime sweep ({args.engine} engine, "
              f"{max(1, args.ranks)} rank(s))"))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    # Calibration statistics need archetype labels, which only generated
    # datasets carry; for a loaded workspace we report the trace-level
    # subset (staleness, growth, job skew) by rebuilding a TitanDataset
    # would be wrong -- so measure directly from the workspace.
    ws = load_workspace(args.workspace)
    fs = ws.filesystem
    import numpy as np
    from ..emulation import deterministic_file_size
    cutoff = ws.replay_start - args.lifetime * DAY_SECONDS
    stale = sum(m.size for _p, m in fs.iter_files() if m.atime < cutoff)
    created = {r.path for r in ws.accesses if r.op == "create"}
    created_bytes = sum(deterministic_file_size(p) for p in created)
    jobs_per_user = {}
    for job in ws.jobs:
        jobs_per_user[job.uid] = jobs_per_user.get(job.uid, 0) + 1
    counts = np.asarray([jobs_per_user.get(u.uid, 0) for u in ws.users])
    q = np.percentile(counts, [0, 25, 50, 75, 100]) if counts.size else []
    print(f"users: {len(ws.users)}   files: {fs.file_count}   "
          f"capacity: {format_bytes(fs.capacity_bytes)}")
    print(f"bytes older than {args.lifetime:g} days at replay start: "
          f"{percent(stale / fs.total_bytes if fs.total_bytes else 0.0)}")
    print(f"replay-year created volume: {format_bytes(created_bytes)} = "
          f"{percent(created_bytes / fs.capacity_bytes if fs.capacity_bytes else 0.0)} of capacity")
    print("per-user job counts (min/q1/median/q3/max): "
          + "/".join(f"{x:g}" for x in q))
    return 0


#: ``serve`` exit code for checkpoint failures (2 is taken by ``retain``'s
#: unmet-target signal).
EXIT_CHECKPOINT_FAILURE = 3


def _serve_reliability_report(stream) -> None:
    """One stderr line per run: source health + quarantine summary.

    Written to stderr so the stdout contract (two status lines, then the
    emulation summary) stays byte-comparable against ``replay``.
    """
    import json

    report = stream.report()
    health = " ".join(f"{name}={info['health']}"
                      for name, info in report["sources"].items())
    quarantine = report["quarantine"]
    line = (f"reliability: {health}; "
            f"quarantined={quarantine['quarantined']}")
    if quarantine["quarantined"]:
        line += f" by_reason={json.dumps(quarantine['by_reason'])}"
        dead = quarantine.get("dead_letter")
        if dead:
            line += f" dead_letter={dead['path']}"
    if report["held_watermarks"]:
        line += f" held_watermarks={json.dumps(report['held_watermarks'])}"
    print(line, file=sys.stderr)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.shards:
        return _cmd_serve_sharded(args)
    if args.listen or args.tenant:
        return _cmd_serve_fleet(args)
    return _cmd_serve_single(args)


def _cmd_serve_single(args: argparse.Namespace) -> int:
    import json
    import os

    from ..faults import FaultPlan, FaultyIO
    from ..stream import (CheckpointCorruption, CheckpointManager,
                          DeadLetterLog, OnlineRetentionService,
                          ReliableEventStream, skip_events)
    from ..traces import read_jobs, read_users
    from ..vfs import load_filesystem

    config = RetentionConfig(lifetime_days=args.lifetime,
                             purge_target_utilization=args.target)
    if args.policy == "flt":
        policy = FixedLifetimePolicy(config)
    elif args.policy == "activedr":
        policy = ActiveDRPolicy(config)
    elif args.policy == "value":
        policy = ValueBasedPolicy(config)
    else:  # cache: residency derives from the full job trace
        jobs = list(read_jobs(os.path.join(args.workspace, "jobs.txt.gz")))
        policy = ScratchAsCachePolicy(config,
                                      residency=JobResidencyIndex(jobs))

    plan = FaultPlan.from_json(args.fault_plan) if args.fault_plan else None
    opener = None
    if plan is not None and plan.has_target("checkpoint"):
        def opener(path: str):
            return FaultyIO(open(path, "wb"), plan, "checkpoint")

    dead_letter_path = args.dead_letter
    if dead_letter_path is None and args.checkpoint_dir:
        dead_letter_path = os.path.join(args.checkpoint_dir,
                                        "dead-letter.jsonl")
    dead_letter = (DeadLetterLog(dead_letter_path)
                   if dead_letter_path else None)
    stream = ReliableEventStream(args.workspace, plan=plan,
                                 dead_letter=dead_letter)
    events = iter(stream)

    manager = (CheckpointManager(args.checkpoint_dir,
                                 retain=max(1, args.checkpoint_retain),
                                 opener=opener)
               if args.checkpoint_dir else None)

    if args.resume:
        if manager is None:
            print("--resume requires --checkpoint-dir", file=sys.stderr)
            return 1
        newest, failures = manager.latest_verified()
        for failed_path, reason in failures:
            print(f"checkpoint {failed_path} failed verification: {reason}",
                  file=sys.stderr)
        if newest is None:
            if not failures:
                print(f"no checkpoint in {args.checkpoint_dir}",
                      file=sys.stderr)
                return 1
            print(f"no checkpoint in {args.checkpoint_dir} verifies; "
                  f"cannot resume.  Restore a checkpoint from backup or "
                  f"start fresh without --resume.", file=sys.stderr)
            return EXIT_CHECKPOINT_FAILURE
        if failures:
            print(f"rolling back to {newest}", file=sys.stderr)
        try:
            service = OnlineRetentionService.resume(
                newest, policy,
                checkpoint_every_days=args.checkpoint_every,
                checkpoint_manager=manager)
        except CheckpointCorruption as exc:
            where = (f" (array {exc.array!r})"
                     if exc.array is not None else "")
            print(f"cannot resume from {newest}{where}: {exc.reason}",
                  file=sys.stderr)
            return EXIT_CHECKPOINT_FAILURE
        events = skip_events(events, service.cursor)
        print(f"resumed from {newest} at event {service.cursor}")
    else:
        with open(os.path.join(args.workspace, "meta.json")) as f:
            meta = json.load(f)
        fs = load_filesystem(os.path.join(args.workspace, "snapshot"),
                             size_seed=int(meta.get("size_seed", 2021)),
                             capacity_bytes=None)
        known = [u.uid for u in read_users(
            os.path.join(args.workspace, "users.txt.gz"))]
        service = OnlineRetentionService(
            policy, snapshot_fs=fs,
            replay_start=int(meta["replay_start"]),
            replay_end=int(meta["replay_end"]),
            known_uids=known,
            checkpoint_every_days=args.checkpoint_every,
            checkpoint_manager=manager)

    result = service.run(events, stop_after_events=args.stop_after_events)
    stats = service.stats
    _serve_reliability_report(stream)
    if dead_letter is not None:
        dead_letter.close()
    if result is None:
        where = (f"; checkpoint: {service.checkpoints.latest()}"
                 if service.checkpoints else "")
        print(f"stopped after {service.cursor} events "
              f"({stats['triggers']} triggers so far){where}")
        return 0
    print(f"ingested {service.cursor} events "
          f"(jobs={stats['events_job']} pubs={stats['events_publication']} "
          f"accesses={stats['events_access']}, "
          f"{service.dropped_accesses} out-of-window), "
          f"{stats['triggers']} triggers, "
          f"refolded {stats['eval_refolded']}/{stats['eval_users']} "
          f"user-type histories")
    print(render_emulation_summary(result))
    return 0


def _fleet_tenant_specs(args: argparse.Namespace):
    """The tenant fleet: explicit --tenant specs, or one from --policy."""
    from ..server import TenantSpec

    if args.tenant:
        return [TenantSpec.parse(text) for text in args.tenant]
    return [TenantSpec(name=args.policy, policy=args.policy,
                       lifetime_days=args.lifetime, target=args.target)]


def _fleet_policy_factory(workspace: str):
    """Build tenant policies, deriving cache residency from the workspace.

    The job trace is loaded at most once, and only if some tenant (now
    or added later through the admin plane) actually runs the
    scratch-as-a-cache policy.
    """
    import os

    from ..traces import read_jobs

    residency_box: list = []

    def factory(spec):
        if spec.policy != "cache":
            return spec.build_policy()
        if not residency_box:
            jobs = list(read_jobs(os.path.join(workspace, "jobs.txt.gz")))
            residency_box.append(JobResidencyIndex(jobs))
        return spec.build_policy(residency=residency_box[0])

    return factory


def _parse_expect_producers(value: str) -> dict[str, int]:
    """``"2"`` or ``"jobs=1,publications=1,accesses=2"`` to a mapping."""
    sources = ("jobs", "publications", "accesses")
    if "=" not in value:
        return {name: max(1, int(value)) for name in sources}
    expected = {name: 1 for name in sources}
    for part in value.split(","):
        name, _, count = part.partition("=")
        name = name.strip()
        if name not in expected:
            raise ValueError(f"unknown source {name!r} "
                             f"(known: {', '.join(sources)})")
        expected[name] = max(1, int(count))
    return expected


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    import json
    import os

    from ..faults import FaultPlan, FaultyIO
    from ..server import (AdminServer, MetricsHistory, MultiTenantService,
                          SocketListener)
    from ..server.ingest import NetworkEventStream
    from ..stream import (CheckpointCorruption, CheckpointManager,
                          DeadLetterLog, ReliableEventStream,
                          ingest_cursors)
    from ..stream.batch import skip_stream_items
    from ..traces import read_users
    from ..vfs import load_filesystem

    try:
        specs = _fleet_tenant_specs(args)
    except ValueError as exc:
        print(f"bad --tenant: {exc}", file=sys.stderr)
        return 1
    if len({s.name for s in specs}) != len(specs):
        print(f"duplicate tenant names in {[s.name for s in specs]}",
              file=sys.stderr)
        return 1
    factory = _fleet_policy_factory(args.workspace)

    # Shard-worker mode (spawned by `serve --shards N`): this process
    # owns one consistent-hash slice of the users.  The authoritative
    # ring for a resumed worker is the one in its checkpoint manifest
    # (it may be newer than the file after a rebalance).
    shard_name = args.shard_name
    shard_ring = None
    shard_ring_json = None
    if shard_name:
        from ..server import HashRing
        if not args.shard_ring:
            print("--shard-name requires --shard-ring", file=sys.stderr)
            return 1
        with open(args.shard_ring) as f:
            shard_ring_json = json.load(f)
        shard_ring = HashRing.from_jsonable(shard_ring_json)
        if shard_name not in shard_ring.shards and not args.resume:
            # On --resume the checkpoint manifest's ring wins (it may
            # be newer than the file -- e.g. a rebalance clone), so the
            # membership check moves past the resume override below.
            print(f"shard {shard_name!r} is not in the ring "
                  f"({shard_ring.shards})", file=sys.stderr)
            return 1

    plan = FaultPlan.from_json(args.fault_plan) if args.fault_plan else None
    opener = None
    if plan is not None and plan.has_target("checkpoint"):
        def opener(path: str):
            return FaultyIO(open(path, "wb"), plan, "checkpoint")

    dead_letter_path = args.dead_letter
    if dead_letter_path is None and args.checkpoint_dir:
        dead_letter_path = os.path.join(args.checkpoint_dir,
                                        "dead-letter.jsonl")
    dead_letter = (DeadLetterLog(dead_letter_path)
                   if dead_letter_path else None)

    manager = (CheckpointManager(args.checkpoint_dir,
                                 retain=max(1, args.checkpoint_retain),
                                 opener=opener)
               if args.checkpoint_dir else None)

    history_path = args.metrics_history
    if history_path is None and args.checkpoint_dir:
        history_path = os.path.join(args.checkpoint_dir,
                                    "metrics-history.jsonl")
    history = MetricsHistory(history_path) if history_path else None

    listener = None
    stream = None

    try:
        service = None
        resumed = False
        if args.resume:
            if manager is None:
                print("--resume requires --checkpoint-dir", file=sys.stderr)
                return 1
            newest, failures = manager.latest_verified()
            for failed_path, reason in failures:
                print(f"checkpoint {failed_path} failed verification: "
                      f"{reason}", file=sys.stderr)
            if newest is None:
                if not failures:
                    print(f"no checkpoint in {args.checkpoint_dir}",
                          file=sys.stderr)
                    return 1
                print(f"no checkpoint in {args.checkpoint_dir} verifies; "
                      f"cannot resume.  Restore a checkpoint from backup "
                      f"or start fresh without --resume.", file=sys.stderr)
                return EXIT_CHECKPOINT_FAILURE
            if failures:
                print(f"rolling back to {newest}", file=sys.stderr)
            try:
                service = MultiTenantService.resume(
                    newest, policy_factory=factory,
                    checkpoint_every_days=args.checkpoint_every,
                    checkpoint_manager=manager,
                    metrics_history=history)
            except (CheckpointCorruption, ValueError) as exc:
                print(f"cannot resume from {newest}: {exc}",
                      file=sys.stderr)
                return EXIT_CHECKPOINT_FAILURE
            resumed = True
            print(f"resumed from {newest} at event {service.cursor}")
            if service.resumed_shard is not None:
                # The checkpointed shard section wins over --shard-ring:
                # a rebalance may have narrowed this worker after the
                # ring file was written (donor), or this may be the
                # first resume of a rebalance clone (seed pending).
                from ..server import HashRing
                shard_name = service.resumed_shard["name"]
                shard_ring_json = service.resumed_shard["ring"]
                shard_ring = HashRing.from_jsonable(shard_ring_json)
            if service.resumed_seed_pending:
                dropped = service.restrict_users(
                    shard_ring.keep_mask(shard_name))
                service.reset_measurements()
                print(f"seeded shard {shard_name} from rebalance clone "
                      f"(shed {dropped['dropped_users']} users, "
                      f"{dropped['dropped_files']} files)",
                      file=sys.stderr)
        else:
            with open(os.path.join(args.workspace, "meta.json")) as f:
                meta = json.load(f)
            fs = load_filesystem(os.path.join(args.workspace, "snapshot"),
                                 size_seed=int(meta.get("size_seed", 2021)),
                                 capacity_bytes=None,
                                 uid_filter=(shard_ring.uid_filter(shard_name)
                                             if shard_ring else None))
            known = [u.uid for u in read_users(
                os.path.join(args.workspace, "users.txt.gz"))]
            if shard_ring is not None:
                import numpy as np
                uids = np.asarray(known, dtype=np.int64)
                mask = shard_ring.member_mask(shard_name, uids)
                known = [int(u) for u in uids[mask].tolist()]
            service = MultiTenantService(
                [(spec, factory(spec)) for spec in specs],
                snapshot_fs=fs,
                replay_start=int(meta["replay_start"]),
                replay_end=int(meta["replay_end"]),
                known_uids=known,
                checkpoint_every_days=args.checkpoint_every,
                checkpoint_manager=manager,
                policy_factory=factory,
                metrics_history=history)

        if shard_ring is not None:
            if shard_name not in shard_ring.shards:
                print(f"shard {shard_name!r} is not in the ring "
                      f"({shard_ring.shards})", file=sys.stderr)
                return 1
            ring, name, ring_json = shard_ring, shard_name, shard_ring_json
            service.owned_filter = ring.owned_filter(name)
            service.manifest_extra = lambda: {
                "shard": {"name": name, "ring": ring_json}}

        # The event feed is built AFTER the service so a listening
        # server can seed its per-source edge cursors from the resumed
        # checkpoint's ingest section: reconnecting producers then learn
        # the durable cursor in their hello ack and resend only the
        # suffix the crash lost, with the edge discarding any overlap.
        if args.listen:
            cursors = {}
            if (resumed and service.resumed_ingest is not None
                    and not service.resumed_seed_pending):
                # A rebalance clone's ingest section belongs to the
                # DONOR's lane sequence domain; the seeded worker's
                # lanes start a fresh one, so its edge starts empty.
                cursors = ingest_cursors({"ingest": service.resumed_ingest})
            try:
                expected = _parse_expect_producers(args.expect_producers)
            except ValueError as exc:
                print(f"bad --expect-producers: {exc}", file=sys.stderr)
                return 1
            ssl_context = None
            if args.tls_cert:
                from ..server.protocol import make_server_ssl_context
                ssl_context = make_server_ssl_context(args.tls_cert,
                                                      args.tls_key)
            listener = SocketListener(
                args.listen,
                expected=expected,
                initial_cursors=cursors,
                auth_token=args.auth_token,
                max_connections=args.max_connections,
                write_deadline=(args.write_deadline
                                if args.write_deadline > 0 else None),
                ssl_context=ssl_context)
            stream = NetworkEventStream(listener, dead_letter=dead_letter)
            events = iter(stream)
            if resumed:
                if dead_letter is not None:
                    stream.quarantine.resume_from(dead_letter)
                if service.resumed_ingest is not None:
                    # Exactly-once resume: the edge discards replayed
                    # rows by sequence number, so no global skip -- and
                    # the ledger must count from the resumed cursor.
                    stream.origin = service.cursor
                else:
                    # Pre-sequencing checkpoint: fall back to the global
                    # skip (producers must republish from the start).
                    events = skip_stream_items(events, service.cursor)
            if service.resumed_ingest is not None or not resumed:
                service.ingest_snapshot = stream.sequence_snapshot
        else:
            stream = ReliableEventStream(args.workspace, plan=plan,
                                         dead_letter=dead_letter)
            events = iter(stream)
            if resumed:
                if dead_letter is not None:
                    # Continue the crashed daemon's quarantine totals
                    # instead of restarting the forensic counters.
                    stream.quarantine.resume_from(dead_letter)
                # skip_stream_items counts batch runs by their row
                # width, so the binary wire path resumes at the exact
                # same cursor a per-event stream would.
                events = skip_stream_items(events, service.cursor)

        if history is not None:
            def sample_extra(stream=stream, listener=listener):
                extra = {"quarantined": int(stream.quarantine.total)}
                if listener is not None:
                    extra.update(
                        decode_errors=int(listener.decode_errors),
                        batches_received=int(listener.batches_received),
                        batch_rows_received=int(
                            listener.batch_rows_received),
                        queued={src.name: src.queue.qsize()
                                for src in listener.sources()})
                return extra

            service.sample_extra = sample_extra

        extra_commands = None
        if shard_name:
            def _shard_split(request: dict,
                             service=service) -> dict:
                from ..server import HashRing
                try:
                    boundary = int(request["at_boundary"])
                    dest_dir = request["dest_dir"]
                    new_ring_json = request["ring"]
                    new_shard = request["new_shard"]
                except (KeyError, TypeError, ValueError) as exc:
                    return {"ok": False,
                            "error": f"bad shard-split request: {exc}"}
                if boundary < service.next_boundary:
                    return {"ok": False,
                            "error": f"boundary {boundary} already "
                                     f"passed (next is "
                                     f"{service.next_boundary})"}
                if boundary >= service.n_days:
                    return {"ok": False,
                            "error": f"boundary {boundary} is past the "
                                     f"{service.n_days}-day window"}
                new_ring = HashRing.from_jsonable(new_ring_json)
                if (shard_name not in new_ring.shards
                        or new_shard not in new_ring.shards):
                    return {"ok": False,
                            "error": "post-split ring must contain both "
                                     "the donor and the new shard"}
                service.request_split(
                    at_boundary=boundary, dest_dir=dest_dir,
                    keep_mask=new_ring.keep_mask(shard_name),
                    owned_filter=new_ring.owned_filter(shard_name),
                    extra={"shard": {"name": new_shard,
                                     "ring": new_ring_json}},
                    donor_extra={"shard": {"name": shard_name,
                                           "ring": new_ring_json}})
                return {"ok": True, "queued": True,
                        "at_boundary": boundary, "dest_dir": dest_dir}

            extra_commands = {"shard-split": _shard_split}

        admin = (AdminServer(args.admin, service, stream=stream,
                             extra_commands=extra_commands)
                 if args.admin else None)
        try:
            results = service.run(events,
                                  stop_after_events=args.stop_after_events)
        finally:
            if admin is not None:
                admin.close()
    finally:
        if listener is not None:
            listener.close()
        if history is not None:
            history.close()

    stats = service.stats
    _serve_reliability_report(stream)
    if dead_letter is not None:
        dead_letter.close()
    if results is None:
        where = (f"; checkpoint: {service.checkpoints.latest()}"
                 if service.checkpoints else "")
        print(f"stopped after {service.cursor} events "
              f"({stats['activeness_evals']} evaluations so far){where}")
        return 0
    if args.result_json:
        payload = {"tenants": {
            t.name: _result_to_jsonable(results[t.name])
            for t in service.tenants}}
        tmp = f"{args.result_json}.tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, args.result_json)
    print(f"ingested {service.cursor} events "
          f"(jobs={stats['events_job']} pubs={stats['events_publication']} "
          f"accesses={stats['events_access']}, "
          f"{service.dropped_accesses} out-of-window), "
          f"{len(service.tenants)} tenants, "
          f"{stats['activeness_evals']} activeness evaluations, "
          f"refolded {stats['eval_refolded']}/{stats['eval_users']} "
          f"user-type histories")
    for tenant in service.tenants:
        print(f"=== tenant {tenant.name} "
              f"[{tenant.spec.policy}] ===")
        print(render_emulation_summary(results[tenant.name]))
    return 0


def _result_to_jsonable(result) -> dict:
    """The mergeable subset of an :class:`EmulationResult` as JSON.

    Everything here is either additive across user-disjoint shards
    (daily ledgers, totals) or mergeable by trigger time (reports); see
    ``repro.server.shard.merge_tenant_results`` for the inverse.
    """
    from ..stream.checkpoint import reports_to_jsonable

    metrics = result.metrics
    return {
        "policy": result.policy,
        "lifetime_days": result.lifetime_days,
        "n_days": int(metrics.n_days),
        "accesses": metrics.accesses.tolist(),
        "misses": metrics.misses.tolist(),
        "group_misses": {str(cls.value): series.tolist()
                         for cls, series in metrics.group_misses.items()},
        "reports": reports_to_jsonable(result.reports),
        "final_total_bytes": int(result.final_total_bytes),
        "final_file_count": int(result.final_file_count),
    }


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """``serve --shards N``: the horizontally sharded fleet.

    This process runs the shard router (on ``--listen``) and the
    scatter/gather fleet admin plane (on ``--admin``); the N workers
    are child ``serve`` processes on private unix sockets, each under
    a supervised crash loop.  When ingestion completes everywhere the
    per-worker result JSONs are merged and printed in the same format
    as a single-process ``serve``.
    """
    import json
    import os

    from ..server import (FleetAdmin, HashRing, ShardFleet, ShardRouter,
                          WorkerSpec)

    if not args.listen:
        print("--shards requires --listen (the fleet's ingest front)",
              file=sys.stderr)
        return 1
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 1
    if args.resume:
        print("--shards does not support --resume at the fleet level "
              "(workers auto-resume their own checkpoints)",
              file=sys.stderr)
        return 1
    try:
        expected = _parse_expect_producers(args.expect_producers)
    except ValueError as exc:
        print(f"bad --expect-producers: {exc}", file=sys.stderr)
        return 1

    with open(os.path.join(args.workspace, "meta.json")) as f:
        meta = json.load(f)
    replay_start = int(meta["replay_start"])
    n_days = (int(meta["replay_end"]) - replay_start) // DAY_SECONDS

    fleet_dir = (args.fleet_dir or args.checkpoint_dir
                 or os.path.join(args.workspace, "fleet"))
    os.makedirs(fleet_dir, exist_ok=True)

    names = [f"s{i:02d}" for i in range(args.shards)]
    ring = HashRing(names)
    ring_path = os.path.join(fleet_dir, "ring.json")
    with open(ring_path, "w") as f:
        json.dump(ring.to_jsonable(), f)

    def make_spec(name: str) -> WorkerSpec:
        ck_dir = os.path.join(fleet_dir, f"{name}-ck")
        spec = WorkerSpec(
            name=name,
            ingest_address=f"unix:{os.path.join(fleet_dir, name)}.sock",
            admin_address=f"unix:{os.path.join(fleet_dir, name)}-admin.sock",
            checkpoint_dir=ck_dir,
            result_path=os.path.join(fleet_dir, f"{name}-result.json"),
            log_path=os.path.join(fleet_dir, f"{name}.log"))
        command = [sys.executable, "-m", "repro", "serve",
                   "--workspace", args.workspace,
                   "--listen", spec.ingest_address,
                   "--admin", spec.admin_address,
                   "--checkpoint-dir", ck_dir,
                   "--checkpoint-every", str(args.checkpoint_every),
                   "--checkpoint-retain", str(args.checkpoint_retain),
                   "--shard-name", name,
                   "--shard-ring", ring_path,
                   "--result-json", spec.result_path,
                   "--expect-producers", "1",
                   "--policy", args.policy,
                   "--lifetime", str(args.lifetime),
                   "--target", str(args.target)]
        for tenant in args.tenant or ():
            command += ["--tenant", tenant]
        spec.command = command
        return spec

    specs = [make_spec(name) for name in names]

    ssl_context = None
    if args.tls_cert:
        from ..server.protocol import make_server_ssl_context
        ssl_context = make_server_ssl_context(args.tls_cert, args.tls_key)

    router = ShardRouter(
        args.listen,
        workers={s.name: s.ingest_address for s in specs},
        ring=ring,
        expected=expected,
        auth_token=args.auth_token,
        ssl_context=ssl_context,
        max_connections=args.max_connections,
        write_deadline=(args.write_deadline
                        if args.write_deadline > 0 else None))
    fleet = ShardFleet(router, specs, directory=fleet_dir,
                       replay_start=replay_start, n_days=n_days,
                       worker_factory=make_spec, poll_interval=0.5,
                       log=lambda line: print(f"fleet: {line}",
                                              file=sys.stderr, flush=True))
    admin = FleetAdmin(args.admin, fleet) if args.admin else None
    print(f"fleet: {args.shards} shard(s) behind {router.address} "
          f"(dir {fleet_dir})", flush=True)
    try:
        fleet.start()
        completed = fleet.wait()
        if completed:
            router.join(timeout=60.0)
    finally:
        if admin is not None:
            admin.close()
        fleet.stop()

    failed = [name for name, report in fleet.reports.items()
              if getattr(report, "final_returncode", 1) != 0]
    if failed:
        print(f"fleet: worker(s) {', '.join(sorted(failed))} failed; "
              f"see logs in {fleet_dir}", file=sys.stderr)
        return 1
    try:
        merged = fleet.collect_results()
    except RuntimeError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 1
    restarts = sum(getattr(r, "restarts", 0)
                   for r in fleet.reports.values())
    print(f"fleet: ingested {sum(router.rows_routed.values())} routed "
          f"rows across {len(fleet.worker_names())} shard(s), "
          f"{restarts} worker restart(s), "
          f"{len(fleet.rebalance_log())} rebalance(s)", file=sys.stderr)
    # Header format matches the single-process multi-tenant serve
    # byte-for-byte, so identity checks can diff from the first
    # "=== tenant" line.
    tenant_specs = _fleet_tenant_specs(args)
    ordered = [s.name for s in tenant_specs if s.name in merged]
    ordered += [n for n in sorted(merged) if n not in ordered]
    spec_policies = {s.name: s.policy for s in tenant_specs}
    for name in ordered:
        result = merged[name]
        policy = spec_policies.get(name, result.policy)
        print(f"=== tenant {name} [{policy}] ===")
        print(render_emulation_summary(result))
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from ..server import publish_workspace
    from ..server.ingest import DEFAULT_BATCH_EVENTS

    sources = tuple(s for s in args.sources.split(",") if s)
    batch = DEFAULT_BATCH_EVENTS if args.batch is None else max(0, args.batch)
    ssl_context = None
    if args.tls or args.tls_ca:
        from ..server.protocol import make_client_ssl_context
        ssl_context = make_client_ssl_context(args.tls_ca)
    try:
        counts = publish_workspace(args.connect, args.workspace,
                                   sources=sources,
                                   producer=args.producer,
                                   retry_for=args.retry_for,
                                   retry_seed=args.retry_seed,
                                   batch_size=batch,
                                   compress=args.compress,
                                   auth_token=args.auth_token,
                                   ssl_context=ssl_context)
    except (OSError, ConnectionError) as exc:
        print(f"publish failed: {exc}", file=sys.stderr)
        return 1
    total = sum(counts.values())
    detail = " ".join(f"{name}={counts[name]}" for name in sources)
    print(f"published {total} events to {args.connect} ({detail})")
    return 0


def _cmd_admin(args: argparse.Namespace) -> int:
    import json

    from ..server import TenantSpec, admin_request

    request: dict = {"cmd": args.request}
    if args.request == "query":
        if args.uid is None:
            print("query needs --uid", file=sys.stderr)
            return 1
        request["uid"] = args.uid
    elif args.request == "metrics" and args.history:
        request["history"] = args.history
    elif args.request == "export":
        request["format"] = "prom"  # --prom is the (only) default format
    elif args.request == "tenants-add":
        if args.spec is None:
            print("tenants-add needs --spec", file=sys.stderr)
            return 1
        try:
            spec = TenantSpec.parse(args.spec)
        except ValueError as exc:
            print(f"bad --spec: {exc}", file=sys.stderr)
            return 1
        request = {"cmd": "tenants", "action": "add",
                   "spec": spec.to_jsonable()}
        if args.clone_from:
            request["clone_from"] = args.clone_from
    elif args.request == "tenants-remove":
        if args.name is None:
            print("tenants-remove needs --name", file=sys.stderr)
            return 1
        request = {"cmd": "tenants", "action": "remove", "name": args.name}
    elif args.request == "shards-rebalance":
        if args.donor:
            request["donor"] = args.donor
        if args.name:
            request["name"] = args.name

    try:
        response = admin_request(args.connect, request)
    except (OSError, ConnectionError) as exc:
        print(f"admin request failed: {exc}", file=sys.stderr)
        return 1
    if args.request == "export" and response.get("ok"):
        # The exposition is already a text document: print it raw so
        # the output pipes straight into promtool or a file.
        print(response.get("text", ""), end="")
        return 0
    print(json.dumps(response, indent=2, sort_keys=True, default=repr))
    return 0 if response.get("ok") else 1


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from ..server import fetch_dashboard_data, load_history_data
    from ..server import render_html, render_terminal

    if bool(args.connect) == bool(args.history_file):
        print("dashboard needs exactly one of --connect or --history-file",
              file=sys.stderr)
        return 1
    samples = max(2, args.samples)
    try:
        if args.connect:
            data = fetch_dashboard_data(args.connect, samples=samples)
        else:
            data = load_history_data(args.history_file, samples=samples)
    except (OSError, ConnectionError) as exc:
        print(f"dashboard data fetch failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(render_html(data))
        print(f"dashboard written to {args.out}")
        return 0
    print(render_terminal(data), end="")
    return 0


def _cmd_supervise(args: argparse.Namespace) -> int:
    import glob
    import os

    from ..server import BackoffPolicy, Supervisor

    child = list(args.child)
    if child and child[0] == "--":
        child = child[1:]
    if not child:
        print("supervise needs a child command after '--', e.g. "
              "supervise --checkpoint-dir ck -- serve --workspace ws ...",
              file=sys.stderr)
        return 1
    if "--checkpoint-dir" not in child:
        child += ["--checkpoint-dir", args.checkpoint_dir]
    command = [sys.executable, "-m", "repro"] + child

    def should_resume() -> bool:
        pattern = os.path.join(args.checkpoint_dir, "checkpoint-*.npz")
        return bool(glob.glob(pattern))

    supervisor = Supervisor(
        command,
        backoff=BackoffPolicy(base=args.backoff_base,
                              max_delay=args.backoff_max,
                              seed=args.seed,
                              max_restarts=args.max_restarts,
                              healthy_seconds=args.healthy_seconds),
        should_resume=should_resume)
    rc = supervisor.run()
    report = supervisor.report
    print(f"supervisor: {len(report.attempts)} attempt(s), "
          f"{report.restarts} restart(s), final rc={rc}", file=sys.stderr)
    return rc


def _cmd_chaos_proxy(args: argparse.Namespace) -> int:
    import signal
    import threading

    from ..faults import ChaosProxy, FaultPlan

    plan = FaultPlan.from_json(args.fault_plan)
    proxy = ChaosProxy(args.listen, args.upstream, plan, name=args.name)
    print(f"chaos proxy on {proxy.address} -> {args.upstream} "
          f"({len(plan.specs)} fault spec(s), seed {plan.seed})",
          flush=True)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    proxy.close()
    report = proxy.describe()
    print("chaos proxy: " + " ".join(
        f"{key}={report[key]}"
        for key in ("connections", "severed", "stalled", "corrupted",
                    "dropped_bytes", "splits", "forwarded_bytes")),
        flush=True)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "validate": _cmd_validate,
    "evaluate": _cmd_evaluate,
    "retain": _cmd_retain,
    "replay": _cmd_replay,
    "sweep": _cmd_sweep,
    "calibrate": _cmd_calibrate,
    "serve": _cmd_serve,
    "publish": _cmd_publish,
    "chaos-proxy": _cmd_chaos_proxy,
    "admin": _cmd_admin,
    "dashboard": _cmd_dashboard,
    "supervise": _cmd_supervise,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
