"""On-disk workspaces: the directory layout the command-line tools use.

A workspace bundles everything one evaluation needs::

    workspace/
      meta.json            calendar + capacity + generation parameters
      users.txt.gz         the four trace families
      jobs.txt.gz
      publications.txt.gz
      app_log.txt.gz
      snapshot/            sharded gzipped metadata snapshot

``save_workspace`` materializes a generated :class:`TitanDataset`;
``load_workspace`` reads everything back into a :class:`Workspace` whose
file system is rebuilt from the snapshot shards.  Workspace snapshots use
the extended record format with an explicit size column, so the file
system round-trips byte-exactly; sizeless (OLCF-style) snapshots load
with stripe-synthesized sizes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..synth.titan import TitanDataset
from ..traces import (
    AppAccessRecord,
    JobRecord,
    PublicationRecord,
    UserRecord,
    read_app_log,
    read_jobs,
    read_publications,
    read_users,
    write_app_log,
    write_jobs,
    write_publications,
    write_users,
)
from ..vfs import SnapshotRecord, VirtualFileSystem, load_filesystem, write_snapshot

__all__ = ["Workspace", "save_workspace", "load_workspace"]

_META = "meta.json"
_USERS = "users.txt.gz"
_JOBS = "jobs.txt.gz"
_PUBS = "publications.txt.gz"
_APPS = "app_log.txt.gz"
_SNAPDIR = "snapshot"


@dataclass(slots=True)
class Workspace:
    """A loaded workspace: traces plus the snapshot file system."""

    directory: str
    meta: dict
    users: list[UserRecord]
    jobs: list[JobRecord]
    publications: list[PublicationRecord]
    accesses: list[AppAccessRecord]
    filesystem: VirtualFileSystem

    @property
    def replay_start(self) -> int:
        return int(self.meta["replay_start"])

    @property
    def replay_end(self) -> int:
        return int(self.meta["replay_end"])

    @property
    def snapshot_ts(self) -> int:
        return int(self.meta["snapshot_ts"])

    def fresh_filesystem(self) -> VirtualFileSystem:
        return self.filesystem.replicate()


def save_workspace(dataset: TitanDataset, directory: str,
                   n_shards: int = 4) -> str:
    """Write ``dataset`` as a workspace; returns the directory."""
    os.makedirs(directory, exist_ok=True)
    write_users(os.path.join(directory, _USERS), dataset.users)
    write_jobs(os.path.join(directory, _JOBS), dataset.jobs)
    write_publications(os.path.join(directory, _PUBS), dataset.publications)
    write_app_log(os.path.join(directory, _APPS), dataset.accesses)

    records = (SnapshotRecord(path, meta.stripe_count, meta.atime,
                              meta.mtime, meta.ctime, meta.uid,
                              size=meta.size)
               for path, meta in dataset.filesystem.iter_files())
    write_snapshot(os.path.join(directory, _SNAPDIR), records, n_shards)

    meta = {
        "format": "activedr-workspace/1",
        "n_users": len(dataset.users),
        "seed": dataset.config.seed,
        "replay_start": dataset.config.replay_start,
        "replay_end": dataset.config.replay_end,
        "snapshot_ts": dataset.config.snapshot_ts,
        "capacity_bytes": dataset.filesystem.capacity_bytes,
        "size_seed": dataset.config.seed,
    }
    meta_path = os.path.join(directory, _META)
    with open(f"{meta_path}.tmp", "w") as f:
        json.dump(meta, f, indent=2)
    os.replace(f"{meta_path}.tmp", meta_path)
    return directory


def load_workspace(directory: str) -> Workspace:
    """Load a workspace directory written by :func:`save_workspace`."""
    meta_path = os.path.join(directory, _META)
    if not os.path.exists(meta_path):
        raise FileNotFoundError(
            f"{directory!r} is not a workspace (missing {_META})")
    with open(meta_path) as f:
        meta = json.load(f)
    if meta.get("format") != "activedr-workspace/1":
        raise ValueError(f"unsupported workspace format: {meta.get('format')!r}")

    # Workspace snapshots carry explicit sizes, so the file system
    # round-trips byte-exactly; the nominal capacity is frozen at the
    # loaded usage (the paper's definition), with meta.json retaining the
    # original figure for provenance.
    fs = load_filesystem(os.path.join(directory, _SNAPDIR),
                         size_seed=int(meta.get("size_seed", 2021)),
                         capacity_bytes=None)
    return Workspace(
        directory=directory,
        meta=meta,
        users=list(read_users(os.path.join(directory, _USERS))),
        jobs=list(read_jobs(os.path.join(directory, _JOBS))),
        publications=list(read_publications(os.path.join(directory, _PUBS))),
        accesses=list(read_app_log(os.path.join(directory, _APPS))),
        filesystem=fs,
    )
