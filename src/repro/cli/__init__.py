"""Command-line interface: ``activedr`` / ``python -m repro``."""

from .main import build_parser, main
from .workspace import Workspace, load_workspace, save_workspace

__all__ = ["build_parser", "main", "Workspace", "load_workspace",
           "save_workspace"]
