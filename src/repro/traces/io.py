"""Line-oriented readers/writers for trace files.

Each trace family serializes to a plain-text format, optionally gzipped
(files ending in ``.gz`` are compressed transparently), one record per
line, fields separated by ``|``.  The formats are deliberately simple --
the original OLCF logs are flat text too -- so that loading scales linearly
and the Fig. 12 loading-cost experiment measures realistic work.

Formats::

    users:  uid|name|created_ts
    jobs:   job_id|uid|submit_ts|start_ts|end_ts|num_nodes|cores_per_node
    apps:   ts|uid|op|path
    pubs:   pub_id|ts|citations|uid0,uid1,...

All writers are **atomic and durable**: records stream into a
same-directory ``.tmp`` sibling which is fsynced and renamed over the
destination only after a successful close, and the containing directory
is fsynced after the rename (the rename alone orders the data, but the
*directory entry* is not durable across power loss until the directory
inode itself is flushed).  A crashed or interrupted write never leaves a
truncated trace behind -- the old file, if any, survives intact.  The app
log stores the path as the *last* field and parses it with
``split("|", 3)``, so paths containing ``|``, spaces, or any non-newline
unicode round-trip; paths containing a newline cannot be represented in
a line-oriented format and are rejected at write time.

All readers accept an optional ``on_error`` callback: a line that fails
to parse (field count, int conversion, schema ``__post_init__``
validation) is handed to the callback and skipped instead of raising --
the hook the streaming quarantine uses to divert malformed rows to a
dead-letter file while the rest of a damaged trace keeps flowing.
"""

from __future__ import annotations

import gzip
import os
from typing import IO, Callable, Iterable, Iterator, TypeVar

from .schema import AppAccessRecord, JobRecord, PublicationRecord, UserRecord

__all__ = [
    "atomic_output", "fsync_directory",
    "user_line", "job_line", "access_line", "publication_line",
    "write_users", "read_users",
    "write_jobs", "read_jobs",
    "write_app_log", "read_app_log",
    "write_publications", "read_publications",
]

T = TypeVar("T")


def fsync_directory(directory: str) -> None:
    """Flush a directory inode so a rename inside it survives power loss.

    ``os.replace`` makes the swap atomic with respect to concurrent
    readers, but until the directory itself is fsynced the new entry may
    exist only in memory.  Filesystems that cannot fsync a directory
    (some network mounts) raise; that is a durability downgrade, not a
    correctness failure, so it is swallowed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class atomic_output:
    """Context manager: write-to-tmp-sibling, fsync, then ``os.replace``.

    Yields a text handle (gzip-compressed when the *final* path ends in
    ``.gz`` -- the tmp suffix never changes the compression decision).
    On a clean exit the tmp file is flushed to stable storage, replaces
    ``path`` atomically, and the containing directory is fsynced so the
    rename itself is durable; on an exception the tmp file is removed
    and the destination is untouched.
    """

    def __init__(self, path: str,
                 wrap: Callable[[IO[str]], IO[str]] | None = None) -> None:
        self.path = path
        self._tmp = f"{path}.tmp"
        self._fh: IO[str] | None = None
        self._wrap = wrap

    def __enter__(self) -> IO[str]:
        self._fh = (gzip.open(self._tmp, "wt")
                    if self.path.endswith(".gz")
                    else open(self._tmp, "w"))
        # ``wrap`` decorates only what the caller writes through; close,
        # fsync and rename still act on the raw handle underneath, so an
        # injected failure mid-write aborts into the tmp-removal path
        # and the destination stays untouched.
        return self._wrap(self._fh) if self._wrap is not None else self._fh

    def __exit__(self, exc_type, exc, tb) -> None:
        self._fh.close()
        if exc_type is None:
            # Re-open to fsync *after* close: the gzip trailer is only
            # written on close, so fsyncing the write handle would miss
            # the final bytes.
            fd = os.open(self._tmp, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(self._tmp, self.path)
            fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        else:
            try:
                os.remove(self._tmp)
            except OSError:
                pass


def _open_write(path: str, wrap=None) -> atomic_output:
    return atomic_output(path, wrap)


def _open_read(path: str) -> IO[str]:
    return gzip.open(path, "rt") if path.endswith(".gz") else open(path)


#: Lines buffered per ``writelines`` flush.  One ``f.write`` per record
#: through a gzip stream dominates write time for large traces; chunked
#: ``writelines`` keeps the formats byte-identical while amortizing the
#: per-call compression overhead.
_WRITE_CHUNK_LINES = 8192


def _write(path: str, records: Iterable[T], fmt: Callable[[T], str],
           wrap=None) -> int:
    n = 0
    buf: list[str] = []
    with _open_write(path, wrap) as f:
        for rec in records:
            buf.append(fmt(rec))
            n += 1
            if len(buf) >= _WRITE_CHUNK_LINES:
                f.writelines(buf)
                buf.clear()
        if buf:
            f.writelines(buf)
    return n


#: Signature of the malformed-row hook: ``on_error(raw_line, exception)``.
OnError = Callable[[str, Exception], None]


def _read(path: str, parse: Callable[[str], T],
          on_error: OnError | None = None) -> Iterator[T]:
    with _open_read(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            if on_error is None:
                yield parse(line)
                continue
            try:
                rec = parse(line)
            except (ValueError, IndexError, TypeError) as exc:
                on_error(line, exc)
                continue
            yield rec


# The one-record line formatters are public so streaming writers (the
# chunked large-scale generator) can emit the exact on-disk format
# through their own incrementally held-open handles.

def user_line(u: UserRecord) -> str:
    if "|" in u.name or "\n" in u.name:
        raise ValueError(f"user name {u.name!r} cannot contain '|' or "
                         "newlines in the users trace format")
    return f"{u.uid}|{u.name}|{u.created_ts}\n"


def job_line(j: JobRecord) -> str:
    return (f"{j.job_id}|{j.uid}|{j.submit_ts}|{j.start_ts}"
            f"|{j.end_ts}|{j.num_nodes}|{j.cores_per_node}\n")


def access_line(a: AppAccessRecord) -> str:
    if "\n" in a.path:
        raise ValueError(f"path {a.path!r} cannot contain newlines in "
                         "the line-oriented app-log format")
    return f"{a.ts}|{a.uid}|{a.op}|{a.path}\n"


def publication_line(p: PublicationRecord) -> str:
    return (f"{p.pub_id}|{p.ts}|{p.citations}|"
            f"{','.join(str(u) for u in p.author_uids)}\n")


# ---------------------------------------------------------------- users

def write_users(path: str, users: Iterable[UserRecord], *,
                wrap=None) -> int:
    return _write(path, users, user_line, wrap)


def read_users(path: str,
               on_error: OnError | None = None) -> Iterator[UserRecord]:
    def parse(line: str) -> UserRecord:
        uid, name, created = line.split("|")
        return UserRecord(int(uid), name, int(created))
    return _read(path, parse, on_error)


# ---------------------------------------------------------------- jobs

def write_jobs(path: str, jobs: Iterable[JobRecord], *, wrap=None) -> int:
    return _write(path, jobs, job_line, wrap)


def read_jobs(path: str,
              on_error: OnError | None = None) -> Iterator[JobRecord]:
    def parse(line: str) -> JobRecord:
        jid, uid, sub, start, end, nodes, cpn = line.split("|")
        return JobRecord(int(jid), int(uid), int(sub), int(start), int(end),
                         int(nodes), int(cpn))
    return _read(path, parse, on_error)


# ---------------------------------------------------------------- app log

def write_app_log(path: str, accesses: Iterable[AppAccessRecord], *,
                  wrap=None) -> int:
    return _write(path, accesses, access_line, wrap)


def read_app_log(path: str,
                 on_error: OnError | None = None,
                 ) -> Iterator[AppAccessRecord]:
    def parse(line: str) -> AppAccessRecord:
        ts, uid, op, file_path = line.split("|", 3)
        return AppAccessRecord(int(ts), int(uid), file_path, op)
    return _read(path, parse, on_error)


# ---------------------------------------------------------------- pubs

def write_publications(path: str, pubs: Iterable[PublicationRecord], *,
                       wrap=None) -> int:
    return _write(path, pubs, publication_line, wrap)


def read_publications(path: str,
                      on_error: OnError | None = None,
                      ) -> Iterator[PublicationRecord]:
    def parse(line: str) -> PublicationRecord:
        pid, ts, cites, authors = line.split("|")
        uids = [int(u) for u in authors.split(",")] if authors else []
        return PublicationRecord(int(pid), int(ts), uids, int(cites))
    return _read(path, parse, on_error)
