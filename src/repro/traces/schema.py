"""Trace record schemas.

The paper's dataset comprises four trace families (section 4.1.1):

* the **job scheduler log** (1.37 M submissions, 2013--2016),
* the **application log** (file paths touched per application execution),
* the **user list** (13 813 anonymized users), and
* the **publication list** (1 151 publications with author lists).

These dataclasses are the in-memory form of those records; the sibling
``io`` module handles the on-disk line formats.  All timestamps are integer
epoch seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["UserRecord", "JobRecord", "AppAccessRecord", "PublicationRecord"]


@dataclass(slots=True)
class UserRecord:
    """One system user (anonymized)."""

    uid: int
    name: str
    created_ts: int

    def __post_init__(self) -> None:
        if self.uid < 0:
            raise ValueError("uid must be non-negative")


@dataclass(slots=True)
class JobRecord:
    """One job-scheduler submission.

    The paper scores each job's impact as its *core hours*: number of CPU
    cores multiplied by the job duration.
    """

    job_id: int
    uid: int
    submit_ts: int
    start_ts: int
    end_ts: int
    num_nodes: int
    cores_per_node: int = 16

    def __post_init__(self) -> None:
        if self.end_ts < self.start_ts:
            raise ValueError(f"job {self.job_id}: end_ts precedes start_ts")
        if self.start_ts < self.submit_ts:
            raise ValueError(f"job {self.job_id}: start_ts precedes submit_ts")
        if self.num_nodes < 1 or self.cores_per_node < 1:
            raise ValueError(f"job {self.job_id}: node/core counts must be >= 1")

    @property
    def num_cores(self) -> int:
        return self.num_nodes * self.cores_per_node

    @property
    def duration_seconds(self) -> int:
        return self.end_ts - self.start_ts

    def core_hours(self) -> float:
        """The operation-activity impact used throughout the evaluation."""
        return self.num_cores * self.duration_seconds / 3600.0


@dataclass(slots=True)
class AppAccessRecord:
    """One file access extracted from the application log.

    ``op`` distinguishes three record kinds:

    * ``access`` -- an application opens the path; counts as a file miss
      when the path is gone (the paper's replay semantics);
    * ``create`` -- the application writes a new file, growing the scratch
      space (optional in the emulator);
    * ``touch`` -- an atime-refresh sweep (``find ... -exec touch``), the
      FLT-gaming behaviour: it renews lifetimes of *existing* files but can
      never miss, because the sweep only visits files still on disk.
    """

    ts: int
    uid: int
    path: str
    op: str = "access"  # "access" | "create" | "touch"

    def __post_init__(self) -> None:
        if self.op not in ("access", "create", "touch"):
            raise ValueError(f"unknown op {self.op!r}")


@dataclass(slots=True)
class PublicationRecord:
    """One publication, the paper's outcome-activity source.

    The activeness score of a publication for the author at index ``i``
    (0-based) of an ``n``-author list with citation count ``c`` is
    ``(c + 1) * (n - i + 1)``  -- Eq. (8) with 1-based author rank.
    """

    pub_id: int
    ts: int
    author_uids: list[int] = field(default_factory=list)
    citations: int = 0

    def __post_init__(self) -> None:
        if self.citations < 0:
            raise ValueError("citations must be non-negative")
        if len(set(self.author_uids)) != len(self.author_uids):
            raise ValueError(f"publication {self.pub_id}: duplicate authors")

    def author_score(self, uid: int) -> float:
        """Eq. (8) impact of this publication for author ``uid``.

        Raises ``ValueError`` when ``uid`` is not an author.
        """
        n = len(self.author_uids)
        i = self.author_uids.index(uid)  # 0-based index
        # Eq. (8) uses 1-based author index: theta = n - i + 1 for i in 1..n.
        return float((self.citations + 1) * (n - (i + 1) + 1))
