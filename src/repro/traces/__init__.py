"""Trace schemas and log I/O for the four OLCF trace families."""

from .io import (
    read_app_log,
    read_jobs,
    read_publications,
    read_users,
    write_app_log,
    write_jobs,
    write_publications,
    write_users,
)
from .schema import AppAccessRecord, JobRecord, PublicationRecord, UserRecord
from .validate import (
    Issue,
    validate_app_log,
    validate_dataset,
    validate_jobs,
    validate_publications,
    validate_users,
)

__all__ = [
    "AppAccessRecord",
    "JobRecord",
    "PublicationRecord",
    "UserRecord",
    "read_app_log",
    "read_jobs",
    "read_publications",
    "read_users",
    "write_app_log",
    "write_jobs",
    "write_publications",
    "write_users",
    "Issue",
    "validate_app_log",
    "validate_dataset",
    "validate_jobs",
    "validate_publications",
    "validate_users",
]
