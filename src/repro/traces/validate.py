"""Trace validation.

Production trace pipelines are messy: clock skew between log sources,
truncated exports, users missing from the anonymized list.  These
validators run the referential and temporal checks an operator should do
before feeding traces to the activeness evaluation, returning structured
issues instead of raising -- a broken line in a two-year log should be
reported, not fatal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .schema import AppAccessRecord, JobRecord, PublicationRecord, UserRecord

__all__ = ["Issue", "validate_users", "validate_jobs", "validate_app_log",
           "validate_publications", "validate_dataset"]


@dataclass(frozen=True, slots=True)
class Issue:
    """One validation finding."""

    severity: str   # "error" | "warning"
    trace: str      # which trace family
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.trace}: {self.message}"


def _known_uid_set(users: Sequence[UserRecord]) -> set[int]:
    return {u.uid for u in users}


def validate_users(users: Sequence[UserRecord]) -> list[Issue]:
    """Duplicate uids and duplicate names."""
    issues: list[Issue] = []
    seen_uids: set[int] = set()
    seen_names: set[str] = set()
    for user in users:
        if user.uid in seen_uids:
            issues.append(Issue("error", "users",
                                f"duplicate uid {user.uid}"))
        seen_uids.add(user.uid)
        if user.name in seen_names:
            issues.append(Issue("warning", "users",
                                f"duplicate name {user.name!r}"))
        seen_names.add(user.name)
    return issues


def validate_jobs(jobs: Sequence[JobRecord],
                  users: Sequence[UserRecord] | None = None,
                  *, require_sorted: bool = True) -> list[Issue]:
    """Unknown owners, duplicate ids, submission-order violations."""
    issues: list[Issue] = []
    known = _known_uid_set(users) if users is not None else None
    seen_ids: set[int] = set()
    prev_ts: int | None = None
    for job in jobs:
        if job.job_id in seen_ids:
            issues.append(Issue("error", "jobs",
                                f"duplicate job_id {job.job_id}"))
        seen_ids.add(job.job_id)
        if known is not None and job.uid not in known:
            issues.append(Issue("error", "jobs",
                                f"job {job.job_id}: unknown uid {job.uid}"))
        if require_sorted and prev_ts is not None and job.submit_ts < prev_ts:
            issues.append(Issue("warning", "jobs",
                                f"job {job.job_id}: submit_ts out of order"))
        prev_ts = job.submit_ts
    return issues


def validate_app_log(accesses: Sequence[AppAccessRecord],
                     users: Sequence[UserRecord] | None = None,
                     *, require_sorted: bool = True) -> list[Issue]:
    """Unknown owners, relative paths, time-order violations."""
    issues: list[Issue] = []
    known = _known_uid_set(users) if users is not None else None
    prev_ts: int | None = None
    for i, rec in enumerate(accesses):
        if not rec.path.startswith("/"):
            issues.append(Issue("error", "app_log",
                                f"record {i}: relative path {rec.path!r}"))
        if known is not None and rec.uid not in known:
            issues.append(Issue("error", "app_log",
                                f"record {i}: unknown uid {rec.uid}"))
        if require_sorted and prev_ts is not None and rec.ts < prev_ts:
            issues.append(Issue("warning", "app_log",
                                f"record {i}: timestamp out of order"))
        prev_ts = rec.ts
    return issues


def validate_publications(pubs: Sequence[PublicationRecord],
                          users: Sequence[UserRecord] | None = None,
                          ) -> list[Issue]:
    """Empty author lists, unknown authors, duplicate ids."""
    issues: list[Issue] = []
    known = _known_uid_set(users) if users is not None else None
    seen_ids: set[int] = set()
    for pub in pubs:
        if pub.pub_id in seen_ids:
            issues.append(Issue("error", "publications",
                                f"duplicate pub_id {pub.pub_id}"))
        seen_ids.add(pub.pub_id)
        if not pub.author_uids:
            issues.append(Issue("error", "publications",
                                f"publication {pub.pub_id}: no authors"))
        elif known is not None:
            for uid in pub.author_uids:
                if uid not in known:
                    issues.append(Issue(
                        "error", "publications",
                        f"publication {pub.pub_id}: unknown author {uid}"))
    return issues


def validate_dataset(users: Sequence[UserRecord],
                     jobs: Sequence[JobRecord],
                     accesses: Sequence[AppAccessRecord],
                     pubs: Sequence[PublicationRecord]) -> list[Issue]:
    """All four trace families, cross-referenced against the user list."""
    issues = validate_users(users)
    issues += validate_jobs(jobs, users)
    issues += validate_app_log(accesses, users)
    issues += validate_publications(pubs, users)
    return issues
