"""Horizontally sharded fleet: ring, router, scatter/gather, rebalance.

One :class:`~repro.server.tenants.MultiTenantService` process tops out
at a few hundred thousand events per second; the paper's target systems
(Titan's ~1,100 project owners were a *sample* of multi-million-user
centers) need horizontal room.  The unit of partitioning that keeps the
emulation exact is the **user**: classification, per-user activeness
series, and FLT purge verdicts never couple users, so a fleet of N
workers each owning a disjoint user slice reproduces the single-process
answer as a plain union -- provided routing is consistent, sequencing
survives the extra hop, and rebalances only happen at day boundaries
(the only quiescent instant of the engine).

Pieces, front to back:

* :class:`HashRing` -- consistent hashing with explicit ring points
  (``blake2b(name#i)``), user keys placed by ``splitmix64(uid)``.
  Adding or removing a shard moves ~K/N keys; :meth:`HashRing.split`
  reassigns alternating points of one donor so *only donor keys move*.
* :class:`ShardRouter` -- a full :class:`SocketListener` front (same
  auth/TLS/sequencing/backpressure as a single server) whose sources
  are drained by pump threads instead of the merge.  Rows are
  classified per user (publications are duplicated to every shard
  owning a co-author; the worker-side ``owned_filter`` keeps foreign
  authors out of that shard's classification) and forwarded over the
  normal v1/v2 wire protocol on per-``(source, worker)``
  :class:`ShardLane`\\ s with deterministic forwarded sequence numbers.
* Exactly-once across the hop: each lane retains sent items until the
  owning worker reports them *durable* (its last checkpoint's ingest
  cursors, polled off ``admin health``).  A worker kill -9 costs a
  reconnect and a resend of the retained tail; the worker's edge
  dedupe drops anything it already holds.
* :class:`FleetAdmin` -- one admin socket for the fleet: ``status`` /
  ``health`` / ``metrics`` / ``activity`` / ``query`` fan out to every
  worker and merge (per-shard trigger-latency and per-tenant miss
  tails stay visible per shard), ``GET /metrics`` renders a
  fleet-level Prometheus exposition with ``shard`` labels, and
  ``shards`` / ``shards-rebalance`` drive topology.
* :class:`ShardFleet` -- per-worker crash-loop
  :class:`~repro.server.supervisor.Supervisor`\\ s, the durability
  polling loop, the day-boundary rebalance protocol (gate ->
  ``shard-split`` -> ring epoch flip -> clone-seeded worker), and the
  result merge that reconstructs per-tenant
  :class:`~repro.emulation.emulator.EmulationResult`\\ s bit-identical
  to a single-process run.

Rebalance protocol (see DESIGN.md section 13 for the proof sketch):
pick a cut boundary ``B`` strictly above both the router watermark and
the donor's next boundary; **gate** donor-destined rows with
``ts >= cut`` at the router; ask the donor (admin ``shard-split``) to
clone itself into the new worker's checkpoint directory at boundary
``B`` and then restrict itself to the keys it still owns under the
post-split ring; flip the ring epoch (rows route by ``(uid, ts)``,
so replayed gated rows and everything after land on the new owner);
spawn the new worker with ``--resume`` once the clone appears.  The
clone's manifest carries ``shard_seed_pending``: the resuming worker
restricts itself to its own keys, resets its additive measurement
ledgers (the donor keeps the pre-cut history), and starts a fresh lane
sequence domain.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import queue
import socket
import subprocess
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.classification import UserClass
from ..core.report import RetentionReport
from ..emulation.emulator import EmulationResult
from ..emulation.metrics import DailyMetrics
from ..stream.batch import (KIND_ACC_CODE, KIND_JOB_CODE, KIND_PUB_CODE,
                            EventBatch)
from ..stream.checkpoint import reports_from_jsonable
from ..stream.events import EVENT_PUBLICATION, StreamEvent
from ..vfs.file_meta import DAY_SECONDS
from .admin import PROMETHEUS_CONTENT_TYPE, admin_request
from .ingest import _END, DEFAULT_SOURCES, PublishRefused, SocketListener
from .metrics import Counter, tail_stats
from .protocol import (BATCH_MAX_FRAME_BYTES, CAP_BATCH, CAP_ZLIB,
                       PROTOCOL_V2, FrameError, FrameReader, connect_socket,
                       create_listener, encode_batch, encode_batch_frame,
                       encode_event, format_address, parse_address,
                       write_frame)
from .supervisor import BackoffPolicy, Supervisor

__all__ = ["HashRing", "splitmix64", "ShardLane", "ShardRouter",
           "FleetAdmin", "ShardFleet", "WorkerSpec",
           "batch_worker_masks", "event_worker_indices",
           "merge_tenant_results"]


# ---------------------------------------------------------------------------
# the ring


_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_M2 = np.uint64(0x94D049BB133111EB)


def splitmix64(values) -> np.ndarray:
    """Vectorized splitmix64 finalizer: the uid -> ring-key hash.

    Stable across processes and Python versions (never ``hash()``),
    cheap enough to run per row on the routing hot path.
    """
    z = np.atleast_1d(np.asarray(values)).astype(np.uint64)
    with np.errstate(over="ignore"):
        z = z + _SM_GAMMA
        z = (z ^ (z >> np.uint64(30))) * _SM_M1
        z = (z ^ (z >> np.uint64(27))) * _SM_M2
        return z ^ (z >> np.uint64(31))


class HashRing:
    """Consistent-hash ring over named shards.

    Every shard owns ``replicas`` explicit ring points derived from
    ``blake2b("<name>#<i>")``; a uid belongs to the owner of the first
    point at or clockwise-after ``splitmix64(uid)``.  Placement is a
    pure function of the *point assignment*, which is why the ring
    serializes the assignment explicitly: after :meth:`split` the
    points of the donor are shared with the new shard in a way no
    name-derived reconstruction would reproduce.
    """

    def __init__(self, shards: Iterable[str] = (), *, replicas: int = 64,
                 _assignment: Mapping[int, str] | None = None) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._assign: dict[int, str] = dict(_assignment or {})
        for name in shards:
            self.add(name)
        self._rebuild()

    # -- construction ---------------------------------------------------

    @staticmethod
    def _point(name: str, i: int) -> int:
        digest = hashlib.blake2b(f"{name}#{i}".encode("utf-8"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _rebuild(self) -> None:
        items = sorted(self._assign.items())
        self._points = np.asarray([p for p, _ in items], dtype=np.uint64)
        self._point_owner = [o for _, o in items]
        self.shards: list[str] = sorted(set(self._point_owner))
        index = {name: i for i, name in enumerate(self.shards)}
        self._owner_idx = np.asarray(
            [index[o] for o in self._point_owner], dtype=np.int64)

    def add(self, name: str) -> None:
        if not name:
            raise ValueError("shard names must be non-empty")
        if any(o == name for o in self._assign.values()):
            raise ValueError(f"shard {name!r} already on the ring")
        for i in range(self.replicas):
            p = self._point(name, i)
            while p in self._assign:   # 64-bit collision: deterministic probe
                p = (p + 1) % (1 << 64)
            self._assign[p] = name
        self._rebuild()

    def remove(self, name: str) -> None:
        points = [p for p, o in self._assign.items() if o == name]
        if not points:
            raise ValueError(f"shard {name!r} is not on the ring")
        if len(set(self._assign.values())) == 1:
            raise ValueError("cannot remove the last shard")
        for p in points:
            del self._assign[p]
        self._rebuild()

    def split(self, donor: str, new_name: str) -> "HashRing":
        """A new ring where ``new_name`` takes alternate points of
        ``donor`` -- every moved key was a donor key, nothing else
        shifts.  ``self`` is unchanged (rings are epoch values)."""
        donor_points = sorted(p for p, o in self._assign.items()
                              if o == donor)
        if not donor_points:
            raise ValueError(f"shard {donor!r} is not on the ring")
        if any(o == new_name for o in self._assign.values()):
            raise ValueError(f"shard {new_name!r} already on the ring")
        if len(donor_points) < 2:
            raise ValueError(f"shard {donor!r} has too few points to split")
        assignment = dict(self._assign)
        for p in donor_points[1::2]:
            assignment[p] = new_name
        return HashRing(replicas=self.replicas, _assignment=assignment)

    # -- placement ------------------------------------------------------

    def owner_indices(self, uids) -> np.ndarray:
        """Index into :attr:`shards` of each uid's owner."""
        h = splitmix64(uids)
        slot = np.searchsorted(self._points, h, side="left")
        slot[slot == self._points.size] = 0      # clockwise wraparound
        return self._owner_idx[slot]

    def owner(self, uid: int) -> str:
        return self.shards[int(self.owner_indices([int(uid)])[0])]

    def member_mask(self, name: str, uids) -> np.ndarray:
        """Bool mask of the uids owned by shard ``name``."""
        try:
            idx = self.shards.index(name)
        except ValueError:
            raise ValueError(f"shard {name!r} is not on the ring") from None
        return self.owner_indices(np.asarray(uids, dtype=np.int64)) == idx

    def keep_mask(self, name: str) -> Callable[[np.ndarray], np.ndarray]:
        """``uids array -> bool mask`` closure for
        :meth:`MultiTenantService.restrict_users`."""
        return lambda uids: self.member_mask(name, uids)

    def uid_filter(self, name: str) -> Callable[[int], bool]:
        """Scalar membership test for snapshot loading."""
        idx = self.shards.index(name)

        def check(uid: int) -> bool:
            return int(self.owner_indices([int(uid)])[0]) == idx

        return check

    def owned_filter(self, name: str) -> Callable[[dict], dict]:
        """Restrict an activeness evaluation to this shard's users.

        Publication rows are duplicated to co-author shards so scores
        fold identically everywhere, but only the owner may *classify*
        a user -- otherwise a co-author would be counted (and purged)
        on several shards at once.
        """

        def filt(result: dict) -> dict:
            if not result:
                return result
            uids = np.fromiter(result.keys(), np.int64, len(result))
            keep = self.member_mask(name, uids)
            if keep.all():
                return result
            kept = set(uids[keep].tolist())
            return {u: v for u, v in result.items() if u in kept}

        return filt

    # -- serialization --------------------------------------------------

    def to_jsonable(self) -> dict:
        return {"replicas": self.replicas,
                "points": [[int(p), o]
                           for p, o in sorted(self._assign.items())]}

    @classmethod
    def from_jsonable(cls, data: Mapping) -> "HashRing":
        return cls(replicas=int(data.get("replicas", 64)),
                   _assignment={int(p): str(o)
                                for p, o in data["points"]})

    def digest(self) -> str:
        text = json.dumps(self.to_jsonable(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> dict:
        counts = {name: 0 for name in self.shards}
        for o in self._point_owner:
            counts[o] += 1
        return {"shards": list(self.shards), "replicas": self.replicas,
                "points": int(self._points.size),
                "points_per_shard": counts, "digest": self.digest()}


# ---------------------------------------------------------------------------
# row classification


def batch_worker_masks(batch: EventBatch, ring: HashRing,
                       order: Sequence[str],
                       remap: np.ndarray | None = None) -> np.ndarray:
    """``(len(order), batch.n)`` bool matrix: which rows each worker gets.

    Jobs and accesses go to their uid's owner; a publication row is
    duplicated to *every* worker owning at least one of its authors
    (each needs the row to fold that author's outcome score).  ``remap``
    translates ring shard indices to ``order`` positions and may be
    precomputed by the caller.
    """
    n = batch.n
    masks = np.zeros((len(order), n), dtype=bool)
    if n == 0:
        return masks
    if remap is None:
        pos = {name: i for i, name in enumerate(order)}
        remap = np.asarray([pos[s] for s in ring.shards], dtype=np.int64)
    kpos = batch.kpos()
    kinds = batch.kinds
    jrows = np.flatnonzero(kinds == KIND_JOB_CODE)
    if jrows.size:
        owners = remap[ring.owner_indices(batch.job_uid)]
        masks[owners[kpos[jrows]], jrows] = True
    arows = np.flatnonzero(kinds == KIND_ACC_CODE)
    if arows.size:
        owners = remap[ring.owner_indices(batch.acc_uid)]
        masks[owners[kpos[arows]], arows] = True
    prows = np.flatnonzero(kinds == KIND_PUB_CODE)
    if prows.size:
        if batch.pub_auth.size:
            off = batch.pub_auth_off
            lens = np.diff(off)
            owners = remap[ring.owner_indices(batch.pub_auth)]
            starts = np.minimum(off[:-1], max(owners.size - 1, 0))
            k = kpos[prows]
            for wi in range(len(order)):
                seg = np.logical_or.reduceat(owners == wi, starts)
                seg[lens == 0] = False
                hit = seg[k]
                if hit.any():
                    masks[wi, prows[hit]] = True
        # An author-less publication row folds into no user's score,
        # but a single-process serve still consumes it -- route it to
        # uid 0's ring owner so fleet cursors and row counters match.
        unrouted = ~masks[:, prows].any(axis=0)
        if unrouted.any():
            fallback = int(remap[ring.owner_indices(
                np.zeros(1, dtype=np.int64))[0]])
            masks[fallback, prows[unrouted]] = True
    return masks


def event_worker_indices(event: StreamEvent, ring: HashRing,
                         order: Sequence[str]) -> list[int]:
    """Positions in ``order`` of the workers that must see ``event``."""
    payload = event.payload
    if event.kind == EVENT_PUBLICATION:
        # Author-less publications route to uid 0's owner (no score to
        # fold, but consumption must match a single-process serve; same
        # fallback as batch_worker_masks).
        uids = list(payload.author_uids) or [0]
    else:
        uids = [payload.uid]
    pos = {name: i for i, name in enumerate(order)}
    owners = ring.owner_indices(np.asarray(uids, dtype=np.int64))
    return sorted({pos[ring.shards[int(i)]] for i in owners})


# ---------------------------------------------------------------------------
# lanes: one sequenced producer per (source, worker)


class ShardLane:
    """One forwarding producer: router -> one worker, one source.

    The lane owns a deterministic per-lane sequence domain: the k-th
    row routed to this worker from this source is always wire seq ``k``
    (routing is a pure function of ``(uid, ts, ring epochs)``), which
    is what lets a restarted worker's edge dedupe make the resend of
    the retained tail exactly-once.  Items stay in ``_retained`` until
    :meth:`trim` -- fed by the fleet's durability poll of the worker's
    checkpointed ingest cursors -- releases them; a lane built with
    ``retain=False`` (benchmarks without checkpoints, where the durable
    cursor would never advance) keeps nothing.
    """

    def __init__(self, source: str, worker: str, address: str, *,
                 auth_token: str | None = None, compress: bool = False,
                 retain: bool = True,
                 frame_cap: int = BATCH_MAX_FRAME_BYTES,
                 connect_timeout: float = 10.0,
                 retry_interval: float = 0.2, retry_cap: float = 2.0,
                 queue_size: int = 512) -> None:
        self.source = source
        self.worker = worker
        self.address = address
        self.session = f"router:{source}->{worker}"
        self.auth_token = auth_token
        self.compress = compress
        self.retain = retain
        self.frame_cap = int(frame_cap)
        self.connect_timeout = connect_timeout
        self.retry_interval = retry_interval
        self.retry_cap = retry_cap
        self.rows_submitted = 0          # pump thread only
        self.rows_sent = Counter()
        self.rows_resent = Counter()
        self.connects = Counter()
        self.last_error: str | None = None
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._retained: deque = deque()  # (first_seq, n_rows, item)
        self._rlock = threading.Lock()
        self._next_seq = 1
        self._end_pending = False
        self._finish_called = False
        self.end_acked = threading.Event()
        self._reopen = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lane:{source}->{worker}", daemon=True)
        self._thread.start()

    # -- pump side ------------------------------------------------------

    def submit(self, item, n_rows: int) -> None:
        """Enqueue one batch/event; blocks when the lane is backlogged
        (backpressure flows to the front listener's queues)."""
        first = self._next_seq
        self._next_seq += n_rows
        self.rows_submitted += n_rows
        self._queue.put((first, n_rows, item))

    def finish(self) -> None:
        """No more rows will ever be submitted; send ``end``."""
        if self._finish_called:
            return
        self._finish_called = True
        self._queue.put(None)

    # -- fleet side -----------------------------------------------------

    def trim(self, durable_seq: int) -> int:
        """Drop retained items the worker holds durably; returns rows
        released."""
        released = 0
        with self._rlock:
            while self._retained:
                first, n_rows, _item = self._retained[0]
                if first + n_rows - 1 > durable_seq:
                    break
                self._retained.popleft()
                released += n_rows
        return released

    def retained_rows(self) -> int:
        with self._rlock:
            return sum(n for _f, n, _i in self._retained)

    def reopen(self) -> None:
        """The worker restarted: reconnect, resend the retained tail
        (and the ``end``, if it was already delivered)."""
        self._reopen.set()

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: float | None = None) -> bool:
        return self.end_acked.wait(timeout)

    # -- sender thread --------------------------------------------------

    def _run(self) -> None:
        delay = self.retry_interval
        while not self._stop.is_set():
            try:
                self._session_once()
                delay = self.retry_interval
                # Clean end-of-session: idle until the fleet reopens the
                # lane (worker restarted before our rows were durable).
                while not self._stop.is_set():
                    if self._reopen.wait(0.2):
                        self._reopen.clear()
                        break
            except (OSError, FrameError, PublishRefused) as exc:
                if isinstance(exc, PublishRefused) and not exc.retryable:
                    self.last_error = f"fatal: {exc}"
                    return
                self.last_error = f"{type(exc).__name__}: {exc}"
                if self._stop.wait(delay):
                    return
                delay = min(delay * 2, self.retry_cap)

    def _session_once(self) -> None:
        sock = connect_socket(self.address, timeout=self.connect_timeout)
        try:
            reader = FrameReader(sock)
            hello = {"type": "hello", "source": self.source,
                     "producer": f"shard-router:{self.worker}",
                     "session": self.session, "protocol": PROTOCOL_V2,
                     "capabilities": ([CAP_BATCH, CAP_ZLIB]
                                      if self.compress else [CAP_BATCH]),
                     "max_frame_bytes": self.frame_cap}
            if self.auth_token is not None:
                hello["auth"] = self.auth_token
            write_frame(sock, hello)
            ack = reader.read_message()
            if ack is None or ack.get("type") != "ok":
                raise PublishRefused(
                    f"worker {self.worker!r} refused lane "
                    f"{self.session!r}: "
                    f"{(ack or {}).get('reason', 'connection closed')}")
            try:
                cap = int(ack.get("max_frame_bytes", self.frame_cap))
            except (TypeError, ValueError):
                cap = self.frame_cap
            use_zlib = self.compress and CAP_ZLIB in (
                ack.get("capabilities") or ())
            sock.settimeout(None)
            self.connects += 1
            with self._rlock:
                backlog = list(self._retained)
            for entry in backlog:
                self._send(sock, entry, cap, use_zlib)
                self.rows_resent += entry[1]
            if self._end_pending:
                self._send_end(sock, reader)
                return
            while True:
                try:
                    entry = self._queue.get(timeout=0.2)
                except queue.Empty:
                    if self._stop.is_set():
                        return
                    continue
                if entry is None:
                    self._end_pending = True
                    self._send_end(sock, reader)
                    return
                with self._rlock:
                    if self.retain:
                        self._retained.append(entry)
                self._send(sock, entry, cap, use_zlib)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _send(self, sock: socket.socket, entry, cap: int,
              use_zlib: bool) -> None:
        first_seq, n_rows, item = entry
        if type(item) is EventBatch:
            sock.sendall(encode_batch_frame(
                encode_batch(item, compress=use_zlib, seq=first_seq), cap))
        else:
            frame = encode_event(item)
            frame["seq"] = first_seq
            write_frame(sock, frame)
        self.rows_sent += n_rows

    def _send_end(self, sock: socket.socket, reader: FrameReader) -> None:
        write_frame(sock, {"type": "end"})
        ack = reader.read_message()
        if ack is None or ack.get("type") != "ok":
            raise PublishRefused(
                f"worker {self.worker!r} did not ack end of lane "
                f"{self.session!r}: "
                f"{(ack or {}).get('reason', 'connection closed')}")
        self.end_acked.set()

    def describe(self) -> dict:
        return {"worker": self.worker, "source": self.source,
                "rows_submitted": self.rows_submitted,
                "rows_sent": int(self.rows_sent),
                "rows_resent": int(self.rows_resent),
                "retained_rows": self.retained_rows(),
                "connects": int(self.connects),
                "end_acked": self.end_acked.is_set(),
                "last_error": self.last_error}


# ---------------------------------------------------------------------------
# the router


class ShardRouter:
    """The fleet's ingest front: listener in, per-worker lanes out.

    Producers speak to the router exactly as they would to a single
    server (same hello/auth/TLS, same v1 and v2 frames, same
    exactly-once edge sequencing).  Pump threads -- one per source, so
    per-source admission order is preserved -- drain the front queues
    and classify every row by owning shard under the *epoch* that
    covers its timestamp: a rebalance installs ``(cut_ts, new_ring)``
    and rows route by ``(uid, ts)``, which is what makes the flip exact
    at a day boundary instead of racy at a wall-clock instant.
    """

    def __init__(self, address: str, workers: Mapping[str, str],
                 ring: HashRing, *,
                 expected: Mapping[str, int] | Iterable[str] | None = None,
                 queue_size: int = 10_000,
                 auth_token: str | None = None,
                 worker_auth_token: str | None = None,
                 ssl_context=None, compress: bool = False,
                 retain: bool = True, lane_queue_size: int = 512,
                 max_connections: int | None = None,
                 write_deadline: float | None = 30.0) -> None:
        if not workers:
            raise ValueError("a router needs at least one worker")
        missing = [s for s in ring.shards if s not in workers]
        if missing:
            raise ValueError(f"ring shards without workers: {missing}")
        self.ring = ring
        self._order: list[str] = list(workers)
        self._addresses: dict[str, str] = dict(workers)
        self._worker_auth_token = worker_auth_token
        self._compress = compress
        self._retain = retain
        self._lane_queue_size = lane_queue_size
        #: Epochs ascending by cut; the first covers all history.
        self._epochs: list[tuple[int, HashRing]] = [(-(1 << 62), ring)]
        self._remaps: dict[int, np.ndarray] = {}
        self._gate: dict | None = None
        #: A rebalance-born worker between epoch flip and process start:
        #: its rows buffer here (unbounded) instead of in bounded lanes,
        #: because backpressure against a worker that cannot exist yet
        #: would stall the pumps -- and with them the donor rows the
        #: clone checkpoint is waiting on.
        self._pending: dict | None = None
        self._lock = threading.RLock()
        self._source_ended: set[str] = set()
        self.rows_routed: dict[str, int] = {w: 0 for w in self._order}
        self.routing_errors = Counter()
        self.watermarks: dict[str, int] = {}
        self.listener = SocketListener(
            address, expected=expected or DEFAULT_SOURCES,
            queue_size=queue_size, auth_token=auth_token,
            ssl_context=ssl_context, max_connections=max_connections,
            write_deadline=write_deadline)
        self.address = self.listener.address
        self._lanes: dict[tuple[str, str], ShardLane] = {}
        self._source_names = [s.name for s in self.listener.sources()]
        for name in self._source_names:
            for worker in self._order:
                self._lanes[(name, worker)] = self._make_lane(name, worker)
        self._pumps = [threading.Thread(target=self._pump, args=(src,),
                                        name=f"pump:{src.name}", daemon=True)
                       for src in self.listener.sources()]
        for t in self._pumps:
            t.start()

    def _make_lane(self, source: str, worker: str) -> ShardLane:
        return ShardLane(source, worker, self._addresses[worker],
                         auth_token=self._worker_auth_token,
                         compress=self._compress, retain=self._retain,
                         queue_size=self._lane_queue_size)

    def lane(self, source: str, worker: str) -> ShardLane:
        return self._lanes[(source, worker)]

    @property
    def workers(self) -> list[str]:
        return list(self._order)

    # -- pumps ----------------------------------------------------------

    def _pump(self, source) -> None:
        q = source.queue
        while True:
            entry = q.get()
            if entry is _END:
                with self._lock:
                    self._source_ended.add(source.name)
                    for worker in self._order:
                        lane = self._lanes.get((source.name, worker))
                        if lane is not None:   # pending workers: later
                            lane.finish()
                return
            _seq, item = entry
            with self._lock:
                try:
                    if type(item) is EventBatch:
                        self._route_batch(source.name, item)
                    else:
                        self._route_event(source.name, item)
                except Exception as exc:  # noqa: BLE001 -- keep pumping
                    self.routing_errors += 1
                    self._last_routing_error = f"{type(exc).__name__}: {exc}"

    def _remap(self, ring: HashRing) -> np.ndarray:
        cached = self._remaps.get(id(ring))
        if cached is None:
            pos = {name: i for i, name in enumerate(self._order)}
            cached = np.asarray([pos[s] for s in ring.shards],
                                dtype=np.int64)
            self._remaps[id(ring)] = cached
        return cached

    def _segments(self, batch: EventBatch) -> list[tuple[HashRing,
                                                         EventBatch]]:
        """Split a batch into per-epoch slices (usually a no-op)."""
        if len(self._epochs) == 1:
            return [(self._epochs[0][1], batch)]
        segs: list[tuple[HashRing, EventBatch]] = []
        rest = batch
        for i, (_cut, ring) in enumerate(self._epochs):
            if i + 1 == len(self._epochs):
                if rest.n:
                    segs.append((ring, rest))
                break
            nxt = self._epochs[i + 1][0]
            pre, rest = rest.split_at_ts(nxt)
            if pre.n:
                segs.append((ring, pre))
            if rest.n == 0:
                break
        return segs

    def _route_batch(self, source: str, batch: EventBatch) -> None:
        if batch.n == 0:
            return
        self.watermarks[source] = max(self.watermarks.get(source, 0),
                                      int(batch.ts[-1]))
        gate = self._gate
        for ring, seg in self._segments(batch):
            masks = batch_worker_masks(seg, ring, self._order,
                                       self._remap(ring))
            for wi, name in enumerate(self._order):
                mask = masks[wi]
                count = int(mask.sum())
                if count == 0:
                    continue
                sub = seg if count == seg.n else seg.subset(mask)
                if (gate is not None and name == gate["donor"]
                        and int(sub.ts[-1]) >= gate["cut_ts"]):
                    pre, post = sub.split_at_ts(gate["cut_ts"])
                    if pre.n:
                        self._submit(source, name, pre, pre.n)
                    gate["buffer"].append((source, post))
                    continue
                self._submit(source, name, sub, count)

    def _route_event(self, source: str, event: StreamEvent) -> None:
        self.watermarks[source] = max(self.watermarks.get(source, 0),
                                      int(event.ts))
        ring = self._epochs[0][1]
        for cut, epoch_ring in self._epochs:
            if event.ts >= cut:
                ring = epoch_ring
        gate = self._gate
        for wi in event_worker_indices(event, ring, self._order):
            name = self._order[wi]
            if (gate is not None and name == gate["donor"]
                    and event.ts >= gate["cut_ts"]):
                gate["buffer"].append((source, event))
                continue
            self._submit(source, name, event, 1)

    def _submit(self, source: str, worker: str, item, n_rows: int) -> None:
        pending = self._pending
        if pending is not None and worker == pending["worker"]:
            pending["buffer"].append((source, item, n_rows))
            return
        self._lanes[(source, worker)].submit(item, n_rows)
        self.rows_routed[worker] += n_rows

    # -- rebalance hooks ------------------------------------------------

    @property
    def max_watermark(self) -> int:
        with self._lock:
            return max(self.watermarks.values(), default=0)

    def begin_rebalance(self, donor: str, cut_ts: int) -> None:
        """Install the gate: donor-destined rows with ``ts >= cut_ts``
        are buffered until the donor has the split request queued."""
        with self._lock:
            if self._gate is not None:
                raise RuntimeError("a rebalance is already in progress")
            if donor not in self._order:
                raise ValueError(f"unknown worker {donor!r}")
            wm = max(self.watermarks.values(), default=0)
            if wm >= cut_ts:
                raise ValueError(
                    f"cut ts {cut_ts} is not ahead of the routed "
                    f"watermark {wm}")
            self._gate = {"donor": donor, "cut_ts": int(cut_ts),
                          "buffer": []}

    def commit_rebalance(self, new_ring: HashRing, cut_ts: int,
                         new_worker: str, new_address: str) -> None:
        """Flip the epoch and replay the gated rows under the new ring.

        The new worker's rows keep buffering (``_pending``) until
        :meth:`activate_worker` -- its process only exists once the
        donor's boundary clone has been written and spawned, and
        bounded-lane backpressure before that point would deadlock the
        pumps against the very donor progress the clone needs.
        """
        with self._lock:
            gate = self._gate
            if gate is None:
                raise RuntimeError("no rebalance in progress")
            if new_worker not in self._order:
                self._order.append(new_worker)
                self._addresses[new_worker] = new_address
                self.rows_routed[new_worker] = 0
                self._remaps.clear()   # order grew; remaps are stale
                self._pending = {"worker": new_worker, "buffer": []}
            self._epochs.append((int(cut_ts), new_ring))
            self.ring = new_ring
            self._gate = None
            for source, item in gate["buffer"]:
                if type(item) is EventBatch:
                    self._route_batch(source, item)
                else:
                    self._route_event(source, item)

    def activate_worker(self, name: str) -> int:
        """Wire a rebalance-born worker's lanes once its process is up,
        replaying everything buffered since the epoch flip.  Returns the
        replayed row count."""
        with self._lock:
            pending = self._pending
            if pending is None or pending["worker"] != name:
                raise RuntimeError(f"worker {name!r} is not pending "
                                   f"activation")
            for source in self._source_names:
                self._lanes[(source, name)] = self._make_lane(source, name)
            self._pending = None
            replayed = 0
            for source, item, n_rows in pending["buffer"]:
                self._submit(source, name, item, n_rows)
                replayed += n_rows
            for source in self._source_ended:
                self._lanes[(source, name)].finish()
            return replayed

    def abort_rebalance(self) -> None:
        with self._lock:
            gate = self._gate
            if gate is None:
                return
            self._gate = None
            for source, item in gate["buffer"]:
                if type(item) is EventBatch:
                    self._route_batch(source, item)
                else:
                    self._route_event(source, item)

    # -- fleet hooks ----------------------------------------------------

    def trim(self, worker: str, cursors: Mapping[str, int]) -> int:
        released = 0
        for source, seq in cursors.items():
            lane = self._lanes.get((source, worker))
            if lane is not None:
                released += lane.trim(int(seq))
        return released

    def reopen_worker(self, worker: str) -> None:
        for source in self._source_names:
            lane = self._lanes.get((source, worker))
            if lane is not None:
                lane.reopen()

    def join(self, timeout: float | None = None) -> bool:
        """Wait until every lane's ``end`` has been acked."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for lane in list(self._lanes.values()):
            rem = (None if deadline is None
                   else max(0.0, deadline - time.monotonic()))
            if not lane.join(rem):
                return False
        return True

    def close(self) -> None:
        self.listener.close()
        for t in self._pumps:
            t.join(timeout=5.0)
        for lane in self._lanes.values():
            lane.stop()

    def describe(self) -> dict:
        with self._lock:
            epochs = [{"cut_ts": int(cut) if cut > -(1 << 61) else None,
                       "shards": list(ring.shards),
                       "digest": ring.digest()}
                      for cut, ring in self._epochs]
            gate = None
            if self._gate is not None:
                gate = {"donor": self._gate["donor"],
                        "cut_ts": self._gate["cut_ts"],
                        "buffered": len(self._gate["buffer"])}
            pending = None
            if self._pending is not None:
                pending = {"worker": self._pending["worker"],
                           "buffered": len(self._pending["buffer"])}
            return {
                "address": self.address,
                "workers": list(self._order),
                "rows_routed": dict(self.rows_routed),
                "routing_errors": int(self.routing_errors),
                "watermarks": dict(self.watermarks),
                "epochs": epochs,
                "gate": gate,
                "pending_worker": pending,
                "listener": self.listener.describe(),
                "lanes": {f"{s}->{w}": lane.describe()
                          for (s, w), lane in self._lanes.items()},
            }


# ---------------------------------------------------------------------------
# the scatter/gather admin plane


class FleetAdmin:
    """One admin socket for the whole fleet.

    Speaks the same dual protocol as a worker's
    :class:`~repro.server.admin.AdminServer` (JSON frames + HTTP ``GET
    /metrics``), but every read fans out to all worker admin planes in
    parallel and merges.  Fleet-level invariants (``healthy`` only when
    every shard answers healthy, events/s as the sum) live here; the
    per-shard detail -- crucially the TARE-style trigger-latency and
    per-tenant miss tails -- stays keyed by shard so a hot shard cannot
    hide behind a fleet mean.
    """

    def __init__(self, address: str, fleet: "ShardFleet", *,
                 gather_timeout: float = 5.0) -> None:
        self.fleet = fleet
        self.gather_timeout = gather_timeout
        self.requests = Counter()
        self.errors = Counter()
        self.http_requests = Counter()
        self.closed = False
        self._started = time.monotonic()
        self._sock = create_listener(address)
        self.address = format_address(parse_address(address))
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-admin", daemon=True)
        self._accept_thread.start()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FleetAdmin":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- plumbing (mirrors AdminServer's dual-protocol socket) ----------

    def _accept_loop(self) -> None:
        while not self.closed:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            threading.Thread(target=self._serve_connection, args=(conn,),
                             daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            try:
                head = conn.recv(1, socket.MSG_PEEK)
            except OSError:
                return
            if head in (b"G", b"H"):
                self._serve_http(conn)
                return
            reader = FrameReader(conn)
            try:
                while True:
                    try:
                        request = reader.read()
                    except FrameError as exc:
                        write_frame(conn, {"ok": False,
                                           "error": f"bad frame: {exc}"})
                        return
                    if request is None:
                        return
                    self.requests += 1
                    try:
                        response = self.handle(request)
                    except Exception as exc:  # noqa: BLE001 -- must answer
                        self.errors += 1
                        response = {"ok": False,
                                    "error": f"{type(exc).__name__}: {exc}"}
                    write_frame(conn, response)
            except OSError:
                pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _serve_http(self, conn: socket.socket) -> None:
        self.requests += 1
        self.http_requests += 1
        try:
            conn.settimeout(10.0)
            data = b""
            while b"\r\n\r\n" not in data and b"\n\n" not in data:
                chunk = conn.recv(4096)
                if not chunk:
                    break
                data += chunk
                if len(data) > 65536:
                    break
            line = data.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
            parts = line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else "/"
            if method not in ("GET", "HEAD"):
                self._http_response(conn, "405 Method Not Allowed",
                                    "only GET is served here\n")
                return
            if path.split("?", 1)[0] != "/metrics":
                self.errors += 1
                self._http_response(conn, "404 Not Found",
                                    "try GET /metrics\n")
                return
            body = self.render_metrics()
            self._http_response(conn, "200 OK", body,
                                content_type=PROMETHEUS_CONTENT_TYPE,
                                head_only=(method == "HEAD"))
        except Exception as exc:  # noqa: BLE001 -- must answer
            self.errors += 1
            try:
                self._http_response(conn, "500 Internal Server Error",
                                    f"{type(exc).__name__}: {exc}\n")
            except OSError:
                pass

    @staticmethod
    def _http_response(conn: socket.socket, status: str, body: str,
                       content_type: str = "text/plain; charset=utf-8",
                       head_only: bool = False) -> None:
        payload = body.encode("utf-8")
        header = (f"HTTP/1.0 {status}\r\n"
                  f"Content-Type: {content_type}\r\n"
                  f"Content-Length: {len(payload)}\r\n"
                  f"Connection: close\r\n\r\n").encode("latin-1")
        try:
            conn.sendall(header if head_only else header + payload)
        except OSError:
            pass

    # -- scatter/gather -------------------------------------------------

    def _gather(self, request: dict) -> dict[str, dict]:
        """Fan ``request`` to every worker admin plane, in parallel."""
        results: dict[str, dict] = {}
        addresses = self.fleet.admin_addresses()

        def one(name: str, address: str) -> None:
            try:
                results[name] = admin_request(address, request,
                                              timeout=self.gather_timeout)
            except Exception as exc:  # noqa: BLE001 -- a down shard is data
                results[name] = {"ok": False,
                                 "error": f"{type(exc).__name__}: {exc}"}

        threads = [threading.Thread(target=one, args=item, daemon=True)
                   for item in addresses.items()]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results

    # -- dispatch -------------------------------------------------------

    def handle(self, request: dict) -> dict:
        cmd = request.get("cmd")
        handler = {
            "status": self._cmd_status,
            "health": self._cmd_health,
            "metrics": self._cmd_metrics,
            "activity": self._cmd_activity,
            "tenants": self._cmd_tenants,
            "query": self._cmd_query,
            "export": self._cmd_export,
            "shards": self._cmd_shards,
            "shards-rebalance": self._cmd_rebalance,
        }.get(cmd)
        if handler is None:
            self.errors += 1
            return {"ok": False, "error": f"unknown command {cmd!r}"}
        return handler(request)

    def _cmd_status(self, request: dict) -> dict:
        return {"ok": True, "fleet": True,
                "uptime": time.monotonic() - self._started,
                "workers": self.fleet.worker_names(),
                "router": self.fleet.router.describe(),
                "rebalances": self.fleet.rebalance_log(),
                "shards": self._gather({"cmd": "status"})}

    def _cmd_health(self, request: dict) -> dict:
        shards = self._gather({"cmd": "health"})
        up = {name: bool(r.get("ok")) for name, r in shards.items()}
        healthy = all(r.get("ok") and r.get("healthy")
                      for r in shards.values())
        return {"ok": True, "fleet": True,
                "healthy": healthy and bool(shards),
                "up": up,
                "cursor": sum(int(r.get("cursor", 0))
                              for r in shards.values() if r.get("ok")),
                "shards": shards}

    def _cmd_metrics(self, request: dict) -> dict:
        shards = self._gather({"cmd": "metrics"})
        ok = {n: r for n, r in shards.items() if r.get("ok")}
        router = self.fleet.router
        out = {
            "ok": True, "fleet": True,
            "cursor": sum(int(r.get("cursor", 0)) for r in ok.values()),
            "events_per_second": sum(float(r.get("events_per_second", 0.0))
                                     for r in ok.values()),
            "rows_routed": dict(router.rows_routed),
            "router_front": router.listener.describe(),
            # Per-shard TARE tails, never averaged away.
            "trigger_latency": {n: r.get("trigger_latency", {"count": 0})
                                for n, r in ok.items()},
            "miss_tails": {n: r.get("miss_tails", {})
                           for n, r in ok.items()},
            "trigger_latency_p99_max": max(
                (float(r.get("trigger_latency", {}).get("p99", 0.0))
                 for r in ok.values()), default=0.0),
            "shards": shards,
            # A fleet has no single boundary-sample ring; dashboards
            # render the merged activity + status instead.
            "history": [],
            "history_samples": 0,
        }
        return out

    def _cmd_activity(self, request: dict) -> dict:
        shards = self._gather({"cmd": "activity"})
        ok = {n: r for n, r in shards.items() if r.get("ok")}
        params: dict[str, dict] = {}
        for r in ok.values():
            for key, entry in (r.get("params") or {}).items():
                agg = params.setdefault(key, {
                    "period_days": entry.get("period_days"),
                    "evaluated_at": entry.get("evaluated_at"),
                    "users": 0, "op_active": 0, "oc_active": 0})
                agg["users"] += int(entry.get("users", 0))
                agg["op_active"] += int(entry.get("op_active", 0))
                agg["oc_active"] += int(entry.get("oc_active", 0))
                agg["evaluated_at"] = max(agg["evaluated_at"] or 0,
                                          entry.get("evaluated_at") or 0)
        tenants: dict[str, dict] = {}
        for r in ok.values():
            for name, entry in (r.get("tenants") or {}).items():
                agg = tenants.setdefault(name, {"classes": {}})
                for label, count in (entry.get("classes") or {}).items():
                    agg["classes"][label] = (agg["classes"].get(label, 0)
                                             + int(count))
        return {"ok": True, "fleet": True, "params": params,
                "tenants": tenants, "shards": shards}

    def _cmd_tenants(self, request: dict) -> dict:
        action = request.get("action", "list")
        if action != "list":
            return {"ok": False,
                    "error": "tenant mutations must target a single "
                             "worker admin socket, not the fleet"}
        shards = self._gather({"cmd": "tenants"})
        merged: dict[str, dict] = {}
        for r in shards.values():
            if r.get("ok"):
                merged.update(r.get("tenants") or {})
        return {"ok": True, "fleet": True, "tenants": merged,
                "shards": shards}

    def _cmd_query(self, request: dict) -> dict:
        if "uid" not in request:
            return {"ok": False, "error": "query needs a uid"}
        uid = int(request["uid"])
        owner = self.fleet.router.ring.owner(uid)
        address = self.fleet.admin_addresses().get(owner)
        if address is None:
            return {"ok": False,
                    "error": f"no admin address for shard {owner!r}"}
        try:
            out = admin_request(address, {"cmd": "query", "uid": uid},
                                timeout=self.gather_timeout)
        except Exception as exc:  # noqa: BLE001 -- a down shard is data
            return {"ok": False, "shard": owner,
                    "error": f"{type(exc).__name__}: {exc}"}
        out["shard"] = owner
        return out

    def _cmd_export(self, request: dict) -> dict:
        fmt = request.get("format", "prom")
        if fmt != "prom":
            return {"ok": False,
                    "error": f"unknown export format {fmt!r} "
                             f"(expected 'prom')"}
        return {"ok": True, "format": "prom",
                "content_type": PROMETHEUS_CONTENT_TYPE,
                "text": self.render_metrics()}

    def _cmd_shards(self, request: dict) -> dict:
        router = self.fleet.router
        return {"ok": True,
                "ring": router.ring.to_jsonable(),
                "ring_info": router.ring.describe(),
                "workers": self.fleet.describe_workers(),
                "epochs": router.describe()["epochs"],
                "rebalances": self.fleet.rebalance_log()}

    def _cmd_rebalance(self, request: dict) -> dict:
        try:
            entry = self.fleet.start_rebalance(
                donor=request.get("donor"),
                new_name=request.get("name"))
        except (ValueError, RuntimeError) as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, "queued": True, "rebalance": entry}

    # -- Prometheus -----------------------------------------------------

    def render_metrics(self) -> str:
        """Fleet-level text exposition: per-shard series labelled
        ``shard=...`` plus router-front totals."""
        health = self._gather({"cmd": "health"})
        metrics = self._gather({"cmd": "metrics"})
        router = self.fleet.router
        lines: list[str] = []

        def emit(name: str, mtype: str, help_text: str,
                 samples: list[tuple[str, float]]) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {mtype}")
            for labels, value in samples:
                lines.append(f"{name}{labels} {value:.10g}")

        emit("repro_fleet_shards", "gauge", "Workers in the fleet.",
             [("", float(len(self.fleet.worker_names())))])
        emit("repro_fleet_up", "gauge", "1 when the shard answers admin.",
             [(f'{{shard="{n}"}}', 1.0 if r.get("ok") else 0.0)
              for n, r in sorted(health.items())])
        emit("repro_fleet_cursor", "counter",
             "Merged events consumed by each shard engine.",
             [(f'{{shard="{n}"}}', float(r.get("cursor", 0)))
              for n, r in sorted(metrics.items()) if r.get("ok")])
        emit("repro_fleet_events_per_second", "gauge",
             "Per-shard ingest rate.",
             [(f'{{shard="{n}"}}', float(r.get("events_per_second", 0.0)))
              for n, r in sorted(metrics.items()) if r.get("ok")])
        tail_samples: list[tuple[str, float]] = []
        for n, r in sorted(metrics.items()):
            if not r.get("ok"):
                continue
            tl = r.get("trigger_latency") or {}
            for q in ("p50", "p95", "p99"):
                if q in tl:
                    tail_samples.append(
                        (f'{{shard="{n}",quantile="{q}"}}', float(tl[q])))
        emit("repro_fleet_trigger_latency_seconds", "gauge",
             "Per-shard trigger latency tails.", tail_samples)
        miss_samples: list[tuple[str, float]] = []
        for n, r in sorted(metrics.items()):
            if not r.get("ok"):
                continue
            for tenant, mt in sorted((r.get("miss_tails") or {}).items()):
                for q in ("p50", "p95", "p99"):
                    if q in mt:
                        miss_samples.append(
                            (f'{{shard="{n}",tenant="{tenant}",'
                             f'quantile="{q}"}}', float(mt[q])))
        emit("repro_fleet_daily_miss_tail", "gauge",
             "Per-shard per-tenant daily miss tails.", miss_samples)
        emit("repro_fleet_rows_routed_total", "counter",
             "Rows the router forwarded to each shard.",
             [(f'{{shard="{n}"}}', float(v))
              for n, v in sorted(router.rows_routed.items())])
        front = router.listener.describe()
        emit("repro_fleet_router_connections_total", "counter",
             "Producer connections accepted at the fleet front.",
             [("", float(front["connections_accepted"]))])
        emit("repro_fleet_router_batch_rows_total", "counter",
             "Batch rows received at the fleet front.",
             [("", float(front["batch_rows_received"]))])
        emit("repro_fleet_router_duplicates_total", "counter",
             "Duplicate rows discarded at the fleet front.",
             [("", float(front["duplicates_discarded"]))])
        emit("repro_fleet_routing_errors_total", "counter",
             "Rows the router failed to classify.",
             [("", float(int(router.routing_errors)))])
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# fleet orchestration


@dataclass
class WorkerSpec:
    """Everything the fleet needs to run one shard worker."""

    name: str
    ingest_address: str
    admin_address: str
    checkpoint_dir: str
    result_path: str
    command: list[str] = field(default_factory=list)
    log_path: str | None = None


class ShardFleet:
    """Run N shard workers under supervision behind one router.

    The fleet owns process lifecycle (a crash-looped
    :class:`Supervisor` per worker; each respawn beyond the first
    reopens that worker's lanes so the retained tail is resent), the
    durability poll that trims lanes against checkpointed ingest
    cursors, and the rebalance state machine.  ``worker_factory`` is
    the CLI's hook for minting the spec (argv included) of a
    rebalance-born worker.
    """

    def __init__(self, router: ShardRouter, workers: Sequence[WorkerSpec],
                 *, directory: str, replay_start: int, n_days: int,
                 worker_factory: Callable[[str], WorkerSpec] | None = None,
                 poll_interval: float = 1.0,
                 backoff: BackoffPolicy | None = None,
                 log: Callable[[str], None] | None = None) -> None:
        self.router = router
        self.directory = directory
        self.replay_start = int(replay_start)
        self.n_days = int(n_days)
        self.worker_factory = worker_factory
        self.poll_interval = poll_interval
        self.backoff = backoff or BackoffPolicy(
            base=0.2, max_delay=2.0, jitter=0.1, seed=0,
            max_restarts=10, healthy_seconds=5.0)
        self._log = log or (lambda line: None)
        self.specs: dict[str, WorkerSpec] = {s.name: s for s in workers}
        self.processes: dict[str, subprocess.Popen] = {}
        self.reports: dict[str, object] = {}
        self.spawn_counts: dict[str, int] = {}
        self._threads: dict[str, threading.Thread] = {}
        self._rebalances: list[dict] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._poll_thread: threading.Thread | None = None

    # -- introspection --------------------------------------------------

    def worker_names(self) -> list[str]:
        with self._lock:
            return list(self.specs)

    def admin_addresses(self) -> dict[str, str]:
        with self._lock:
            return {name: spec.admin_address
                    for name, spec in self.specs.items()}

    def describe_workers(self) -> dict:
        with self._lock:
            return {name: {
                "ingest": spec.ingest_address,
                "admin": spec.admin_address,
                "checkpoint_dir": spec.checkpoint_dir,
                "rows_routed": self.router.rows_routed.get(name, 0),
                "spawns": self.spawn_counts.get(name, 0),
                "pid": (self.processes[name].pid
                        if name in self.processes
                        and self.processes[name].poll() is None else None),
            } for name, spec in self.specs.items()}

    def rebalance_log(self) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._rebalances]

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        for name in list(self.specs):
            self._start_worker(name)
        self._poll_thread = threading.Thread(
            target=self._poll_durability, name="fleet-durability",
            daemon=True)
        self._poll_thread.start()

    def _start_worker(self, name: str) -> None:
        spec = self.specs[name]

        def spawn(command: Sequence[str]):
            out = (open(spec.log_path, "ab")
                   if spec.log_path is not None else None)
            try:
                proc = subprocess.Popen(list(command), stdout=out,
                                        stderr=subprocess.STDOUT
                                        if out is not None else None)
            finally:
                if out is not None:
                    out.close()
            with self._lock:
                self.processes[name] = proc
                self.spawn_counts[name] = \
                    self.spawn_counts.get(name, 0) + 1
                count = self.spawn_counts[name]
            if count > 1:
                # A restart: the worker resumes from its checkpoint, so
                # the lanes must resend their retained (post-durable)
                # tails and, when already delivered, the end frames.
                self.router.reopen_worker(name)
            return proc

        def should_resume() -> bool:
            return bool(glob.glob(os.path.join(
                spec.checkpoint_dir, "checkpoint-*.npz")))

        supervisor = Supervisor(spec.command, backoff=self.backoff,
                                should_resume=should_resume, spawn=spawn,
                                log=lambda line, n=name:
                                self._log(f"[{n}] {line}"))

        def run() -> None:
            rc = supervisor.run()
            with self._lock:
                self.reports[name] = supervisor.report
            self._log(f"worker {name} finished rc={rc} "
                      f"(restarts={supervisor.report.restarts})")

        thread = threading.Thread(target=run, name=f"worker:{name}",
                                  daemon=True)
        self._threads[name] = thread
        thread.start()

    def _poll_durability(self) -> None:
        while not self._stop.wait(self.poll_interval):
            for name, address in self.admin_addresses().items():
                try:
                    health = admin_request(address, {"cmd": "health"},
                                           timeout=2.0)
                except Exception:  # noqa: BLE001 -- worker may be down
                    continue
                cursors = ((health.get("ingest_cursors") or {})
                           .get("source_seqs") or {})
                if cursors:
                    self.router.trim(name, cursors)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every worker's supervisor loop has returned.

        Returns ``False`` (instead of hanging on workers starved of a
        dead peer's acks) as soon as any supervisor has given up for
        good -- the fleet cannot complete once a shard is permanently
        down, and the caller should fail loudly.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            threads = list(self._threads.items())
            if all(not t.is_alive() for _n, t in threads):
                return True
            for name, t in threads:
                if t.is_alive():
                    continue
                report = self.reports.get(name)
                if getattr(report, "final_returncode", 0) not in (0, None):
                    return False
            if (deadline is not None
                    and time.monotonic() >= deadline):
                return False
            time.sleep(0.25)

    def stop(self) -> None:
        self._stop.set()
        self.router.close()
        for proc in list(self.processes.values()):
            if proc.poll() is None:
                proc.terminate()

    # -- rebalance ------------------------------------------------------

    def start_rebalance(self, donor: str | None = None,
                        new_name: str | None = None) -> dict:
        """Validate, install the gate, and run the split in background.

        Returns the (live) log entry; progress lands in it as the
        background thread advances (visible via ``admin shards``).
        """
        if self.worker_factory is None:
            raise RuntimeError("this fleet cannot mint new workers "
                               "(no worker factory)")
        with self._lock:
            if any(e["status"] not in ("done", "failed")
                   for e in self._rebalances):
                raise RuntimeError("a rebalance is already in progress")
            if donor is None:
                donor = max(self.router.rows_routed,
                            key=self.router.rows_routed.get)
            if donor not in self.specs:
                raise ValueError(f"unknown donor shard {donor!r}")
            if new_name is None:
                i = len(self.specs)
                while f"s{i:02d}" in self.specs:
                    i += 1
                new_name = f"s{i:02d}"
            if new_name in self.specs:
                raise ValueError(f"shard {new_name!r} already exists")
            entry = {"donor": donor, "name": new_name,
                     "status": "preparing", "boundary": None}
            self._rebalances.append(entry)
        thread = threading.Thread(target=self._run_rebalance,
                                  args=(entry,), name="fleet-rebalance",
                                  daemon=True)
        thread.start()
        return dict(entry)

    def _run_rebalance(self, entry: dict) -> None:
        donor = entry["donor"]
        new_name = entry["name"]
        gated = False
        try:
            donor_admin = self.specs[donor].admin_address
            health = admin_request(donor_admin, {"cmd": "health"},
                                   timeout=10.0)
            if not health.get("ok"):
                raise RuntimeError(f"donor {donor} admin refused: "
                                   f"{health.get('error')}")
            next_boundary = int(health.get("next_boundary", 0))
            # The cut must sit strictly ahead of everything already
            # routed AND of the donor's engine position; retry upward a
            # few times in case rows race the watermark read.
            for _attempt in range(8):
                wm = self.router.max_watermark
                wm_day = ((wm - self.replay_start) // DAY_SECONDS + 1
                          if wm else 1)
                boundary = max(wm_day, next_boundary, 1)
                if boundary >= self.n_days:
                    raise RuntimeError(
                        f"too late to split: boundary {boundary} is at or "
                        f"past the end of the {self.n_days}-day window")
                cut_ts = self.replay_start + boundary * DAY_SECONDS
                try:
                    self.router.begin_rebalance(donor, cut_ts)
                    gated = True
                    break
                except ValueError:
                    continue
            if not gated:
                raise RuntimeError("could not install the rebalance gate "
                                   "ahead of the routed watermark")
            entry["boundary"] = boundary
            entry["cut_ts"] = cut_ts
            new_ring = self.router.ring.split(donor, new_name)
            spec = self.worker_factory(new_name)
            split_request = {
                "cmd": "shard-split",
                "at_boundary": boundary,
                "dest_dir": spec.checkpoint_dir,
                "ring": new_ring.to_jsonable(),
                "new_shard": new_name,
            }
            # Snapshot the donor's spawn count BEFORE asking: a respawn
            # between the ack and the snapshot would otherwise lose the
            # queued split with no re-issue.  If the respawn instead
            # races the ack, the re-issue below is redundant -- the
            # donor dedupes an already-applied (boundary, dest) split.
            split_spawn = self.spawn_counts.get(donor, 0)
            response = admin_request(donor_admin, split_request,
                                     timeout=10.0)
            if not response.get("ok"):
                raise RuntimeError(f"donor {donor} refused the split: "
                                   f"{response.get('error')}")
            # The donor has the op queued and can no longer cross the
            # boundary early (post-cut rows were gated): flip the epoch
            # and release the gated rows under the new ring.
            self.router.commit_rebalance(new_ring, cut_ts, new_name,
                                         spec.ingest_address)
            gated = False
            with self._lock:
                self.specs[new_name] = spec
            self._persist_ring(cut_ts, new_ring)
            entry["status"] = "waiting-for-clone"
            while not self._stop.is_set():
                if glob.glob(os.path.join(spec.checkpoint_dir,
                                          "checkpoint-*.npz")):
                    break
                donor_thread = self._threads.get(donor)
                if donor_thread is not None and not donor_thread.is_alive():
                    report = self.reports.get(donor)
                    if getattr(report, "final_returncode", 0) != 0:
                        raise RuntimeError(
                            f"donor {donor} died (rc="
                            f"{report.final_returncode}) before writing "
                            f"the clone")
                # Pending ops are deliberately not checkpointed: a
                # donor that crashed after acking the split but before
                # the boundary executed resumes WITHOUT the queued
                # split, and the ring epoch has already flipped.
                # Respawns are visible in spawn_counts -- re-issue the
                # identical request to the new incarnation (idempotent:
                # same boundary, same dest chain).
                spawns = self.spawn_counts.get(donor, 0)
                if spawns > split_spawn:
                    try:
                        response = admin_request(donor_admin,
                                                 split_request,
                                                 timeout=10.0)
                    except Exception:  # noqa: BLE001 -- admin not up yet
                        pass  # retry on the next poll tick
                    else:
                        if response.get("ok"):
                            split_spawn = spawns
                            self._log(
                                f"rebalance: re-issued shard-split to "
                                f"respawned donor {donor}")
                        else:
                            raise RuntimeError(
                                f"respawned donor {donor} refused the "
                                f"re-issued split: "
                                f"{response.get('error')}")
                time.sleep(0.25)
            if self._stop.is_set():
                entry["status"] = "failed"
                entry["error"] = "fleet stopped before the clone appeared"
                return
            entry["status"] = "starting"
            self._start_worker(new_name)
            replayed = self.router.activate_worker(new_name)
            entry["replayed_rows"] = replayed
            entry["status"] = "done"
            self._log(f"rebalance: {donor} -> {donor}+{new_name} at "
                      f"boundary {boundary}")
        except Exception as exc:  # noqa: BLE001 -- report, don't die
            if gated:
                self.router.abort_rebalance()
            entry["status"] = "failed"
            entry["error"] = f"{type(exc).__name__}: {exc}"
            self._log(f"rebalance failed: {entry['error']}")

    def _persist_ring(self, cut_ts: int, ring: HashRing) -> None:
        """Persist the new ring: rewrite ``ring.json`` (what workers
        read at startup) and append to the ``ring-epochs.json`` audit
        trail."""
        current = os.path.join(self.directory, "ring.json")
        tmp = f"{current}.tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(ring.to_jsonable(), f)
        os.replace(tmp, current)
        path = os.path.join(self.directory, "ring-epochs.json")
        epochs: list = []
        try:
            with open(path, "r", encoding="utf-8") as f:
                epochs = json.load(f)
        except (OSError, ValueError):
            epochs = []
        epochs.append({"cut_ts": int(cut_ts),
                       "ring": ring.to_jsonable(),
                       "digest": ring.digest()})
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(epochs, f, indent=1)
        os.replace(tmp, path)

    # -- results --------------------------------------------------------

    def collect_results(self) -> dict[str, EmulationResult]:
        """Read every worker's result JSON and merge per tenant."""
        payloads = []
        for name, spec in sorted(self.specs.items()):
            try:
                with open(spec.result_path, "r", encoding="utf-8") as f:
                    payloads.append(json.load(f))
            except OSError as exc:
                raise RuntimeError(
                    f"worker {name} left no result file at "
                    f"{spec.result_path}: {exc}") from exc
        return merge_tenant_results(payloads)


# ---------------------------------------------------------------------------
# result merging


def merge_tenant_results(payloads: Sequence[Mapping],
                         ) -> dict[str, EmulationResult]:
    """Union per-shard result payloads into per-tenant results.

    Every additive ledger sums (daily access/miss arrays, per-group
    misses, final file counts and bytes); retention reports align **by
    trigger time ``t_c``** -- a rebalance-seeded worker only has
    reports from its cut boundary on, so list-index alignment would be
    wrong -- and merge tally-wise within each trigger.  For per-user
    decomposable policies (FLT) the merged result is bit-identical to
    the single-process replay; that identity is what the sharded CI
    smoke asserts.
    """
    merged: dict[str, EmulationResult] = {}
    reports_by_tc: dict[str, dict[int, RetentionReport]] = {}
    for payload in payloads:
        for name, t in (payload.get("tenants") or {}).items():
            n_days = int(t["n_days"])
            result = merged.get(name)
            if result is None:
                result = EmulationResult(
                    policy=t["policy"],
                    lifetime_days=float(t["lifetime_days"]),
                    metrics=DailyMetrics(n_days))
                merged[name] = result
                reports_by_tc[name] = {}
            metrics = result.metrics
            metrics.accesses += np.asarray(t["accesses"], dtype=np.int64)
            metrics.misses += np.asarray(t["misses"], dtype=np.int64)
            for key, series in (t.get("group_misses") or {}).items():
                cls = UserClass(int(key))
                metrics.group_misses[cls] += np.asarray(series,
                                                        dtype=np.int64)
            for report in reports_from_jsonable(t.get("reports") or []):
                seen = reports_by_tc[name].get(report.t_c)
                if seen is None:
                    reports_by_tc[name][report.t_c] = report
                else:
                    seen.merge(report)
            result.final_total_bytes += int(t.get("final_total_bytes", 0))
            result.final_file_count += int(t.get("final_file_count", 0))
    for name, result in merged.items():
        result.reports = [reports_by_tc[name][tc]
                          for tc in sorted(reports_by_tc[name])]
    return merged
