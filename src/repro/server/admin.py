"""The admin/query plane: a second listener beside the ingest socket.

Operators need to ask a running retention server questions -- is it
healthy, how fast is it ingesting, which tenants exist, what does the
fleet think of user 4711 -- without stopping (or even slowing) the event
loop.  :class:`AdminServer` answers them over the same length-prefixed
JSON frame protocol the ingest plane speaks, on its own socket:

* every request is one frame ``{"cmd": ...}``, every answer one frame
  ``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``;
* handlers only ever take **point-in-time reads** of the engine's
  state (plain attribute loads, atomic under the GIL) or enqueue ops on
  thread-safe queues (tenant add/remove) -- the ingest thread never
  blocks on an admin request, which is what lets the plane answer
  *during* active ingestion (pinned by ``tests/test_server.py``);
* tenant mutations are asynchronous by design: ``tenants add`` returns
  ``{"queued": true}`` and the engine applies the op at the next day
  boundary, the only instant the replay state is quiescent.

Commands: ``status``, ``health``, ``tenants`` (list/add/remove),
``metrics`` (ingest rate, refold fraction, checkpoint age), ``query``
(per-user activeness + per-tenant verdicts).  :func:`admin_request` is
the one-call client used by ``repro admin``.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Callable, Iterable

import numpy as np

from .protocol import (FrameError, FrameReader, create_listener,
                       connect_socket, format_address, parse_address,
                       write_frame)
from .tenants import MultiTenantService, TenantSpec

__all__ = ["AdminServer", "admin_request"]


def _tail_stats(samples: Iterable[float]) -> dict:
    """TARE-style tail summary (count + p50/p95/p99/max) of a latency
    log, in seconds.  Snapshot via ``list`` first: the deques grow on
    other threads while we read."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return {"count": 0}
    p50, p95, p99 = np.percentile(arr, (50.0, 95.0, 99.0))
    return {"count": int(arr.size), "p50": float(p50), "p95": float(p95),
            "p99": float(p99), "max": float(arr.max())}


class AdminServer:
    """Answer operator queries about a :class:`MultiTenantService`.

    ``stream`` (the :class:`~repro.server.ingest.NetworkEventStream`, when
    the server ingests over sockets) enriches ``status``/``health`` with
    listener and quarantine detail.  ``clock``/``wall`` are injectable
    for tests.
    """

    def __init__(self, address: str, service: MultiTenantService, *,
                 stream=None,
                 clock: Callable[[], float] = time.monotonic,
                 wall: Callable[[], float] = time.time) -> None:
        self.service = service
        self.stream = stream
        self._clock = clock
        self._wall = wall
        self._started = clock()
        # (monotonic, cursor) of the previous metrics call: ingest rate
        # is measured between consecutive metrics requests.
        self._rate_sample = (self._started, service.cursor)
        self.requests = 0
        self.errors = 0
        self.closed = False
        self._sock = create_listener(address)
        self.address = format_address(parse_address(address))
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="admin-accept", daemon=True)
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # plumbing

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "AdminServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self.closed:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        reader = FrameReader(conn)
        try:
            while True:
                try:
                    request = reader.read()
                except FrameError as exc:
                    write_frame(conn, {"ok": False,
                                       "error": f"bad frame: {exc}"})
                    return
                if request is None:
                    return
                self.requests += 1
                try:
                    response = self.handle(request)
                except Exception as exc:  # noqa: BLE001 -- must answer
                    self.errors += 1
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                write_frame(conn, response)
        except OSError:
            pass  # client went away mid-answer
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # command dispatch

    def handle(self, request: dict) -> dict:
        """Answer one request dict (exposed directly for tests)."""
        cmd = request.get("cmd")
        handler = {
            "status": self._cmd_status,
            "health": self._cmd_health,
            "tenants": self._cmd_tenants,
            "metrics": self._cmd_metrics,
            "query": self._cmd_query,
        }.get(cmd)
        if handler is None:
            self.errors += 1
            return {"ok": False, "error": f"unknown command {cmd!r}"}
        return handler(request)

    def _cmd_status(self, request: dict) -> dict:
        out = {"ok": True, "uptime": self._clock() - self._started}
        out.update(self.service.describe())
        out["op_log"] = list(self.service.op_log[-20:])
        if self.stream is not None:
            out["reliability"] = self.stream.report()
        return out

    def _cmd_health(self, request: dict) -> dict:
        service = self.service
        degraded = bool(self.stream is not None and self.stream.degraded)
        quarantined = (self.stream.quarantine.total
                       if self.stream is not None else 0)
        return {
            "ok": True,
            "healthy": not degraded,
            "degraded": degraded,
            "cursor": service.cursor,
            "next_boundary": service._next_boundary,
            "quarantined": quarantined,
            "checkpoint_failures": service.stats["checkpoint_failures"],
            "last_checkpoint_error": service.last_checkpoint_error,
        }

    def _cmd_tenants(self, request: dict) -> dict:
        action = request.get("action", "list")
        service = self.service
        if action == "list":
            return {"ok": True,
                    "tenants": {t.name: t.describe()
                                for t in list(service.tenants)}}
        if action == "add":
            spec = TenantSpec.from_jsonable(request["spec"])
            service.request_add_tenant(spec,
                                       clone_from=request.get("clone_from"))
            return {"ok": True, "queued": True, "tenant": spec.name}
        if action == "remove":
            name = request["name"]
            service.request_remove_tenant(name)
            return {"ok": True, "queued": True, "tenant": name}
        return {"ok": False, "error": f"unknown tenants action {action!r}"}

    def _cmd_metrics(self, request: dict) -> dict:
        service = self.service
        now = self._clock()
        cursor = service.cursor
        then, before = self._rate_sample
        self._rate_sample = (now, cursor)
        elapsed = max(now - then, 1e-9)
        stats = service.stats
        eval_users = stats["eval_users"]
        out = {
            "ok": True,
            "cursor": cursor,
            "events_per_second": (cursor - before) / elapsed,
            "rate_window_seconds": elapsed,
            "activeness_evals": stats["activeness_evals"],
            "refold_fraction": (stats["eval_refolded"] / eval_users
                                if eval_users else 0.0),
            "checkpoints_written": stats["checkpoints_written"],
            "checkpoint_failures": stats["checkpoint_failures"],
        }
        manager = service.checkpoints
        newest = manager.latest() if manager is not None else None
        if newest is not None:
            try:
                out["checkpoint_age_seconds"] = (self._wall()
                                                 - os.path.getmtime(newest))
                out["checkpoint_path"] = newest
            except OSError:
                pass
        if self.stream is not None:
            out["quarantined"] = self.stream.quarantine.total
            listener = getattr(self.stream, "listener", None)
            if listener is not None:
                out["batch_decode_latency"] = _tail_stats(
                    listener.decode_seconds)
        out["trigger_latency"] = _tail_stats(
            [s for t in list(service.tenants)
             for s in t.trigger_latency_log])
        return out

    def _cmd_query(self, request: dict) -> dict:
        if "uid" not in request:
            return {"ok": False, "error": "query needs a uid"}
        out = {"ok": True}
        out.update(self.service.query_user(int(request["uid"])))
        return out


def admin_request(address: str, request: dict, *,
                  timeout: float = 10.0) -> dict:
    """One admin round-trip: connect, send ``request``, return the answer."""
    sock = connect_socket(address, timeout=timeout)
    try:
        write_frame(sock, request)
        reader = FrameReader(sock)
        response = reader.read()
        if response is None:
            raise ConnectionError(f"admin server at {address} closed the "
                                  f"connection without answering")
        return response
    finally:
        try:
            sock.close()
        except OSError:
            pass
