"""The admin/query plane: a second listener beside the ingest socket.

Operators need to ask a running retention server questions -- is it
healthy, how fast is it ingesting, which tenants exist, what does the
fleet think of user 4711 -- without stopping (or even slowing) the event
loop.  :class:`AdminServer` answers them over the same length-prefixed
JSON frame protocol the ingest plane speaks, on its own socket:

* every request is one frame ``{"cmd": ...}``, every answer one frame
  ``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``;
* handlers only ever take **point-in-time reads** of the engine's
  state (plain attribute loads, atomic under the GIL) or enqueue ops on
  thread-safe queues (tenant add/remove) -- the ingest thread never
  blocks on an admin request, which is what lets the plane answer
  *during* active ingestion (pinned by ``tests/test_server.py``);
* tenant mutations are asynchronous by design: ``tenants add`` returns
  ``{"queued": true}`` and the engine applies the op at the next day
  boundary, the only instant the replay state is quiescent.

The same socket doubles as a **Prometheus scrape target**: a connection
whose first byte is ``G`` (an HTTP ``GET``) is answered with the text
exposition of :func:`~repro.server.metrics.render_prometheus` and
closed -- ``GET /metrics`` works from any HTTP client, frames work from
any frame client, and the listener never needs a second port.

Rate series are derived from the engine's :class:`MetricsHistory` ring
(timestamped, immutable samples) rather than a per-server mutable
window: any number of concurrent ``metrics`` pollers observe the same
anchor and therefore consistent ``events_per_second`` -- the old shared
``(then, before)`` tuple made two interleaved pollers clobber each
other's window and report garbage.

Commands: ``status``, ``health``, ``tenants`` (list/add/remove),
``metrics`` (ingest rate, refold fraction, checkpoint age; ``history``
returns the newest N ring samples), ``activity`` (rank distributions +
class counts for the dashboard), ``export`` (the Prometheus text body
in a frame, for ``repro admin export --prom``), ``query`` (per-user
activeness + per-tenant verdicts).  :func:`admin_request` is the
one-call client used by ``repro admin``.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable, Iterable

from .metrics import (Counter, MetricsHistory, render_prometheus,
                      tail_stats)
from .protocol import (FrameError, FrameReader, create_listener,
                       connect_socket, format_address, parse_address,
                       write_frame)
from .tenants import MultiTenantService, TenantSpec

__all__ = ["AdminServer", "admin_request", "scrape_metrics"]

#: Content type of the ``GET /metrics`` exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _tail_stats(samples: Iterable[float]) -> dict:
    """Back-compat alias: the implementation moved to ``server.metrics``
    so the engine's boundary sampler can share it."""
    return tail_stats(samples)


class AdminServer:
    """Answer operator queries about a :class:`MultiTenantService`.

    ``stream`` (the :class:`~repro.server.ingest.NetworkEventStream`, when
    the server ingests over sockets) enriches ``status``/``health`` with
    listener and quarantine detail.  ``clock`` is injectable for tests
    and must share a timebase with the service's metrics history (both
    default to ``time.monotonic``).
    """

    def __init__(self, address: str, service: MultiTenantService, *,
                 stream=None,
                 extra_commands: dict[str, Callable[[dict], dict]]
                 | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.service = service
        self.stream = stream
        #: Deployment-specific verbs (e.g. the shard fleet's
        #: ``shard-split``) merged into dispatch -- the admin plane
        #: stays ignorant of what registered them.
        self.extra_commands = dict(extra_commands or {})
        self._clock = clock
        self._started = clock()
        # Immutable fallback rate anchor: before the first boundary
        # sample exists, events/s is the average since the plane opened.
        self._cursor0 = service.cursor
        self.requests = Counter()
        self.errors = Counter()
        self.http_requests = Counter()
        self.closed = False
        self._sock = create_listener(address)
        self.address = format_address(parse_address(address))
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="admin-accept", daemon=True)
        self._accept_thread.start()

    @property
    def history(self) -> MetricsHistory | None:
        return self.service.metrics_history

    # ------------------------------------------------------------------
    # plumbing

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "AdminServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self.closed:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            # Dual protocol on one socket: frames start with a decimal
            # length prefix, HTTP requests with a method -- one peeked
            # byte disambiguates without consuming anything.
            try:
                head = conn.recv(1, socket.MSG_PEEK)
            except OSError:
                return
            if head in (b"G", b"H"):
                self._serve_http(conn)
                return
            self._serve_frames(conn)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _serve_frames(self, conn: socket.socket) -> None:
        reader = FrameReader(conn)
        try:
            while True:
                try:
                    request = reader.read()
                except FrameError as exc:
                    write_frame(conn, {"ok": False,
                                       "error": f"bad frame: {exc}"})
                    return
                if request is None:
                    return
                self.requests += 1
                try:
                    response = self.handle(request)
                except Exception as exc:  # noqa: BLE001 -- must answer
                    self.errors += 1
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                write_frame(conn, response)
        except OSError:
            pass  # client went away mid-answer

    def _serve_http(self, conn: socket.socket) -> None:
        """One HTTP/1.0-style exchange: request, response, close."""
        self.requests += 1
        self.http_requests += 1
        try:
            conn.settimeout(10.0)
            data = b""
            while b"\r\n\r\n" not in data and b"\n\n" not in data:
                chunk = conn.recv(4096)
                if not chunk:
                    break
                data += chunk
                if len(data) > 65536:
                    break
            line = data.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
            parts = line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else "/"
            if method not in ("GET", "HEAD"):
                self._http_response(conn, "405 Method Not Allowed",
                                    "only GET is served here\n")
                return
            if path.split("?", 1)[0] != "/metrics":
                self.errors += 1
                self._http_response(conn, "404 Not Found",
                                    "try GET /metrics\n")
                return
            body = self.render_metrics()
            self._http_response(conn, "200 OK", body,
                                content_type=PROMETHEUS_CONTENT_TYPE,
                                head_only=(method == "HEAD"))
        except Exception as exc:  # noqa: BLE001 -- must answer
            self.errors += 1
            try:
                self._http_response(conn, "500 Internal Server Error",
                                    f"{type(exc).__name__}: {exc}\n")
            except OSError:
                pass

    @staticmethod
    def _http_response(conn: socket.socket, status: str, body: str,
                       content_type: str = "text/plain; charset=utf-8",
                       head_only: bool = False) -> None:
        payload = body.encode("utf-8")
        header = (f"HTTP/1.0 {status}\r\n"
                  f"Content-Type: {content_type}\r\n"
                  f"Content-Length: {len(payload)}\r\n"
                  f"Connection: close\r\n\r\n").encode("latin-1")
        try:
            conn.sendall(header if head_only else header + payload)
        except OSError:
            pass  # scraper went away

    # ------------------------------------------------------------------
    # command dispatch

    def handle(self, request: dict) -> dict:
        """Answer one request dict (exposed directly for tests)."""
        cmd = request.get("cmd")
        handler = {
            "status": self._cmd_status,
            "health": self._cmd_health,
            "tenants": self._cmd_tenants,
            "metrics": self._cmd_metrics,
            "activity": self._cmd_activity,
            "export": self._cmd_export,
            "query": self._cmd_query,
            **self.extra_commands,
        }.get(cmd)
        if handler is None:
            self.errors += 1
            return {"ok": False, "error": f"unknown command {cmd!r}"}
        return handler(request)

    def _cmd_status(self, request: dict) -> dict:
        out = {"ok": True, "uptime": self._clock() - self._started}
        out.update(self.service.describe())
        out["op_log"] = list(self.service.op_log[-20:])
        if self.stream is not None:
            out["reliability"] = self.stream.report()
        return out

    def _cmd_health(self, request: dict) -> dict:
        service = self.service
        degraded = bool(self.stream is not None and self.stream.degraded)
        quarantined = (int(self.stream.quarantine.total)
                       if self.stream is not None else 0)
        return {
            "ok": True,
            "healthy": not degraded,
            "degraded": degraded,
            "cursor": service.cursor,
            "next_boundary": service.next_boundary,
            "quarantined": quarantined,
            "checkpoint_failures": service.stats["checkpoint_failures"],
            "last_checkpoint_error": service.last_checkpoint_error,
            # Newest *durable* per-source cursors (from the last
            # checkpoint): a shard router trims its resend lanes up to
            # these -- rows at or below them survive a kill -9.
            "ingest_cursors": getattr(service, "last_durable_ingest",
                                      None),
        }

    def _cmd_tenants(self, request: dict) -> dict:
        action = request.get("action", "list")
        service = self.service
        if action == "list":
            return {"ok": True,
                    "tenants": {t.name: t.describe()
                                for t in list(service.tenants)}}
        if action == "add":
            spec = TenantSpec.from_jsonable(request["spec"])
            service.request_add_tenant(spec,
                                       clone_from=request.get("clone_from"))
            return {"ok": True, "queued": True, "tenant": spec.name}
        if action == "remove":
            name = request["name"]
            service.request_remove_tenant(name)
            return {"ok": True, "queued": True, "tenant": name}
        return {"ok": False, "error": f"unknown tenants action {action!r}"}

    def ingest_rate(self) -> tuple[float, float]:
        """``(events_per_second, window_seconds)`` from the history ring.

        The anchor is an immutable timestamped sample (or, before any
        sample exists this incarnation, the plane's own start), so
        concurrent pollers compute against the same window instead of
        racing over shared state.  Negative deltas (a rewound injected
        clock) clamp to zero.
        """
        now = self._clock()
        cursor = self.service.cursor
        history = self.history
        anchor = history.rate_anchor(now) if history is not None else None
        if anchor is None:
            anchor = (self._started, self._cursor0)
        elapsed = max(now - anchor[0], 1e-9)
        return max(0.0, (cursor - anchor[1]) / elapsed), elapsed

    def _cmd_metrics(self, request: dict) -> dict:
        service = self.service
        cursor = service.cursor
        stats = service.stats
        eval_users = stats["eval_users"]
        rate, window = self.ingest_rate()
        out = {
            "ok": True,
            "cursor": cursor,
            "next_boundary": service.next_boundary,
            "events_per_second": rate,
            "rate_window_seconds": window,
            "activeness_evals": stats["activeness_evals"],
            "refold_fraction": (stats["eval_refolded"] / eval_users
                                if eval_users else 0.0),
            "checkpoints_written": stats["checkpoints_written"],
            "checkpoint_failures": stats["checkpoint_failures"],
        }
        age = service.checkpoint_age()
        if age is not None:
            out["checkpoint_age_seconds"] = age
            out["checkpoint_path"] = service.checkpoints.latest()
        if self.stream is not None:
            out["quarantined"] = int(self.stream.quarantine.total)
            listener = getattr(self.stream, "listener", None)
            if listener is not None:
                out["batch_decode_latency"] = tail_stats(
                    listener.decode_seconds)
        out["trigger_latency"] = tail_stats(
            [s for t in list(service.tenants)
             for s in t.trigger_latency_log])
        # TARE-style daily-miss tails per tenant over *settled* days
        # only; the fleet admin merges these per shard so hot shards
        # stay visible behind fleet-level means.
        settled = min(service.next_boundary, service.n_days)
        out["miss_tails"] = {
            t.name: tail_stats(t.metrics.misses[:settled].tolist())
            for t in list(service.tenants)}
        history = self.history
        if history is not None:
            out["history_samples"] = history.seq
            n = request.get("history")
            if n:
                out["history"] = history.tail(int(n))
        return out

    def _cmd_activity(self, request: dict) -> dict:
        out = {"ok": True}
        out.update(self.service.activity_summary())
        return out

    def render_metrics(self) -> str:
        """The Prometheus text body (shared by HTTP and ``export``)."""
        rate, _window = self.ingest_rate()
        return render_prometheus(
            self.service, stream=self.stream, admin=self,
            history=self.history, rate=rate,
            uptime=self._clock() - self._started)

    def _cmd_export(self, request: dict) -> dict:
        fmt = request.get("format", "prom")
        if fmt != "prom":
            return {"ok": False,
                    "error": f"unknown export format {fmt!r} "
                             f"(expected 'prom')"}
        return {"ok": True, "format": "prom",
                "content_type": PROMETHEUS_CONTENT_TYPE,
                "text": self.render_metrics()}

    def _cmd_query(self, request: dict) -> dict:
        if "uid" not in request:
            return {"ok": False, "error": "query needs a uid"}
        out = {"ok": True}
        out.update(self.service.query_user(int(request["uid"])))
        return out


def admin_request(address: str, request: dict, *,
                  timeout: float = 10.0) -> dict:
    """One admin round-trip: connect, send ``request``, return the answer."""
    sock = connect_socket(address, timeout=timeout)
    try:
        write_frame(sock, request)
        reader = FrameReader(sock)
        response = reader.read()
        if response is None:
            raise ConnectionError(f"admin server at {address} closed the "
                                  f"connection without answering")
        return response
    finally:
        try:
            sock.close()
        except OSError:
            pass


def scrape_metrics(address: str, *, timeout: float = 10.0) -> str:
    """One HTTP ``GET /metrics`` against the admin socket; the text body.

    Raises :class:`ConnectionError` on a non-200 status, so CI smoke
    gates read as one call + assertions on the body.
    """
    sock = connect_socket(address, timeout=timeout)
    try:
        sock.sendall(b"GET /metrics HTTP/1.0\r\n"
                     b"Host: repro-admin\r\n\r\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    finally:
        try:
            sock.close()
        except OSError:
            pass
    raw = b"".join(chunks)
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        head, sep, body = raw.partition(b"\n\n")
    status = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    if " 200 " not in f"{status} ":
        raise ConnectionError(f"scrape of {address} failed: {status!r}")
    return body.decode("utf-8", "replace")
