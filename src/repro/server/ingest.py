"""Socket ingestion: many producers, one quarantined ordered merge.

:class:`SocketListener` accepts producer connections on a TCP or Unix
socket.  Each producer handshakes with a ``hello`` frame naming the
**source** it feeds (``jobs``, ``publications``, ``accesses``, or any
shard name the server was told to expect), then streams event frames.
A reader thread per connection decodes frames and appends the events to
that source's bounded queue -- the bound is the backpressure valve: when
the engine falls behind, queues fill, reader threads block on ``put``,
and TCP flow control pushes back on the producers.

:class:`SocketSource` is the consuming half: a named, health-tracked
iterator draining one source queue, satisfying the same contract the
file-backed :class:`~repro.stream.reliability.sources.ResilientSource`
satisfies, so :class:`NetworkEventStream` can reuse the reliability
layer's quarantined ``heapq.merge`` unchanged.  **Out-of-order events
hit the quarantine, never the engine**: every socket source is guarded
by the shared :class:`~repro.stream.reliability.quarantine.EventQuarantine`
before the merge, so a producer that regresses in time, redelivers a
job id, or ships garbage gets its offending events dead-lettered while
the stream stays clean.

Determinism contract: with one producer per source, each source's event
order is the producer's send order (TCP preserves it), and the merge
breaks timestamp ties by source listing order -- so publishing a
workspace's three trace files over three connections reconstructs
*exactly* the sequence ``workspace_event_stream`` yields from disk,
which is what keeps networked runs bit-identical to batch.  Multiple
concurrent producers per source are accepted (their events interleave
at queue order) for throughput workloads that do not need bit-identity.

A source *finishes* when as many producers as the server expects have
sent ``end`` frames; when every source has finished, the merge is
exhausted and the engine finalizes.  ``end`` is idempotent per producer
*session*: a client that lost the end-ack and retries is acked again
without double-counting toward the quota.

Exactly-once sequencing
-----------------------
Each source keeps an **acked cursor**: the highest per-source sequence
number received contiguously from seq 1 (or from the durable cursor a
resumed server was constructed with).  The hello ack reports it, so a
reconnecting producer resumes from ``cursor + 1`` instead of replaying
its round.  At the edge, a frame whose sequence numbers are entirely at
or below the cursor is discarded as a duplicate (counted, never
decoded for batches); a batch that *straddles* the cursor has its
already-seen prefix rows dropped; a frame that would leave a gap gets
an error frame and a closed connection -- the producer backs off,
reconnects, and relearns the cursor.  Unsequenced frames (legacy
producers) are assigned ``cursor + 1`` implicitly, so the cursor is
always meaningful.  The engine-side :class:`SequenceLedger` maps the
service's global consumed-event cursor back to exact per-source
sequence numbers at every checkpoint, which is what makes the cursor
*durable* across kill -9 + resume.

Overload protection: a listener constructed with ``max_connections``
refuses excess connections with a retryable ``busy`` error frame
(clients back off with jittered exponential delays), and every ack
write runs under ``write_deadline`` -- a producer that stops draining
its socket is evicted instead of wedging a reader thread.
"""

from __future__ import annotations

import hmac
import itertools
import os
import queue
import random
import socket
import threading
import time
from collections import deque
from typing import Callable, Iterable, Iterator, Mapping

from ..stream.batch import (BatchBuilder, BatchRun, EventBatch,
                            merge_stream_items)
from ..stream.events import StreamEvent, job_events, publication_events, access_events
from ..stream.reliability.quarantine import (REASON_CORRUPT_FRAME,
                                             REASON_UNPARSABLE)
from ..stream.reliability.sources import ReliableEventStream, SourceHealth
from .metrics import Counter
from .protocol import (BATCH_MAX_FRAME_BYTES, CAP_BATCH, CAP_ZLIB,
                       MAX_FRAME_BYTES, PROTOCOL_V1, PROTOCOL_V2,
                       SUPPORTED_PROTOCOLS, BatchFormatError, BinaryFrame,
                       FrameError, FrameReader, connect_socket,
                       create_listener, decode_batch, decode_event,
                       encode_batch, encode_batch_frame, encode_event,
                       write_frame)

__all__ = ["DEFAULT_SOURCES", "DEFAULT_BATCH_EVENTS", "SocketSource",
           "SocketListener", "NetworkEventStream", "SequenceLedger",
           "PublishRefused", "publish_events", "publish_batches",
           "publish_workspace"]

#: The canonical trace families, in merge tie-break order.
DEFAULT_SOURCES = ("jobs", "publications", "accesses")

#: Default events per binary batch frame.  Big enough to amortize the
#: per-frame fixed costs (syscall, CRC, column headers, one validation
#: and intern pass per batch) to noise, small enough that a batch stays
#: well under the negotiated frame cap (a full batch encodes to well
#: under half the v1 1 MiB bound) and the merge granularity stays far
#: below a trigger day.
DEFAULT_BATCH_EVENTS = 8192

_END = object()  # queue sentinel: the source has finished


class SocketSource:
    """One named event source fed by producer connections.

    Iterating blocks on the queue until events arrive or the source
    finishes.  ``pos``/``last_event``/``watermark``/``health`` mirror
    :class:`ResilientSource` so the reliability report treats socket and
    file sources uniformly.

    The source owns the edge half of exactly-once ingestion:
    ``acked_seq`` is the highest contiguously received per-source
    sequence number (starting at ``start_seq``, the durable cursor of a
    resumed server), and :meth:`admit_event`/:meth:`admit_batch` decide
    -- atomically with the queue push, so concurrent producer
    connections cannot interleave out of sequence order -- whether an
    incoming frame extends the stream, duplicates it, or leaves a gap.
    """

    def __init__(self, name: str, expected_producers: int = 1,
                 queue_size: int = 10_000, start_seq: int = 0) -> None:
        if expected_producers < 1:
            raise ValueError("expected_producers must be >= 1")
        self.name = name
        self.expected_producers = expected_producers
        self.queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self.pos = 0                 # events yielded to the merge
        self.last_event: StreamEvent | None = None
        self.watermark: int | None = None
        self.health = SourceHealth.OK
        self.episodes = 0            # kept 0: sockets have no retry loop
        self.retries = 0
        self.last_error: str | None = None
        self.connected_producers = 0
        self.ended_producers = 0
        #: Sessions whose ``end`` has been acked: makes ``end``
        #: idempotent under reconnect (a retried end is re-acked, not
        #: double-counted toward ``expected_producers``).
        self.ended_sessions: set[str] = set()
        #: Highest contiguously received sequence number.
        self.start_seq = int(start_seq)
        self.acked_seq = int(start_seq)
        #: Sequence number of the last item *yielded to the merge*
        #: (i.e. covering every row pulled so far); the SequenceLedger
        #: samples this at guard exit.
        self.last_seq = int(start_seq)
        self.duplicate_rows = 0      # resent rows discarded at the edge
        self.sequence_gaps = 0       # frames refused for leaving a gap
        self._lock = threading.Lock()
        self._finished = threading.Event()

    # -- listener side -------------------------------------------------

    def attach_producer(self, session: str | None = None) -> bool:
        """Register one producer connection; False when already finished.

        A session that already ended may still reattach to a finished
        source -- everything it can send is a duplicate or a retried
        (idempotent) ``end``, which lets a producer that lost its
        end-ack confirm completion instead of erroring forever.
        """
        with self._lock:
            if self._finished.is_set():
                return session is not None and session in self.ended_sessions
            self.connected_producers += 1
            return True

    def producer_ended(self, session: str | None = None) -> None:
        """One producer sent ``end``; finish the source at the quota."""
        with self._lock:
            if session is not None:
                if session in self.ended_sessions:
                    return  # retried end: already counted
                self.ended_sessions.add(session)
            if self._finished.is_set():
                return
            self.ended_producers += 1
            if self.ended_producers >= self.expected_producers:
                self._finished.set()
                self.queue.put(_END)

    def push(self, event: object) -> None:
        """Enqueue one item, auto-assigning its sequence numbers.

        Compat entry point (tests, custom feeders): equivalent to
        :meth:`admit_event`/:meth:`admit_batch` with no explicit seq.
        """
        if type(event) is EventBatch:
            self.admit_batch(event, None)
        else:
            self.admit_event(event, None)

    def admit_event(self, event: object, seq: int | None) -> str:
        """Admit one event with per-source sequence number ``seq``.

        Returns ``"ok"`` (pushed), ``"dup"`` (already received,
        discarded), or ``"gap"`` (would skip sequence numbers; the
        caller must refuse the connection).  ``seq=None`` auto-assigns
        the next number (unsequenced legacy producers).
        """
        with self._lock:
            if seq is None:
                seq = self.acked_seq + 1
            if seq <= self.acked_seq:
                self.duplicate_rows += 1
                return "dup"
            if seq > self.acked_seq + 1:
                self.sequence_gaps += 1
                return "gap"
            if self._finished.is_set():
                return "finished"  # merge already saw _END; never push
            self.acked_seq = seq
            # Push under the lock: admission order IS queue order, even
            # with concurrent producer connections on one source.
            self.queue.put((seq, event))
        return "ok"

    def admit_batch(self, batch: EventBatch, first_seq: int | None,
                    ) -> tuple[str, int]:
        """Admit one decoded batch whose first row is ``first_seq``.

        Returns ``(disposition, dup_rows)`` where disposition is
        ``"ok"``/``"dup"``/``"gap"`` and ``dup_rows`` counts rows
        discarded as duplicates (the whole batch, or the already-seen
        prefix of a batch straddling the cursor -- the surviving suffix
        is pushed with its seq provenance intact).
        """
        n = batch.n
        if n == 0:
            return "ok", 0
        with self._lock:
            if first_seq is None:
                first_seq = self.acked_seq + 1
            end_seq = first_seq + n - 1
            if end_seq <= self.acked_seq:
                self.duplicate_rows += n
                return "dup", n
            if first_seq > self.acked_seq + 1:
                self.sequence_gaps += 1
                return "gap", 0
            if self._finished.is_set():
                return "finished", 0
            batch.first_seq = int(first_seq)
            batch.seq_width = n
            dup = self.acked_seq + 1 - first_seq
            if dup > 0:
                self.duplicate_rows += dup
                batch = batch.drop_seq_prefix(dup)
            self.acked_seq = end_seq
            self.queue.put((end_seq, batch))
        return "ok", max(dup, 0)

    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    # -- merge side ----------------------------------------------------

    def __iter__(self) -> Iterator:
        while True:
            entry = self.queue.get()
            if entry is _END:
                return
            seq, item = entry
            self.last_seq = seq
            if type(item) is EventBatch:
                self.pos += item.n
                if item.n:
                    self.watermark = int(item.ts[-1])
                yield item
                continue
            self.pos += 1
            self.last_event = item
            ts = getattr(item, "ts", None)
            if type(ts) is int:
                self.watermark = ts
            yield item

    def describe(self) -> dict:
        return {
            "health": self.health.value,
            "pos": self.pos,
            "watermark": self.watermark,
            "retries": self.retries,
            "episodes": self.episodes,
            "last_error": self.last_error,
            "producers_connected": self.connected_producers,
            "producers_ended": self.ended_producers,
            "producers_expected": self.expected_producers,
            "finished": self.finished,
            "queued": self.queue.qsize(),
            "acked_seq": self.acked_seq,
            "start_seq": self.start_seq,
            "duplicate_rows": self.duplicate_rows,
            "sequence_gaps": self.sequence_gaps,
        }


class SocketListener:
    """Accepts producer connections and routes their events to sources.

    ``expected`` maps source name to the number of producers that must
    ``end`` before that source is considered complete (default: the
    three canonical trace families, one producer each).  Source listing
    order is the merge tie-break order, so callers that need the
    canonical activity-before-access ordering list jobs and publications
    before accesses -- :data:`DEFAULT_SOURCES` already does.
    """

    def __init__(self, address: str, *,
                 expected: Mapping[str, int] | Iterable[str] = DEFAULT_SOURCES,
                 queue_size: int = 10_000, backlog: int = 16,
                 protocols: Iterable[int] = SUPPORTED_PROTOCOLS,
                 max_batch_frame_bytes: int = BATCH_MAX_FRAME_BYTES,
                 initial_cursors: Mapping[str, int] | None = None,
                 auth_token: str | None = None,
                 max_connections: int | None = None,
                 write_deadline: float | None = 30.0,
                 ssl_context=None) -> None:
        if not isinstance(expected, Mapping):
            expected = {name: 1 for name in expected}
        if not expected:
            raise ValueError("a listener needs at least one expected source")
        self.address = address
        #: Protocol versions this listener will accept in ``hello``;
        #: ``(1,)`` makes a v1-only server for fallback testing.
        self.protocols = tuple(protocols)
        #: Ceiling granted to v2 peers asking for a batch-frame cap.
        self.max_batch_frame_bytes = int(max_batch_frame_bytes)
        #: Shared-secret required in every hello when set (compared
        #: constant-time; mismatches are refused ``unauthorized``).
        self.auth_token = auth_token
        #: Connection quota: excess producers get a retryable ``busy``
        #: refusal instead of a reader thread.
        self.max_connections = max_connections
        #: Seconds an ack write may block before the client is judged
        #: stuck and evicted (None disables the deadline).
        self.write_deadline = write_deadline
        #: Server-side :class:`ssl.SSLContext`; accepted connections are
        #: wrapped (handshake in the reader thread, so a stalled
        #: handshake never blocks the accept loop).
        self.ssl_context = ssl_context
        initial_cursors = dict(initial_cursors or {})
        self._sources: dict[str, SocketSource] = {
            name: SocketSource(name, count, queue_size,
                               start_seq=int(initial_cursors.get(name, 0)))
            for name, count in expected.items()}
        #: ``on_decode_error(source_name, detail, raw, reason)`` -- wired
        #: to the quarantine by :class:`NetworkEventStream`; a bare
        #: listener counts decode errors but has nowhere to divert them.
        self.on_decode_error: Callable[[str, str, object, str],
                                       None] | None = None
        # Lock-guarded counters: each is bumped from many concurrent
        # reader threads, where a plain int += would be a lost-update
        # race (int() them for JSON).
        self.decode_errors = Counter()
        self.connections_accepted = Counter()
        self.connections_refused = Counter()
        #: Per-batch decode wall seconds, appended by reader threads
        #: (deque appends are atomic); the admin plane and the bench
        #: derive p50/p95/p99 tails from this window.
        self.decode_seconds: deque[float] = deque(maxlen=4096)
        self.batches_received = Counter()
        self.batch_rows_received = Counter()
        self.duplicates_discarded = Counter()   # resent rows dropped
        self.sequence_gaps = Counter()          # connections gap-refused
        self.busy_refusals = Counter()          # quota refusals
        self.auth_failures = Counter()          # bad/missing auth tokens
        self.slow_clients_evicted = Counter()   # write-deadline evictions
        self.tls_handshake_failures = Counter()  # failed/absent TLS hellos
        self._active_connections = Counter()
        self._sock = create_listener(address, backlog)
        if not address.startswith("unix:"):
            # Resolve "host:0" to the actual bound port so tests (and
            # proxies) can dial the listener from its ``.address``.
            host, port = self._sock.getsockname()[:2]
            self.address = f"{host}:{port}"
        self._closed = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"listener:{address}",
            daemon=True)
        self._accept_thread.start()

    # -- sources -------------------------------------------------------

    def sources(self) -> list[SocketSource]:
        """The expected sources, in declaration (= tie-break) order."""
        return list(self._sources.values())

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self) -> None:
        """Stop accepting; finish every unfinished source."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass
        for source in self._sources.values():
            if not source.finished:
                source._finished.set()
                source.queue.put(_END)

    def __enter__(self) -> "SocketListener":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- connection handling -------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            if self.max_connections is not None and \
                    int(self._active_connections) >= self.max_connections:
                self.connections_refused += 1
                self.busy_refusals += 1
                reason = (f"busy: {int(self._active_connections)} "
                          f"active connections (quota "
                          f"{self.max_connections})")
                # The refusal still needs the server-side TLS handshake
                # before the error frame can be written; hand it to a
                # short-lived thread so a slow or hostile client cannot
                # stall the accept loop (handshakes run off-loop, same
                # as for accepted connections).
                threading.Thread(
                    target=self._refuse_busy, args=(conn, reason),
                    name=f"refuse:{self.address}", daemon=True).start()
                continue
            self._active_connections += 1
            self.connections_accepted += 1
            thread = threading.Thread(
                target=self._serve_producer, args=(conn,),
                name=f"producer:{self.address}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _refuse_busy(self, conn: socket.socket, reason: str) -> None:
        try:
            conn.settimeout(1.0)
            if self.ssl_context is not None:
                conn = self.ssl_context.wrap_socket(
                    conn, server_side=True)
            write_frame(conn, {"type": "error", "retryable": True,
                               "reason": reason})
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _write(self, conn: socket.socket, obj: dict) -> bool:
        """Write one ack/error frame under the write deadline.

        Returns False (after counting the eviction) when the client
        stopped draining its socket for ``write_deadline`` seconds --
        the caller must drop the connection instead of wedging its
        reader thread on a dead peer.
        """
        if self.write_deadline is not None:
            try:
                conn.settimeout(self.write_deadline)
            except OSError:
                return False
        try:
            write_frame(conn, obj)
            return True
        except socket.timeout:
            self.slow_clients_evicted += 1
            return False
        except OSError:
            return False
        finally:
            try:
                conn.settimeout(None)
            except OSError:
                pass

    def _divert(self, source_name: str, detail: str, raw: object,
                reason: str = REASON_UNPARSABLE) -> None:
        self.decode_errors += 1
        hook = self.on_decode_error
        if hook is not None:
            hook(source_name, detail, raw, reason)

    def _handshake(self, conn: socket.socket, reader: FrameReader,
                   ) -> tuple[SocketSource, bool, str | None] | None:
        """Validate a hello; returns ``(source, batch, session)``.

        A v2 hello negotiates capabilities and the batch frame cap: the
        reply echoes the intersection of what both sides support, and
        ``reader.max_frame_bytes`` is raised to the granted cap only
        after the hello is accepted.  Unknown capability tokens are
        ignored on both sides, so a peer asking for something this
        build does not know simply does not get it -- and a peer that
        cannot speak any accepted protocol version gets an error frame
        it can use to fall back to v1.

        The ok ack always carries ``"cursor"``, the source's highest
        contiguously received sequence number: a reconnecting producer
        resumes from ``cursor + 1``.  When the listener holds an auth
        token, the hello's ``"auth"`` must match it (constant-time
        compare) or the connection is refused ``unauthorized``.
        """
        hello = reader.read_message()
        if hello is None:
            return None
        if hello.get("type") != "hello":
            self._write(conn, {"type": "error",
                               "reason": "expected a hello frame"})
            return None
        if self.auth_token is not None:
            offered = hello.get("auth")
            if not isinstance(offered, str) or not hmac.compare_digest(
                    offered.encode("utf-8"),
                    self.auth_token.encode("utf-8")):
                self.auth_failures += 1
                self.connections_refused += 1
                self._write(conn, {"type": "error",
                                   "reason": "unauthorized: hello auth "
                                             "token missing or wrong"})
                return None
        proto = hello.get("protocol")
        if proto not in self.protocols:
            self._write(conn, {"type": "error",
                               "reason": f"unsupported protocol "
                                         f"{proto!r} (accepted: "
                                         f"{list(self.protocols)})"})
            return None
        name = hello.get("source")
        source = self._sources.get(name)
        if source is None:
            self.connections_refused += 1
            self._write(conn, {"type": "error",
                               "reason": f"unexpected source {name!r} "
                                         f"(expected "
                                         f"{sorted(self._sources)})"})
            return None
        session = hello.get("session")
        if session is not None:
            session = str(session)
        if not source.attach_producer(session):
            self.connections_refused += 1
            self._write(conn, {"type": "error",
                               "reason": f"source {name!r} already "
                                         f"finished"})
            return None
        batch = False
        ok: dict = {"type": "ok", "protocol": proto, "source": name,
                    "cursor": source.acked_seq}
        if session is not None:
            ok["session"] = session
        if proto >= PROTOCOL_V2:
            asked = hello.get("capabilities") or ()
            granted = [c for c in (CAP_BATCH, CAP_ZLIB) if c in asked]
            batch = CAP_BATCH in granted
            try:
                want = int(hello.get("max_frame_bytes", MAX_FRAME_BYTES))
            except (TypeError, ValueError):
                want = MAX_FRAME_BYTES
            cap = max(4096, min(want, self.max_batch_frame_bytes))
            ok["capabilities"] = granted
            ok["max_frame_bytes"] = cap
        if not self._write(conn, ok):
            return None
        if batch:
            reader.max_frame_bytes = cap
        return source, batch, session

    def _refuse_seq(self, conn: socket.socket, source: SocketSource,
                    disposition: str, seq: object) -> None:
        """Answer a gap/finished admission and drop the connection.

        A gap means the producer and server disagree about the cursor
        (e.g. a relay producer racing ahead of its predecessor, or a
        resend past a corrupt frame): the refusal carries the cursor so
        a well-behaved client backs off, reconnects, and resumes from
        the right place.
        """
        if disposition == "gap":
            self.sequence_gaps += 1
            reason = (f"sequence gap on {source.name!r}: got seq {seq!r} "
                      f"with cursor {source.acked_seq}")
        else:
            reason = f"source {source.name!r} already finished"
        self._write(conn, {"type": "error", "reason": reason,
                           "retryable": True,
                           "cursor": source.acked_seq})

    def _serve_producer(self, conn: socket.socket) -> None:
        received = 0
        source: SocketSource | None = None
        perf = time.perf_counter
        try:
            if self.ssl_context is not None:
                try:
                    conn.settimeout(self.write_deadline or 30.0)
                    conn = self.ssl_context.wrap_socket(conn,
                                                        server_side=True)
                    conn.settimeout(None)
                except OSError:
                    # A plaintext or mis-certified client: there is no
                    # channel to answer on, so count and drop.
                    self.tls_handshake_failures += 1
                    self.connections_refused += 1
                    return
            reader = FrameReader(conn)
            try:
                negotiated = self._handshake(conn, reader)
            except (FrameError, OSError):
                return
            if negotiated is None:
                return
            source, allow_batch, session = negotiated
            while True:
                try:
                    frame = reader.read()
                except FrameError as exc:
                    # A torn or garbled frame ends the connection: past
                    # the tear there is no sync point, so everything
                    # already decoded stays delivered and the rest is
                    # one diverted record, not a poisoned stream.  A
                    # sequenced producer reconnects, learns the cursor,
                    # and resends from the tear -- nothing is lost.
                    self._divert(source.name, f"FrameError: {exc}", None)
                    return
                if frame is None:
                    return  # producer vanished without end; may reconnect
                if type(frame) is BinaryFrame:
                    # Decode happens here, in this connection's reader
                    # thread, *before* the merge: per-connection decode
                    # is what lets multiple producers overlap instead of
                    # serializing inside the engine loop.
                    if not allow_batch:
                        self._divert(source.name,
                                     "binary frame without negotiated "
                                     "batch capability", None,
                                     REASON_CORRUPT_FRAME)
                        continue
                    t0 = perf()
                    try:
                        batch = decode_batch(frame)
                    except BatchFormatError as exc:
                        # The envelope framed the payload correctly, so
                        # the stream is still in sync: divert the frame
                        # as one dead-letter record and keep reading.
                        # (If the batch was sequenced, its seq was
                        # unreadable too, so the *next* frame leaves a
                        # gap and the producer resends past the damage
                        # on a fresh connection -- corruption costs a
                        # round-trip, never an event.)
                        self._divert(source.name,
                                     f"BatchFormatError: {exc}", None,
                                     REASON_CORRUPT_FRAME)
                        continue
                    self.decode_seconds.append(perf() - t0)
                    disposition, dup_rows = source.admit_batch(
                        batch, batch.first_seq)
                    if dup_rows:
                        self.duplicates_discarded += dup_rows
                    if disposition in ("gap", "finished"):
                        self._refuse_seq(conn, source, disposition,
                                         batch.first_seq)
                        return
                    self.batches_received += 1
                    self.batch_rows_received += batch.n
                    received += batch.n
                    continue
                ftype = frame.get("type")
                if ftype == "event":
                    seq = frame.get("seq")
                    if seq is not None:
                        try:
                            seq = int(seq)
                        except (TypeError, ValueError):
                            self._divert(source.name,
                                         f"bad seq {seq!r}", frame)
                            continue
                        if seq <= source.acked_seq:
                            # Cheap dedupe before any decode work.
                            source.duplicate_rows += 1
                            self.duplicates_discarded += 1
                            continue
                    try:
                        event = decode_event(frame)
                    except (KeyError, ValueError, TypeError) as exc:
                        # Divert WITHOUT advancing the cursor: the next
                        # in-sequence frame now leaves a gap, the
                        # connection is refused, and the producer
                        # resends this event on reconnect -- so a
                        # transiently corrupted value costs one
                        # dead-letter record and a round-trip, not the
                        # event.
                        self._divert(source.name,
                                     f"{type(exc).__name__}: {exc}", frame)
                        continue
                    disposition = source.admit_event(event, seq)
                    if disposition == "dup":
                        self.duplicates_discarded += 1
                        continue
                    if disposition in ("gap", "finished"):
                        self._refuse_seq(conn, source, disposition, seq)
                        return
                    received += 1
                elif ftype == "end":
                    if not self._write(conn, {"type": "ok",
                                              "received": received,
                                              "cursor": source.acked_seq}):
                        return  # ack undeliverable; end not counted
                    source.producer_ended(session)
                    return
                else:
                    self._divert(source.name,
                                 f"unknown frame type {ftype!r}", frame)
        finally:
            self._active_connections += -1
            try:
                conn.close()
            except OSError:
                pass

    def describe(self) -> dict:
        return {
            "address": self.address,
            "closed": self.closed,
            "connections_accepted": int(self.connections_accepted),
            "connections_refused": int(self.connections_refused),
            "decode_errors": int(self.decode_errors),
            "batches_received": int(self.batches_received),
            "batch_rows_received": int(self.batch_rows_received),
            "duplicates_discarded": int(self.duplicates_discarded),
            "sequence_gaps": int(self.sequence_gaps),
            "busy_refusals": int(self.busy_refusals),
            "auth_failures": int(self.auth_failures),
            "slow_clients_evicted": int(self.slow_clients_evicted),
            "tls_handshake_failures": int(self.tls_handshake_failures),
            "active_connections": int(self._active_connections),
            "sources": {name: src.describe()
                        for name, src in self._sources.items()},
        }


class SequenceLedger:
    """Maps the engine's global consumed-event count to per-source seqs.

    The durable cursor problem: a checkpoint stores *one* number -- how
    many merged events the service consumed -- but producers resume by
    *per-source* sequence number.  Engine counters cannot be decomposed
    after the fact (events sitting in merge heads or diverted rows
    would be mis-attributed), so the ledger records the decomposition
    as it happens: the stream wrapper notes which source every merged
    item came from and which sequence number consuming it (and any
    quarantine-diverted rows before it) covers, and
    :meth:`snapshot` walks those entries up to the checkpoint's
    consumed count to produce exact per-source cursors -- including a
    cut *inside* a batch run, where ``orig_rows`` recovers the wire
    offset of the k-th surviving row.

    Single-threaded by construction: entries are appended by the
    engine thread as it pulls the merge, and snapshots run inside the
    engine's checkpoint hook.  Consecutive single events from one
    source with contiguous seqs coalesce into one entry, so the ledger
    stays O(batches + diversion boundaries), not O(events).
    """

    def __init__(self, names: Iterable[str],
                 start_seqs: Mapping[str, int]) -> None:
        self.watermarks: dict[str, int] = {
            name: int(start_seqs.get(name, 0)) for name in names}
        #: Consumed-count offset: the service's ``cursor`` at the point
        #: this ledger started observing the stream (resume support).
        self.origin = 0
        # Entry: (cum_end, source, wm_full, first_seq, orig_rows, lo).
        # ``first_seq is None`` marks a coalesced run of single events
        # (contiguous seqs ending at wm_full).
        self._entries: deque = deque()
        self._cum = 0    # rows yielded to the engine since origin
        self._done = 0   # cum_end of the last fully resolved entry

    def note_run(self, name: str, run) -> None:
        """Record one merged :class:`BatchRun` in engine order."""
        batch = run.batch
        hi = run.hi
        orig = batch.orig_rows
        if hi >= batch.n:
            # The last run of a batch also covers any trailing diverted
            # rows: the whole wire width is consumed once this run is.
            wm = batch.first_seq + batch.seq_width - 1
        else:
            wm = batch.first_seq + (int(orig[hi - 1]) if orig is not None
                                    else hi - 1)
        self._cum += run.n_rows
        self._entries.append((self._cum, name, wm, batch.first_seq,
                              orig, run.lo))

    def note_event(self, name: str, seq: int) -> None:
        """Record one merged single event whose consumption covers
        sequence numbers up to ``seq`` (diverted predecessors included).
        """
        self._cum += 1
        entries = self._entries
        if entries:
            last = entries[-1]
            if last[1] == name and last[3] is None and last[2] == seq - 1:
                entries[-1] = (self._cum, name, seq, None, None, 0)
                return
        entries.append((self._cum, name, seq, None, None, 0))

    def snapshot(self, consumed: int) -> dict:
        """Per-source cursors after the engine consumed ``consumed``
        merged events (the number a checkpoint stores as ``cursor``).
        """
        c = consumed - self.origin
        dq = self._entries
        wm = self.watermarks
        while dq and dq[0][0] <= c:
            cum_end, name, wm_full, _fs, _orig, _lo = dq.popleft()
            wm[name] = wm_full
            self._done = cum_end
        if dq and c > self._done:
            cum_end, name, wm_full, fs, orig, lo = dq[0]
            if fs is None:
                # Coalesced single events with contiguous seqs.
                wm[name] = wm_full - (cum_end - c)
            else:
                row = lo + (c - self._done) - 1
                wm[name] = fs + (int(orig[row]) if orig is not None
                                 else row)
        return {"source_seqs": {k: int(v) for k, v in wm.items()},
                "cursor": int(consumed)}


class NetworkEventStream(ReliableEventStream):
    """A listener's sources behind the standard quarantined merge.

    Construction wires the listener's decode-error hook into the shared
    quarantine (reason code ``unparsable_row`` for JSON rows, matching
    a malformed trace line; ``corrupt_frame`` for a binary batch that
    fails its CRC or self-checks), then overrides the merge with the
    *hybrid* variant: each source is guarded by ``guard_hybrid`` (single
    events and columnar batches alike) and merged by the run-granular
    k-way merge, which yields ``StreamEvent`` and ``BatchRun`` items in
    exactly the order the per-event merge would yield the underlying
    events.  ``report()`` has the same shape for socket-fed and
    file-fed servers.

    The stream also feeds the :class:`SequenceLedger`:
    ``sequence_snapshot`` is the hook a
    :class:`~repro.server.tenants.MultiTenantService` calls at every
    checkpoint to persist per-source cursors.  On a resumed server,
    set :attr:`origin` to the restored service cursor before iterating.
    """

    def __init__(self, listener: SocketListener, *,
                 quarantine=None, known_uids=None, dead_letter=None) -> None:
        super().__init__(sources=listener.sources(), quarantine=quarantine,
                         known_uids=known_uids, dead_letter=dead_letter)
        self.listener = listener
        self.ledger = SequenceLedger(
            (s.name for s in self.sources),
            {s.name: s.start_seq for s in self.sources})

        def on_decode_error(source: str, detail: str, raw: object,
                            reason: str = REASON_UNPARSABLE) -> None:
            self.quarantine.divert(source, reason, detail, raw)

        listener.on_decode_error = on_decode_error

    @property
    def origin(self) -> int:
        return self.ledger.origin

    @origin.setter
    def origin(self, consumed: int) -> None:
        self.ledger.origin = int(consumed)

    def sequence_snapshot(self, consumed: int) -> dict:
        """Checkpoint hook: exact per-source cursors at ``consumed``."""
        return self.ledger.snapshot(consumed)

    def _provenance(self, source: SocketSource,
                    guarded: Iterator, pending: dict) -> Iterator:
        """Tag every guarded item with its source + covered seq."""
        for item in guarded:
            if type(item) is EventBatch:
                pending[id(item)] = source.name
            else:
                # ``last_seq`` covers this event and every row the
                # quarantine diverted before it (the guard has no
                # lookahead, so the source's counter is exact here).
                pending[id(item)] = (source.name, source.last_seq)
            yield item

    def _sequenced(self, merged: Iterator, pending: dict) -> Iterator:
        ledger = self.ledger
        for item in merged:
            if type(item) is BatchRun:
                batch = item.batch
                name = pending[id(batch)]
                ledger.note_run(name, item)
                if item.hi >= batch.n:
                    del pending[id(batch)]
            else:
                name, seq = pending.pop(id(item))
                ledger.note_event(name, seq)
            yield item

    def __iter__(self) -> Iterator:
        pending: dict = {}
        merged = merge_stream_items(
            self._provenance(source, self.quarantine.guard_hybrid(
                source.name, source), pending)
            for source in self.sources)
        return self._sequenced(merged, pending)

    def report(self) -> dict:
        out = super().report()
        out["listener"] = {
            "address": self.listener.address,
            "closed": self.listener.closed,
            "connections_accepted": int(self.listener.connections_accepted),
            "connections_refused": int(self.listener.connections_refused),
            "decode_errors": int(self.listener.decode_errors),
            "batches_received": int(self.listener.batches_received),
            "batch_rows_received": int(self.listener.batch_rows_received),
            "duplicates_discarded": int(self.listener.duplicates_discarded),
            "sequence_gaps": int(self.listener.sequence_gaps),
            "busy_refusals": int(self.listener.busy_refusals),
            "auth_failures": int(self.listener.auth_failures),
            "slow_clients_evicted":
                int(self.listener.slow_clients_evicted),
        }
        return out


# ---------------------------------------------------------------------------
# the producing side: the publish client


class PublishRefused(ConnectionError):
    """The server answered the handshake or end with an error frame.

    ``retryable`` says whether backing off and reconnecting can help:
    True for ``busy`` (quota), gaps, and transient refusals; False for
    ``unauthorized`` and ``unexpected source``, where retrying the same
    credentials/config would loop forever.
    """

    def __init__(self, message: str, *, retryable: bool = True) -> None:
        super().__init__(message)
        self.retryable = retryable


_FATAL_REFUSALS = ("unauthorized", "unexpected source")


def _refusal_error(context: str, refusal: object) -> PublishRefused:
    text = refusal if isinstance(refusal, str) else repr(refusal)
    retryable = not any(marker in text for marker in _FATAL_REFUSALS)
    return PublishRefused(f"{context}: {text}", retryable=retryable)


def _backoff_delays(interval: float, cap: float,
                    rng: random.Random) -> Iterator[float]:
    """Jittered exponential backoff: ``interval * 2^k`` capped at
    ``cap``, each scaled by a uniform factor in [0.5, 1.0)."""
    attempt = 0
    while True:
        base = min(cap, interval * (1 << min(attempt, 16)))
        yield base * (0.5 + 0.5 * rng.random())
        attempt += 1


def publish_events(address: str, source: str,
                   events: Iterable[StreamEvent] | Callable[[], Iterable],
                   *, producer: str = "publish",
                   batch_size: int = DEFAULT_BATCH_EVENTS,
                   compress: bool = False,
                   retry_for: float = 0.0, retry_interval: float = 0.2,
                   retry_cap: float = 5.0, retry_seed: int | None = None,
                   connect_timeout: float = 10.0,
                   session: str | None = None, seq_offset: int = 0,
                   auth_token: str | None = None,
                   ssl_context=None,
                   stats: dict | None = None,
                   sleep: Callable[[float], None] = time.sleep,
                   clock: Callable[[], float] = time.monotonic) -> int:
    """Stream ``events`` to a server as one producer of ``source``.

    ``events`` may be an iterable or (for retryable publishes) a
    zero-argument factory returning a fresh iterable per attempt; plain
    lists/tuples are re-iterated automatically.  Events are numbered
    ``seq_offset + 1, seq_offset + 2, ...`` on the wire, and each
    attempt *resumes from the server's cursor*: the hello ack reports
    the highest sequence number the server holds contiguously, the
    client skips that many events, and sends the rest -- so with
    ``retry_for > 0`` a dropped connection (or a server crash-and-
    resume) costs a reconnect, not a replay, and every event still
    lands exactly once.  Failed attempts back off with jittered
    exponential delays (``retry_interval * 2^k`` capped at
    ``retry_cap``; seed ``retry_seed`` for deterministic schedules in
    tests) until the ``retry_for`` window closes.  Non-retryable
    refusals (``unauthorized``, unknown source) raise immediately.

    ``seq_offset`` supports relay/handoff topologies: a producer
    carrying the *second* slice of a source (events ``k+1 .. n``)
    publishes with ``seq_offset=k`` and is automatically held off
    (retryable refusal) until its predecessor's slice is ingested.

    ``stats``, when given, collects client-side chaos telemetry:
    ``attempts``, ``retries``, and ``recovery_seconds`` (failure ->
    next successful handshake latencies, the reconnect-recovery tail
    the net-ingest bench reports).

    ``batch_size > 0`` (the default) offers protocol v2: events are
    accumulated into columnar binary batch frames of that many rows
    (zlib-compressed when ``compress`` and the server grants the
    capability).  A server that refuses v2, or acks without the batch
    capability, gets v1 JSON event frames instead -- same events, same
    order, just slower; ``batch_size=0`` forces that compat path.

    Returns the number of events of this producer's range the server
    acked at ``end`` (i.e. everything landed, however many attempts it
    took).
    """
    factory = (events if callable(events)
               else (lambda: events) if isinstance(events, (list, tuple))
               else None)
    if session is None:
        session = f"{producer}:{os.getpid():x}:{os.urandom(4).hex()}"
    delays = _backoff_delays(retry_interval, retry_cap,
                             random.Random(retry_seed))
    deadline = clock() + retry_for
    last_failure: list[float | None] = [None]

    def on_connected() -> None:
        if stats is not None:
            stats["attempts"] = stats.get("attempts", 0) + 1
            if last_failure[0] is not None:
                stats.setdefault("recovery_seconds", []).append(
                    clock() - last_failure[0])
        last_failure[0] = None

    while True:
        try:
            return _publish_once(address, source,
                                 factory() if factory else events,
                                 producer, connect_timeout,
                                 batch_size, compress,
                                 session=session, seq_offset=seq_offset,
                                 auth_token=auth_token,
                                 ssl_context=ssl_context,
                                 on_connected=on_connected)
        except (OSError, FrameError, PublishRefused) as exc:
            if isinstance(exc, PublishRefused) and not exc.retryable:
                raise
            if factory is None or clock() >= deadline:
                raise
            last_failure[0] = clock()
            if stats is not None:
                stats["retries"] = stats.get("retries", 0) + 1
            sleep(next(delays))


def _publish_once(address: str, source: str, events: Iterable,
                  producer: str, connect_timeout: float,
                  batch_size: int = 0, compress: bool = False, *,
                  session: str | None = None, seq_offset: int = 0,
                  auth_token: str | None = None, ssl_context=None,
                  on_connected: Callable[[], None] | None = None) -> int:
    sock = connect_socket(address, timeout=connect_timeout,
                          ssl_context=ssl_context)
    try:
        reader = FrameReader(sock)
        want_batch = batch_size > 0
        hello: dict = {"type": "hello", "source": source,
                       "producer": producer}
        if session is not None:
            hello["session"] = session
        if auth_token is not None:
            hello["auth"] = auth_token
        if want_batch:
            hello["protocol"] = PROTOCOL_V2
            hello["capabilities"] = ([CAP_BATCH, CAP_ZLIB] if compress
                                     else [CAP_BATCH])
            hello["max_frame_bytes"] = BATCH_MAX_FRAME_BYTES
        else:
            hello["protocol"] = PROTOCOL_V1
        write_frame(sock, hello)
        ack = reader.read_message()
        if ack is None or ack.get("type") != "ok":
            refusal = (ack or {}).get("reason", "connection closed")
            if want_batch and isinstance(refusal, str) \
                    and "unsupported protocol" in refusal:
                # v1-only server: reconnect on the compat path.
                return _publish_once(address, source, events, producer,
                                     connect_timeout, 0, False,
                                     session=session,
                                     seq_offset=seq_offset,
                                     auth_token=auth_token,
                                     ssl_context=ssl_context,
                                     on_connected=on_connected)
            raise _refusal_error(
                f"server refused producer of {source!r}", refusal)
        cursor = int(ack.get("cursor", seq_offset))
        skip = cursor - seq_offset
        if skip < 0:
            # Relay topology: our slice starts after the server cursor;
            # the predecessor producer has not caught up yet.  Back off
            # and retry rather than punching a sequence gap.
            raise PublishRefused(
                f"server cursor {cursor} for {source!r} is behind this "
                f"producer's seq offset {seq_offset}; predecessor still "
                f"publishing", retryable=True)
        if on_connected is not None:
            on_connected()
        granted = ack.get("capabilities") or ()
        use_batch = (want_batch and CAP_BATCH in granted
                     and ack.get("protocol") == PROTOCOL_V2)
        sock.settimeout(None)  # streaming may block on backpressure
        it = iter(events)
        if skip:
            # Already delivered (a previous attempt/incarnation):
            # resume from cursor + 1 instead of resending.
            next(itertools.islice(it, skip - 1, skip), None)
        next_seq = cursor + 1
        if use_batch:
            try:
                frame_cap = int(ack.get("max_frame_bytes",
                                        MAX_FRAME_BYTES))
            except (TypeError, ValueError):
                frame_cap = MAX_FRAME_BYTES
            use_zlib = compress and CAP_ZLIB in granted
            # Flush early if the estimated payload nears the cap, so a
            # pathological path-heavy batch never overflows the frame.
            soft_cap = max(4096, frame_cap // 2)
            builder = BatchBuilder()
            # Accumulate in slabs so the per-event work runs in the
            # builder's hoisted bulk loop; the cap checks between slabs
            # keep frames within the negotiated budget.
            slab = max(1, min(batch_size, 2048))
            while True:
                before = len(builder)
                builder.extend(itertools.islice(it, slab))
                added = len(builder) - before
                if not added:
                    break
                if len(builder) >= batch_size \
                        or builder.approx_bytes >= soft_cap:
                    sock.sendall(encode_batch_frame(
                        encode_batch(builder.build(), compress=use_zlib,
                                     seq=next_seq),
                        frame_cap))
                    next_seq += len(builder)
                    builder = BatchBuilder()
            if len(builder):
                sock.sendall(encode_batch_frame(
                    encode_batch(builder.build(), compress=use_zlib,
                                 seq=next_seq),
                    frame_cap))
                next_seq += len(builder)
        else:
            for event in it:
                frame = encode_event(event)
                frame["seq"] = next_seq
                write_frame(sock, frame)
                next_seq += 1
        write_frame(sock, {"type": "end"})
        ack = reader.read_message()
        if ack is None or ack.get("type") != "ok":
            raise _refusal_error(
                f"server did not ack end of {source!r}",
                (ack or {}).get("reason", "connection closed"))
        return int(ack.get("cursor", next_seq - 1)) - seq_offset
    finally:
        try:
            sock.close()
        except OSError:
            pass


def publish_batches(address: str, source: str,
                    batches: Iterable[EventBatch | bytes] |
                    Callable[[], Iterable],
                    *, producer: str = "publish",
                    compress: bool = False,
                    connect_timeout: float = 10.0,
                    frame_cap: int = MAX_FRAME_BYTES,
                    session: str | None = None, seq_offset: int = 0,
                    auth_token: str | None = None, ssl_context=None,
                    sequenced: bool = True,
                    retry_for: float = 0.0, retry_interval: float = 0.2,
                    retry_cap: float = 5.0, retry_seed: int | None = None,
                    sleep: Callable[[float], None] = time.sleep,
                    clock: Callable[[], float] = time.monotonic) -> int:
    """Stream pre-built columnar batches to a v2 server, hello pipelined.

    The load-generator variant of :func:`publish_events`: the caller
    already holds :class:`EventBatch` objects (or raw ``encode_batch``
    payload bytes from a frame capture), so no per-event Python runs on
    the wire path.  The ``hello`` is *pipelined* -- batch frames follow
    it immediately without waiting for the ack, and both acks (hello,
    end) are collected after the last frame.  That keeps a k-way server
    merge from idling on per-connection handshake round-trips when many
    producers connect at once.

    With ``sequenced`` (the default), :class:`EventBatch` items are
    numbered cumulatively from ``seq_offset`` so pipelining stays
    exactly-once: a retried publish resends everything and the server's
    edge dedupe discards the rows it already holds -- no cursor
    round-trip needed before streaming.  Raw byte payloads travel
    verbatim (their seq, if any, was baked in by ``encode_batch``).
    ``retry_for > 0`` retries failed publishes with the same jittered
    exponential backoff as :func:`publish_events` (requires a callable
    ``batches`` factory or a re-iterable list/tuple).

    No v1 fallback exists on this path: a server that refuses protocol
    v2 fails the publish with :class:`PublishRefused`.  Returns the
    number of events sent (raw byte payloads count zero -- the caller
    already knows).
    """
    factory = (batches if callable(batches)
               else (lambda: batches)
               if isinstance(batches, (list, tuple)) else None)
    if session is None:
        session = f"{producer}:{os.getpid():x}:{os.urandom(4).hex()}"
    delays = _backoff_delays(retry_interval, retry_cap,
                             random.Random(retry_seed))
    deadline = clock() + retry_for
    while True:
        try:
            return _publish_batches_once(
                address, source, factory() if factory else batches,
                producer, compress, connect_timeout, frame_cap,
                session=session, seq_offset=seq_offset,
                auth_token=auth_token, ssl_context=ssl_context,
                sequenced=sequenced)
        except (OSError, FrameError, PublishRefused) as exc:
            if isinstance(exc, PublishRefused) and not exc.retryable:
                raise
            if factory is None or clock() >= deadline:
                raise
            sleep(next(delays))


def _publish_batches_once(address: str, source: str, batches: Iterable,
                          producer: str, compress: bool,
                          connect_timeout: float, frame_cap: int, *,
                          session: str | None, seq_offset: int,
                          auth_token: str | None, ssl_context,
                          sequenced: bool) -> int:
    sock = connect_socket(address, timeout=connect_timeout,
                          ssl_context=ssl_context)
    try:
        reader = FrameReader(sock)
        hello: dict = {"type": "hello", "source": source,
                       "producer": producer, "protocol": PROTOCOL_V2,
                       "capabilities": ([CAP_BATCH, CAP_ZLIB]
                                        if compress else [CAP_BATCH]),
                       "max_frame_bytes": int(frame_cap)}
        if session is not None:
            hello["session"] = session
        if auth_token is not None:
            hello["auth"] = auth_token
        write_frame(sock, hello)
        sock.settimeout(None)  # streaming may block on backpressure
        sent = 0
        next_seq = seq_offset + 1
        try:
            for batch in batches:
                if isinstance(batch, (bytes, bytearray)):
                    payload = bytes(batch)
                else:
                    sent += batch.n
                    payload = encode_batch(
                        batch, compress=compress,
                        seq=next_seq if sequenced else None)
                    next_seq += batch.n
                sock.sendall(encode_batch_frame(payload, int(frame_cap)))
            write_frame(sock, {"type": "end"})
        except OSError:
            pass  # a refusal closes the socket; the acks say why
        for stage in ("hello", "end"):
            ack = reader.read_message()
            if ack is None or ack.get("type") != "ok":
                raise _refusal_error(
                    f"server refused {stage} of batch publish to "
                    f"{source!r}",
                    (ack or {}).get("reason", "connection closed"))
        return sent
    finally:
        try:
            sock.close()
        except OSError:
            pass


def workspace_source_factory(directory: str,
                             source: str) -> Callable[[], Iterator]:
    """A replayable event factory for one of a workspace's trace files."""
    import os

    from ..traces.io import read_app_log, read_jobs, read_publications

    if source == "jobs":
        return lambda: job_events(
            read_jobs(os.path.join(directory, "jobs.txt.gz")))
    if source == "publications":
        return lambda: publication_events(
            read_publications(os.path.join(directory,
                                           "publications.txt.gz")))
    if source == "accesses":
        return lambda: access_events(
            read_app_log(os.path.join(directory, "app_log.txt.gz")))
    raise ValueError(f"unknown workspace source {source!r} "
                     f"(expected one of {DEFAULT_SOURCES})")


def publish_workspace(address: str, directory: str, *,
                      sources: Iterable[str] = DEFAULT_SOURCES,
                      producer: str = "publish",
                      batch_size: int = DEFAULT_BATCH_EVENTS,
                      compress: bool = False,
                      retry_for: float = 0.0,
                      retry_interval: float = 0.2,
                      retry_cap: float = 5.0,
                      retry_seed: int | None = None,
                      auth_token: str | None = None,
                      ssl_context=None,
                      stats: dict | None = None) -> dict[str, int]:
    """Publish a workspace's trace files concurrently, one per source.

    Concurrency is load-bearing, not an optimization: the server's merge
    needs the head event of *every* source before it can emit anything,
    so a sequential publish of a trace larger than one queue bound would
    deadlock against backpressure.  Returns ``{source: events_sent}``;
    re-raises the first failure after all threads have stopped.
    ``stats``, when given, gains one per-source sub-dict of client
    retry/recovery telemetry (see :func:`publish_events`).
    """
    results: dict[str, int] = {}
    errors: list[BaseException] = []

    def worker(name: str) -> None:
        try:
            source_stats: dict | None = None
            if stats is not None:
                source_stats = stats.setdefault(name, {})
            results[name] = publish_events(
                address, name, workspace_source_factory(directory, name),
                producer=f"{producer}:{name}", batch_size=batch_size,
                compress=compress, retry_for=retry_for,
                retry_interval=retry_interval, retry_cap=retry_cap,
                retry_seed=retry_seed, auth_token=auth_token,
                ssl_context=ssl_context, stats=source_stats)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(name,),
                                name=f"publish:{name}", daemon=True)
               for name in sources]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results
