"""Socket ingestion: many producers, one quarantined ordered merge.

:class:`SocketListener` accepts producer connections on a TCP or Unix
socket.  Each producer handshakes with a ``hello`` frame naming the
**source** it feeds (``jobs``, ``publications``, ``accesses``, or any
shard name the server was told to expect), then streams event frames.
A reader thread per connection decodes frames and appends the events to
that source's bounded queue -- the bound is the backpressure valve: when
the engine falls behind, queues fill, reader threads block on ``put``,
and TCP flow control pushes back on the producers.

:class:`SocketSource` is the consuming half: a named, health-tracked
iterator draining one source queue, satisfying the same contract the
file-backed :class:`~repro.stream.reliability.sources.ResilientSource`
satisfies, so :class:`NetworkEventStream` can reuse the reliability
layer's quarantined ``heapq.merge`` unchanged.  **Out-of-order events
hit the quarantine, never the engine**: every socket source is guarded
by the shared :class:`~repro.stream.reliability.quarantine.EventQuarantine`
before the merge, so a producer that regresses in time, redelivers a
job id, or ships garbage gets its offending events dead-lettered while
the stream stays clean.

Determinism contract: with one producer per source, each source's event
order is the producer's send order (TCP preserves it), and the merge
breaks timestamp ties by source listing order -- so publishing a
workspace's three trace files over three connections reconstructs
*exactly* the sequence ``workspace_event_stream`` yields from disk,
which is what keeps networked runs bit-identical to batch.  Multiple
concurrent producers per source are accepted (their events interleave
at queue order) for throughput workloads that do not need bit-identity.

A source *finishes* when as many producers as the server expects have
sent ``end`` frames; when every source has finished, the merge is
exhausted and the engine finalizes.  A producer that reconnects to an
already-finished source is refused with an error frame -- late
re-publishes after a crash/resume cycle belong to a *restarted* server,
whose sources are fresh.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from collections import deque
from typing import Callable, Iterable, Iterator, Mapping

from ..stream.batch import BatchBuilder, EventBatch, merge_stream_items
from ..stream.events import StreamEvent, job_events, publication_events, access_events
from ..stream.reliability.quarantine import (REASON_CORRUPT_FRAME,
                                             REASON_UNPARSABLE)
from ..stream.reliability.sources import ReliableEventStream, SourceHealth
from .metrics import Counter
from .protocol import (BATCH_MAX_FRAME_BYTES, CAP_BATCH, CAP_ZLIB,
                       MAX_FRAME_BYTES, PROTOCOL_V1, PROTOCOL_V2,
                       SUPPORTED_PROTOCOLS, BatchFormatError, BinaryFrame,
                       FrameError, FrameReader, connect_socket,
                       create_listener, decode_batch, decode_event,
                       encode_batch, encode_batch_frame, encode_event,
                       write_frame)

__all__ = ["DEFAULT_SOURCES", "DEFAULT_BATCH_EVENTS", "SocketSource",
           "SocketListener", "NetworkEventStream", "publish_events",
           "publish_batches", "publish_workspace"]

#: The canonical trace families, in merge tie-break order.
DEFAULT_SOURCES = ("jobs", "publications", "accesses")

#: Default events per binary batch frame.  Big enough to amortize the
#: per-frame fixed costs (syscall, CRC, column headers, one validation
#: and intern pass per batch) to noise, small enough that a batch stays
#: well under the negotiated frame cap (a full batch encodes to well
#: under half the v1 1 MiB bound) and the merge granularity stays far
#: below a trigger day.
DEFAULT_BATCH_EVENTS = 8192

_END = object()  # queue sentinel: the source has finished


class SocketSource:
    """One named event source fed by producer connections.

    Iterating blocks on the queue until events arrive or the source
    finishes.  ``pos``/``last_event``/``watermark``/``health`` mirror
    :class:`ResilientSource` so the reliability report treats socket and
    file sources uniformly.
    """

    def __init__(self, name: str, expected_producers: int = 1,
                 queue_size: int = 10_000) -> None:
        if expected_producers < 1:
            raise ValueError("expected_producers must be >= 1")
        self.name = name
        self.expected_producers = expected_producers
        self.queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self.pos = 0                 # events yielded to the merge
        self.last_event: StreamEvent | None = None
        self.watermark: int | None = None
        self.health = SourceHealth.OK
        self.episodes = 0            # kept 0: sockets have no retry loop
        self.retries = 0
        self.last_error: str | None = None
        self.connected_producers = 0
        self.ended_producers = 0
        self._lock = threading.Lock()
        self._finished = threading.Event()

    # -- listener side -------------------------------------------------

    def attach_producer(self) -> bool:
        """Register one producer connection; False when already finished."""
        with self._lock:
            if self._finished.is_set():
                return False
            self.connected_producers += 1
            return True

    def producer_ended(self) -> None:
        """One producer sent ``end``; finish the source at the quota."""
        with self._lock:
            self.ended_producers += 1
            if self.ended_producers >= self.expected_producers:
                self._finished.set()
                self.queue.put(_END)

    def push(self, event: object) -> None:
        """Enqueue one decoded event (blocking -- the backpressure edge)."""
        self.queue.put(event)

    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    # -- merge side ----------------------------------------------------

    def __iter__(self) -> Iterator:
        while True:
            item = self.queue.get()
            if item is _END:
                return
            if type(item) is EventBatch:
                self.pos += item.n
                if item.n:
                    self.watermark = int(item.ts[-1])
                yield item
                continue
            self.pos += 1
            self.last_event = item
            ts = getattr(item, "ts", None)
            if type(ts) is int:
                self.watermark = ts
            yield item

    def describe(self) -> dict:
        return {
            "health": self.health.value,
            "pos": self.pos,
            "watermark": self.watermark,
            "retries": self.retries,
            "episodes": self.episodes,
            "last_error": self.last_error,
            "producers_connected": self.connected_producers,
            "producers_ended": self.ended_producers,
            "producers_expected": self.expected_producers,
            "finished": self.finished,
            "queued": self.queue.qsize(),
        }


class SocketListener:
    """Accepts producer connections and routes their events to sources.

    ``expected`` maps source name to the number of producers that must
    ``end`` before that source is considered complete (default: the
    three canonical trace families, one producer each).  Source listing
    order is the merge tie-break order, so callers that need the
    canonical activity-before-access ordering list jobs and publications
    before accesses -- :data:`DEFAULT_SOURCES` already does.
    """

    def __init__(self, address: str, *,
                 expected: Mapping[str, int] | Iterable[str] = DEFAULT_SOURCES,
                 queue_size: int = 10_000, backlog: int = 16,
                 protocols: Iterable[int] = SUPPORTED_PROTOCOLS,
                 max_batch_frame_bytes: int = BATCH_MAX_FRAME_BYTES) -> None:
        if not isinstance(expected, Mapping):
            expected = {name: 1 for name in expected}
        if not expected:
            raise ValueError("a listener needs at least one expected source")
        self.address = address
        #: Protocol versions this listener will accept in ``hello``;
        #: ``(1,)`` makes a v1-only server for fallback testing.
        self.protocols = tuple(protocols)
        #: Ceiling granted to v2 peers asking for a batch-frame cap.
        self.max_batch_frame_bytes = int(max_batch_frame_bytes)
        self._sources: dict[str, SocketSource] = {
            name: SocketSource(name, count, queue_size)
            for name, count in expected.items()}
        #: ``on_decode_error(source_name, detail, raw, reason)`` -- wired
        #: to the quarantine by :class:`NetworkEventStream`; a bare
        #: listener counts decode errors but has nowhere to divert them.
        self.on_decode_error: Callable[[str, str, object, str],
                                       None] | None = None
        # Lock-guarded counters: each is bumped from many concurrent
        # reader threads, where a plain int += would be a lost-update
        # race (int() them for JSON).
        self.decode_errors = Counter()
        self.connections_accepted = Counter()
        self.connections_refused = Counter()
        #: Per-batch decode wall seconds, appended by reader threads
        #: (deque appends are atomic); the admin plane and the bench
        #: derive p50/p95/p99 tails from this window.
        self.decode_seconds: deque[float] = deque(maxlen=4096)
        self.batches_received = Counter()
        self.batch_rows_received = Counter()
        self._sock = create_listener(address, backlog)
        self._closed = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"listener:{address}",
            daemon=True)
        self._accept_thread.start()

    # -- sources -------------------------------------------------------

    def sources(self) -> list[SocketSource]:
        """The expected sources, in declaration (= tie-break) order."""
        return list(self._sources.values())

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self) -> None:
        """Stop accepting; finish every unfinished source."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass
        for source in self._sources.values():
            if not source.finished:
                source._finished.set()
                source.queue.put(_END)

    def __enter__(self) -> "SocketListener":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- connection handling -------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            self.connections_accepted += 1
            thread = threading.Thread(
                target=self._serve_producer, args=(conn,),
                name=f"producer:{self.address}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _divert(self, source_name: str, detail: str, raw: object,
                reason: str = REASON_UNPARSABLE) -> None:
        self.decode_errors += 1
        hook = self.on_decode_error
        if hook is not None:
            hook(source_name, detail, raw, reason)

    def _handshake(self, conn: socket.socket, reader: FrameReader,
                   ) -> tuple[SocketSource, bool] | None:
        """Validate a hello; returns ``(source, batch_negotiated)``.

        A v2 hello negotiates capabilities and the batch frame cap: the
        reply echoes the intersection of what both sides support, and
        ``reader.max_frame_bytes`` is raised to the granted cap only
        after the hello is accepted.  Unknown capability tokens are
        ignored on both sides, so a peer asking for something this
        build does not know simply does not get it -- and a peer that
        cannot speak any accepted protocol version gets an error frame
        it can use to fall back to v1.
        """
        hello = reader.read_message()
        if hello is None:
            return None
        if hello.get("type") != "hello":
            write_frame(conn, {"type": "error",
                               "reason": "expected a hello frame"})
            return None
        proto = hello.get("protocol")
        if proto not in self.protocols:
            write_frame(conn, {"type": "error",
                               "reason": f"unsupported protocol "
                                         f"{proto!r} (accepted: "
                                         f"{list(self.protocols)})"})
            return None
        name = hello.get("source")
        source = self._sources.get(name)
        if source is None:
            self.connections_refused += 1
            write_frame(conn, {"type": "error",
                               "reason": f"unexpected source {name!r} "
                                         f"(expected "
                                         f"{sorted(self._sources)})"})
            return None
        if not source.attach_producer():
            self.connections_refused += 1
            write_frame(conn, {"type": "error",
                               "reason": f"source {name!r} already "
                                         f"finished"})
            return None
        batch = False
        ok: dict = {"type": "ok", "protocol": proto, "source": name}
        if proto >= PROTOCOL_V2:
            asked = hello.get("capabilities") or ()
            granted = [c for c in (CAP_BATCH, CAP_ZLIB) if c in asked]
            batch = CAP_BATCH in granted
            try:
                want = int(hello.get("max_frame_bytes", MAX_FRAME_BYTES))
            except (TypeError, ValueError):
                want = MAX_FRAME_BYTES
            cap = max(4096, min(want, self.max_batch_frame_bytes))
            ok["capabilities"] = granted
            ok["max_frame_bytes"] = cap
        write_frame(conn, ok)
        if batch:
            reader.max_frame_bytes = cap
        return source, batch

    def _serve_producer(self, conn: socket.socket) -> None:
        received = 0
        source: SocketSource | None = None
        perf = time.perf_counter
        try:
            reader = FrameReader(conn)
            try:
                negotiated = self._handshake(conn, reader)
            except (FrameError, OSError):
                return
            if negotiated is None:
                return
            source, allow_batch = negotiated
            while True:
                try:
                    frame = reader.read()
                except FrameError as exc:
                    # A torn or garbled frame ends the connection: past
                    # the tear there is no sync point, so everything
                    # already decoded stays delivered and the rest is
                    # one diverted record, not a poisoned stream.
                    self._divert(source.name, f"FrameError: {exc}", None)
                    return
                if frame is None:
                    return  # producer vanished without end; may reconnect
                if type(frame) is BinaryFrame:
                    # Decode happens here, in this connection's reader
                    # thread, *before* the merge: per-connection decode
                    # is what lets multiple producers overlap instead of
                    # serializing inside the engine loop.
                    if not allow_batch:
                        self._divert(source.name,
                                     "binary frame without negotiated "
                                     "batch capability", None,
                                     REASON_CORRUPT_FRAME)
                        continue
                    t0 = perf()
                    try:
                        batch = decode_batch(frame)
                    except BatchFormatError as exc:
                        # The envelope framed the payload correctly, so
                        # the stream is still in sync: divert the frame
                        # as one dead-letter record and keep reading.
                        self._divert(source.name,
                                     f"BatchFormatError: {exc}", None,
                                     REASON_CORRUPT_FRAME)
                        continue
                    self.decode_seconds.append(perf() - t0)
                    self.batches_received += 1
                    self.batch_rows_received += batch.n
                    received += batch.n
                    source.push(batch)
                    continue
                ftype = frame.get("type")
                if ftype == "event":
                    try:
                        event = decode_event(frame)
                    except (KeyError, ValueError, TypeError) as exc:
                        self._divert(source.name,
                                     f"{type(exc).__name__}: {exc}", frame)
                        continue
                    received += 1
                    source.push(event)
                elif ftype == "end":
                    try:
                        write_frame(conn, {"type": "ok",
                                           "received": received})
                    except OSError:
                        pass
                    source.producer_ended()
                    return
                else:
                    self._divert(source.name,
                                 f"unknown frame type {ftype!r}", frame)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def describe(self) -> dict:
        return {
            "address": self.address,
            "closed": self.closed,
            "connections_accepted": int(self.connections_accepted),
            "connections_refused": int(self.connections_refused),
            "decode_errors": int(self.decode_errors),
            "batches_received": int(self.batches_received),
            "batch_rows_received": int(self.batch_rows_received),
            "sources": {name: src.describe()
                        for name, src in self._sources.items()},
        }


class NetworkEventStream(ReliableEventStream):
    """A listener's sources behind the standard quarantined merge.

    Construction wires the listener's decode-error hook into the shared
    quarantine (reason code ``unparsable_row`` for JSON rows, matching
    a malformed trace line; ``corrupt_frame`` for a binary batch that
    fails its CRC or self-checks), then overrides the merge with the
    *hybrid* variant: each source is guarded by ``guard_hybrid`` (single
    events and columnar batches alike) and merged by the run-granular
    k-way merge, which yields ``StreamEvent`` and ``BatchRun`` items in
    exactly the order the per-event merge would yield the underlying
    events.  ``report()`` has the same shape for socket-fed and
    file-fed servers.
    """

    def __init__(self, listener: SocketListener, *,
                 quarantine=None, known_uids=None, dead_letter=None) -> None:
        super().__init__(sources=listener.sources(), quarantine=quarantine,
                         known_uids=known_uids, dead_letter=dead_letter)
        self.listener = listener

        def on_decode_error(source: str, detail: str, raw: object,
                            reason: str = REASON_UNPARSABLE) -> None:
            self.quarantine.divert(source, reason, detail, raw)

        listener.on_decode_error = on_decode_error

    def __iter__(self) -> Iterator:
        return merge_stream_items(
            self.quarantine.guard_hybrid(source.name, source)
            for source in self.sources)

    def report(self) -> dict:
        out = super().report()
        out["listener"] = {
            "address": self.listener.address,
            "closed": self.listener.closed,
            "connections_accepted": int(self.listener.connections_accepted),
            "connections_refused": int(self.listener.connections_refused),
            "decode_errors": int(self.listener.decode_errors),
            "batches_received": int(self.listener.batches_received),
            "batch_rows_received": int(self.listener.batch_rows_received),
        }
        return out


# ---------------------------------------------------------------------------
# the producing side: the publish client


def publish_events(address: str, source: str,
                   events: Iterable[StreamEvent] | Callable[[], Iterable],
                   *, producer: str = "publish",
                   batch_size: int = DEFAULT_BATCH_EVENTS,
                   compress: bool = False,
                   retry_for: float = 0.0, retry_interval: float = 0.2,
                   connect_timeout: float = 10.0,
                   sleep: Callable[[float], None] = time.sleep,
                   clock: Callable[[], float] = time.monotonic) -> int:
    """Stream ``events`` to a server as one producer of ``source``.

    ``events`` may be an iterable or (for retryable publishes) a
    zero-argument factory returning a fresh iterable per attempt.  With
    ``retry_for > 0`` the whole publish is retried from the start --
    connect, hello, every event, end -- until a full round is acked or
    the window closes: the server-side resume cursor skips everything a
    previous incarnation already consumed, so whole-stream replay is the
    correct (and simplest) recovery after a server crash.  Returns the
    number of events sent in the successful round.

    ``batch_size > 0`` (the default) offers protocol v2: events are
    accumulated into columnar binary batch frames of that many rows
    (zlib-compressed when ``compress`` and the server grants the
    capability).  A server that refuses v2, or acks without the batch
    capability, gets v1 JSON event frames instead -- same events, same
    order, just slower; ``batch_size=0`` forces that compat path.
    """
    factory = events if callable(events) else None
    deadline = clock() + retry_for
    while True:
        try:
            return _publish_once(address, source,
                                 factory() if factory else events,
                                 producer, connect_timeout,
                                 batch_size, compress)
        except (OSError, FrameError, PublishRefused):
            if factory is None or clock() >= deadline:
                raise
            sleep(retry_interval)


class PublishRefused(ConnectionError):
    """The server answered the handshake or end with an error frame."""


def _publish_once(address: str, source: str, events: Iterable,
                  producer: str, connect_timeout: float,
                  batch_size: int = 0, compress: bool = False) -> int:
    sock = connect_socket(address, timeout=connect_timeout)
    try:
        reader = FrameReader(sock)
        want_batch = batch_size > 0
        hello: dict = {"type": "hello", "source": source,
                       "producer": producer}
        if want_batch:
            hello["protocol"] = PROTOCOL_V2
            hello["capabilities"] = ([CAP_BATCH, CAP_ZLIB] if compress
                                     else [CAP_BATCH])
            hello["max_frame_bytes"] = BATCH_MAX_FRAME_BYTES
        else:
            hello["protocol"] = PROTOCOL_V1
        write_frame(sock, hello)
        ack = reader.read_message()
        if ack is None or ack.get("type") != "ok":
            refusal = (ack or {}).get("reason", "connection closed")
            if want_batch and isinstance(refusal, str) \
                    and "unsupported protocol" in refusal:
                # v1-only server: reconnect on the compat path.
                return _publish_once(address, source, events, producer,
                                     connect_timeout, 0, False)
            raise PublishRefused(
                f"server refused producer of {source!r}: {refusal}")
        granted = ack.get("capabilities") or ()
        use_batch = (want_batch and CAP_BATCH in granted
                     and ack.get("protocol") == PROTOCOL_V2)
        sock.settimeout(None)  # streaming may block on backpressure
        sent = 0
        if use_batch:
            try:
                frame_cap = int(ack.get("max_frame_bytes",
                                        MAX_FRAME_BYTES))
            except (TypeError, ValueError):
                frame_cap = MAX_FRAME_BYTES
            use_zlib = compress and CAP_ZLIB in granted
            # Flush early if the estimated payload nears the cap, so a
            # pathological path-heavy batch never overflows the frame.
            soft_cap = max(4096, frame_cap // 2)
            builder = BatchBuilder()
            # Accumulate in slabs so the per-event work runs in the
            # builder's hoisted bulk loop; the cap checks between slabs
            # keep frames within the negotiated budget.
            slab = max(1, min(batch_size, 2048))
            it = iter(events)
            while True:
                before = len(builder)
                builder.extend(itertools.islice(it, slab))
                added = len(builder) - before
                if not added:
                    break
                sent += added
                if len(builder) >= batch_size \
                        or builder.approx_bytes >= soft_cap:
                    sock.sendall(encode_batch_frame(
                        encode_batch(builder.build(), compress=use_zlib),
                        frame_cap))
                    builder = BatchBuilder()
            if len(builder):
                sock.sendall(encode_batch_frame(
                    encode_batch(builder.build(), compress=use_zlib),
                    frame_cap))
        else:
            for event in events:
                write_frame(sock, encode_event(event))
                sent += 1
        write_frame(sock, {"type": "end"})
        ack = reader.read_message()
        if ack is None or ack.get("type") != "ok":
            raise PublishRefused(
                f"server did not ack end of {source!r}: "
                f"{(ack or {}).get('reason', 'connection closed')}")
        return sent
    finally:
        try:
            sock.close()
        except OSError:
            pass


def publish_batches(address: str, source: str,
                    batches: Iterable[EventBatch | bytes],
                    *, producer: str = "publish",
                    compress: bool = False,
                    connect_timeout: float = 10.0,
                    frame_cap: int = MAX_FRAME_BYTES) -> int:
    """Stream pre-built columnar batches to a v2 server, hello pipelined.

    The load-generator variant of :func:`publish_events`: the caller
    already holds :class:`EventBatch` objects (or raw ``encode_batch``
    payload bytes from a frame capture), so no per-event Python runs on
    the wire path.  The ``hello`` is *pipelined* -- batch frames follow
    it immediately without waiting for the ack, and both acks (hello,
    end) are collected after the last frame.  That keeps a k-way server
    merge from idling on per-connection handshake round-trips when many
    producers connect at once.  No v1 fallback exists on this path: a
    server that refuses protocol v2 fails the publish with
    :class:`PublishRefused`.  Returns the number of events sent
    (raw byte payloads count zero -- the caller already knows).
    """
    sock = connect_socket(address, timeout=connect_timeout)
    try:
        reader = FrameReader(sock)
        write_frame(sock, {"type": "hello", "source": source,
                           "producer": producer, "protocol": PROTOCOL_V2,
                           "capabilities": ([CAP_BATCH, CAP_ZLIB]
                                            if compress else [CAP_BATCH]),
                           "max_frame_bytes": int(frame_cap)})
        sock.settimeout(None)  # streaming may block on backpressure
        sent = 0
        try:
            for batch in batches:
                if isinstance(batch, (bytes, bytearray)):
                    payload = bytes(batch)
                else:
                    sent += batch.n
                    payload = encode_batch(batch, compress=compress)
                sock.sendall(encode_batch_frame(payload, int(frame_cap)))
            write_frame(sock, {"type": "end"})
        except OSError:
            pass  # a refusal closes the socket; the acks say why
        for stage in ("hello", "end"):
            ack = reader.read_message()
            if ack is None or ack.get("type") != "ok":
                raise PublishRefused(
                    f"server refused {stage} of batch publish to "
                    f"{source!r}: "
                    f"{(ack or {}).get('reason', 'connection closed')}")
        return sent
    finally:
        try:
            sock.close()
        except OSError:
            pass


def workspace_source_factory(directory: str,
                             source: str) -> Callable[[], Iterator]:
    """A replayable event factory for one of a workspace's trace files."""
    import os

    from ..traces.io import read_app_log, read_jobs, read_publications

    if source == "jobs":
        return lambda: job_events(
            read_jobs(os.path.join(directory, "jobs.txt.gz")))
    if source == "publications":
        return lambda: publication_events(
            read_publications(os.path.join(directory,
                                           "publications.txt.gz")))
    if source == "accesses":
        return lambda: access_events(
            read_app_log(os.path.join(directory, "app_log.txt.gz")))
    raise ValueError(f"unknown workspace source {source!r} "
                     f"(expected one of {DEFAULT_SOURCES})")


def publish_workspace(address: str, directory: str, *,
                      sources: Iterable[str] = DEFAULT_SOURCES,
                      producer: str = "publish",
                      batch_size: int = DEFAULT_BATCH_EVENTS,
                      compress: bool = False,
                      retry_for: float = 0.0,
                      retry_interval: float = 0.2) -> dict[str, int]:
    """Publish a workspace's trace files concurrently, one per source.

    Concurrency is load-bearing, not an optimization: the server's merge
    needs the head event of *every* source before it can emit anything,
    so a sequential publish of a trace larger than one queue bound would
    deadlock against backpressure.  Returns ``{source: events_sent}``;
    re-raises the first failure after all threads have stopped.
    """
    results: dict[str, int] = {}
    errors: list[BaseException] = []

    def worker(name: str) -> None:
        try:
            results[name] = publish_events(
                address, name, workspace_source_factory(directory, name),
                producer=f"{producer}:{name}", batch_size=batch_size,
                compress=compress, retry_for=retry_for,
                retry_interval=retry_interval)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(name,),
                                name=f"publish:{name}", daemon=True)
               for name in sources]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results
