"""The networked multi-tenant retention server.

``repro.stream`` turned the batch replay into a single-policy daemon fed
from local trace files; this package turns that daemon into a *server*:

* :mod:`~repro.server.protocol` -- the length-prefixed newline-JSON wire
  protocol producers and admin clients speak, plus the negotiated v2
  binary columnar batch frames (CRC32-sealed, optionally zlib'd) that
  close the wire-speed gap against local file replay;
* :mod:`~repro.server.ingest` -- :class:`SocketListener` /
  :class:`SocketSource`, which accept any number of concurrent producers
  over TCP or Unix sockets and feed their events through the same
  quarantined merge the file sources use;
* :mod:`~repro.server.tenants` -- :class:`MultiTenantService`, N policy
  configurations sharing ONE event feed and ONE incremental activeness
  state, each bit-identical to an independent batch ``FastEmulator``;
* :mod:`~repro.server.admin` -- the admin/query plane (``status``,
  ``health``, ``tenants``, ``metrics``, ``activity``, ``export``,
  ``query user``), whose socket doubles as a Prometheus ``GET /metrics``
  scrape target;
* :mod:`~repro.server.metrics` -- the observability substrate:
  thread-safe :class:`Counter`, the rotating crash-safe
  :class:`MetricsHistory` ring of per-boundary samples, and the
  Prometheus text exposition;
* :mod:`~repro.server.dashboard` -- ``repro dashboard``: terminal or
  static-HTML rendering of activeness distributions, purge pressure and
  capacity forecasts from a live server or an offline history file;
* :mod:`~repro.server.supervisor` -- a supervised restart loop with
  auto-resume from the newest verifying checkpoint and crash-loop
  exponential backoff;
* :mod:`~repro.server.shard` -- the horizontally sharded fleet: a
  consistent-hash :class:`HashRing` over users, the
  :class:`ShardRouter` forwarding ingest to owning workers with
  exactly-once lanes, the scatter/gather :class:`FleetAdmin` plane, and
  :class:`ShardFleet` orchestration including day-boundary rebalances.
"""

from .admin import AdminServer, admin_request, scrape_metrics
from .dashboard import (fetch_dashboard_data, load_history_data,
                        render_html, render_terminal)
from .ingest import (DEFAULT_BATCH_EVENTS, NetworkEventStream,
                     PublishRefused, SequenceLedger, SocketListener,
                     SocketSource, publish_batches, publish_events,
                     publish_workspace)
from .protocol import (PROTOCOL_VERSION, SUPPORTED_PROTOCOLS,
                       BatchFormatError, FrameError, FrameReader,
                       connect_socket, create_listener, decode_batch,
                       decode_event, encode_batch, encode_batch_frame,
                       encode_event, format_address, parse_address,
                       read_frame, write_frame)
from .metrics import (Counter, MetricsHistory, render_prometheus,
                      tail_stats)
from .shard import (FleetAdmin, HashRing, ShardFleet, ShardLane,
                    ShardRouter, WorkerSpec, merge_tenant_results,
                    splitmix64)
from .supervisor import (EXIT_GIVE_UP, BackoffPolicy, Supervisor,
                         SupervisorReport)
from .tenants import MultiTenantService, Tenant, TenantSpec

__all__ = [
    "AdminServer",
    "admin_request",
    "scrape_metrics",
    "Counter",
    "MetricsHistory",
    "render_prometheus",
    "tail_stats",
    "fetch_dashboard_data",
    "load_history_data",
    "render_html",
    "render_terminal",
    "NetworkEventStream",
    "PublishRefused",
    "SequenceLedger",
    "SocketListener",
    "SocketSource",
    "publish_batches",
    "publish_events",
    "publish_workspace",
    "DEFAULT_BATCH_EVENTS",
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOLS",
    "BatchFormatError",
    "FrameError",
    "FrameReader",
    "connect_socket",
    "create_listener",
    "decode_batch",
    "decode_event",
    "encode_batch",
    "encode_batch_frame",
    "encode_event",
    "format_address",
    "parse_address",
    "read_frame",
    "write_frame",
    "FleetAdmin",
    "HashRing",
    "ShardFleet",
    "ShardLane",
    "ShardRouter",
    "WorkerSpec",
    "merge_tenant_results",
    "splitmix64",
    "EXIT_GIVE_UP",
    "BackoffPolicy",
    "Supervisor",
    "SupervisorReport",
    "MultiTenantService",
    "Tenant",
    "TenantSpec",
]
