"""The observability plane's substrate: counters, history, exposition.

Three pieces, shared by the engine, the admin plane, the CLI and the
dashboard:

* :class:`Counter` -- a lock-guarded integer that keeps the ``+= 1``
  call-site spelling.  The admin and listener counters used to be plain
  ints bumped from many threads; ``int.__iadd__`` is a read-modify-write
  race, so concurrent connections undercounted.  A :class:`Counter`
  compares and serializes like the int it wraps (``int(c)`` for JSON).
* :class:`MetricsHistory` -- a rotating, crash-safe JSONL ring of
  per-boundary samples, modeled on the dead-letter log: live file plus
  cascading numbered backups, every append flushed, every sample
  stamped with a cumulative ``seq``.  The engine appends one sample at
  every day boundary; admin rate series are derived *from the ring*
  (timestamped anchors) instead of a shared mutable window, which is
  what makes two concurrent pollers consistent.  On resume the ring is
  :meth:`rewound <MetricsHistory.rewind>` to the restored checkpoint
  cursor so history never forks from the checkpoint chain.
* :func:`render_prometheus` -- the ``GET /metrics`` text exposition
  (Prometheus text format 0.0.4): stable series names under the
  ``repro_`` prefix, tenant/reason/source labels, TARE-style p50/p95/p99
  summaries for trigger and batch-decode latency.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Callable, Iterable

import numpy as np

from ..traces.io import atomic_output

__all__ = ["Counter", "MetricsHistory", "tail_stats", "render_prometheus"]


class Counter:
    """A lock-guarded monotonic counter safe for ``+=`` from any thread.

    Supports the int idioms the existing call sites and tests use:
    ``c += 1`` (atomic via ``__iadd__``), ``int(c)``, comparisons with
    numbers and other counters.  Reads are point-in-time (one attribute
    load, atomic under the GIL).
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, value: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = int(value)

    def add(self, n: int = 1) -> int:
        with self._lock:
            self._value += n
            return self._value

    @property
    def value(self) -> int:
        return self._value

    def __iadd__(self, n: int) -> "Counter":
        self.add(int(n))
        return self

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __bool__(self) -> bool:
        return self._value != 0

    def __eq__(self, other: object) -> bool:
        try:
            return self._value == int(other)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __lt__(self, other) -> bool:
        return self._value < int(other)

    def __le__(self, other) -> bool:
        return self._value <= int(other)

    def __gt__(self, other) -> bool:
        return self._value > int(other)

    def __ge__(self, other) -> bool:
        return self._value >= int(other)

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:
        return f"Counter({self._value})"


def tail_stats(samples: Iterable[float]) -> dict:
    """TARE-style tail summary (count + p50/p95/p99/max) of a latency
    log, in seconds.  Snapshot via ``list`` first: the deques grow on
    other threads while we read."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return {"count": 0}
    p50, p95, p99 = np.percentile(arr, (50.0, 95.0, 99.0))
    return {"count": int(arr.size), "p50": float(p50), "p95": float(p95),
            "p99": float(p99), "max": float(arr.max())}


class MetricsHistory:
    """A rotating, crash-safe JSONL ring of per-boundary metric samples.

    Same durability model as the dead-letter log: one live file plus
    ``backups`` cascading numbered siblings (``<path>.1`` newest), every
    append flushed immediately, and a cumulative ``seq`` stamped into
    each record so counts survive rotation.  On top of that:

    * an in-memory deque of the most recent ``window`` samples (loaded
      from the surviving files on open), so rate derivation and
      ``admin metrics --history N`` never re-read the files;
    * injectable ``clock`` (monotonic) / ``wall`` sources -- every
      sample carries both stamps, plus the engine cursor and boundary;
    * :meth:`rate_anchor`: the oldest-usable ``(mono, cursor)`` pair for
      rate derivation, restricted to samples appended **by this
      process** (a previous incarnation's monotonic stamps are
      meaningless against our clock);
    * :meth:`rewind`: drop every sample *ahead* of a restored checkpoint
      (by cursor, boundary-tie-broken) and atomically rewrite the live
      file with the survivors, so a kill -9 + rollback resume continues
      the history instead of forking it.
    """

    def __init__(self, path: str, *, max_bytes: int = 4_000_000,
                 backups: int = 2, window: int = 4096,
                 clock: Callable[[], float] = time.monotonic,
                 wall: Callable[[], float] = time.time) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.path = path
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self.clock = clock
        self.wall = wall
        self.written = 0
        self.rotations = 0
        self.seq = 0
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=window)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._load()
        # Samples at or below this seq were written by a previous
        # incarnation: their monotonic stamps come from a dead process's
        # clock and must never anchor a rate in this one.
        self._incarnation_seq = self.seq
        self._fh = open(path, "a")

    # -- files ---------------------------------------------------------

    def _files_oldest_first(self) -> list[str]:
        paths = [f"{self.path}.{i}" for i in range(self.backups, 0, -1)]
        paths.append(self.path)
        return paths

    def _load(self) -> None:
        """Refill the ring from the surviving files (oldest first).

        Unreadable lines are skipped -- the final append may have been
        torn by the crash this history is documenting.
        """
        for path in self._files_oldest_first():
            try:
                fh = open(path)
            except OSError:
                continue
            with fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        sample = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(sample, dict):
                        continue
                    self._ring.append(sample)
                    seq = sample.get("seq")
                    if isinstance(seq, int):
                        self.seq = max(self.seq, seq)

    def _rotate(self) -> None:
        from ..traces.io import fsync_directory

        self._fh.close()
        for i in range(self.backups, 0, -1):
            older = f"{self.path}.{i}"
            newer = self.path if i == 1 else f"{self.path}.{i - 1}"
            if os.path.exists(newer):
                os.replace(newer, older)
        if self.backups < 1:
            os.unlink(self.path)
        fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        self._fh = open(self.path, "a")
        self.rotations += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "MetricsHistory":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- appending -----------------------------------------------------

    def append(self, sample: dict) -> dict:
        """Stamp ``seq``/``mono``/``wall`` onto one sample and persist it."""
        with self._lock:
            self.seq += 1
            sample = dict(sample)
            sample["seq"] = self.seq
            sample.setdefault("mono", self.clock())
            sample.setdefault("wall", self.wall())
            self._ring.append(sample)
            self._fh.write(json.dumps(sample, sort_keys=True,
                                      default=repr) + "\n")
            self._fh.flush()
            self.written += 1
            if self._fh.tell() > self.max_bytes:
                self._rotate()
        return sample

    # -- reading -------------------------------------------------------

    def samples(self) -> list[dict]:
        """Point-in-time snapshot of the in-memory ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def tail(self, n: int) -> list[dict]:
        """The newest ``n`` samples, oldest first."""
        if n <= 0:
            return []
        with self._lock:
            if n >= len(self._ring):
                return list(self._ring)
            return list(self._ring)[-n:]

    def last(self) -> dict | None:
        with self._lock:
            return self._ring[-1] if self._ring else None

    def rate_anchor(self, now: float,
                    min_age: float = 0.25) -> tuple[float, int] | None:
        """The ``(mono, cursor)`` pair rates should be measured against.

        Prefers the newest sample at least ``min_age`` seconds old (so
        back-to-back polls measure over a real window, not an epsilon);
        falls back to the oldest sample of this incarnation.  Returns
        ``None`` when this process has not appended yet -- the caller
        anchors on its own start then.  Being derived from immutable
        timestamped samples, the anchor is the same for every concurrent
        poller: no shared window to clobber.
        """
        with self._lock:
            candidates = [s for s in self._ring
                          if isinstance(s.get("seq"), int)
                          and s["seq"] > self._incarnation_seq
                          and isinstance(s.get("mono"), (int, float))
                          and isinstance(s.get("cursor"), int)]
        if not candidates:
            return None
        for sample in reversed(candidates):
            if now - sample["mono"] >= min_age:
                return (float(sample["mono"]), int(sample["cursor"]))
        oldest = candidates[0]
        return (float(oldest["mono"]), int(oldest["cursor"]))

    # -- resume --------------------------------------------------------

    def rewind(self, cursor: int, next_boundary: int | None = None) -> int:
        """Drop samples a checkpoint rollback has un-happened.

        Keeps every sample with ``sample.cursor < cursor``, and -- for
        samples *at* the restored cursor, where several boundaries can
        fire in one cascade at the same event count -- only those with
        ``sample.boundary < next_boundary``, since the resumed engine
        will re-fire (and re-sample) every boundary from
        ``next_boundary`` on.  Survivors are rewritten atomically into
        the live file (backups are consumed), so the on-disk history is
        exactly the prefix the restored checkpoint agrees with.  Returns
        the number of samples dropped.
        """
        cursor = int(cursor)

        def keep(sample: dict) -> bool:
            c = sample.get("cursor")
            if not isinstance(c, int):
                return False  # unreadable provenance: drop it
            if c < cursor:
                return True
            if c > cursor:
                return False
            if next_boundary is None:
                return True
            b = sample.get("boundary")
            return isinstance(b, int) and b < next_boundary

        with self._lock:
            survivors = [s for s in self._ring if keep(s)]
            dropped = len(self._ring) - len(survivors)
            self._fh.close()
            with atomic_output(self.path) as fh:
                for sample in survivors:
                    fh.write(json.dumps(sample, sort_keys=True,
                                        default=repr) + "\n")
            for i in range(1, self.backups + 1):
                try:
                    os.unlink(f"{self.path}.{i}")
                except OSError:
                    pass
            self._fh = open(self.path, "a")
            self._ring.clear()
            self._ring.extend(survivors)
            self.seq = max((s["seq"] for s in survivors
                            if isinstance(s.get("seq"), int)), default=0)
            self._incarnation_seq = self.seq
        return dropped


# ---------------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)


def _label_escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if v != v:  # NaN
        return "NaN"
    return repr(v)


class _Exposition:
    """Accumulates one scrape: HELP/TYPE once per family, then series."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._seen: set[str] = set()

    def emit(self, name: str, value, labels: dict | None = None, *,
             help: str = "", type: str = "gauge",
             family: str | None = None) -> None:
        family = family or name
        if family not in self._seen:
            self._seen.add(family)
            if help:
                self._lines.append(f"# HELP {family} {help}")
            self._lines.append(f"# TYPE {family} {type}")
        if labels:
            body = ",".join(f'{k}="{_label_escape(v)}"'
                            for k, v in labels.items())
            self._lines.append(f"{name}{{{body}}} {_fmt(value)}")
        else:
            self._lines.append(f"{name} {_fmt(value)}")

    def summary(self, family: str, tails: dict, labels: dict | None = None,
                *, help: str = "") -> None:
        """One TARE tail dict as a Prometheus summary (quantile series)."""
        labels = dict(labels or {})
        count = int(tails.get("count", 0))
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if key in tails:
                self.emit(family, tails[key], {**labels, "quantile": q},
                          help=help, type="summary", family=family)
        self.emit(f"{family}_count", count, labels or None,
                  help=help, type="summary", family=family)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_prometheus(service, *, stream=None, admin=None,
                      history: MetricsHistory | None = None,
                      rate: float | None = None,
                      uptime: float | None = None) -> str:
    """The ``GET /metrics`` text body for one scrape.

    ``service`` is the :class:`~repro.server.tenants.MultiTenantService`;
    ``stream``/``admin`` enrich with listener/quarantine and admin-plane
    counters; ``rate`` is the history-derived events/s the caller
    already computed (the admin server owns the anchor logic).
    """
    exp = _Exposition()
    stats = service.stats
    exp.emit("repro_up", 1, help="The retention server is answering.")
    if uptime is not None:
        exp.emit("repro_uptime_seconds", max(0.0, uptime),
                 help="Seconds since the admin plane started.")
    exp.emit("repro_cursor_events", service.cursor,
             help="Merged events fully consumed (the resume cursor).")
    exp.emit("repro_next_boundary_day", service.next_boundary,
             help="The next day boundary the engine will fire.")
    if rate is not None:
        exp.emit("repro_ingest_events_per_second", max(0.0, rate),
                 help="Ingest rate derived from the metrics history ring.")
    for kind in ("job", "publication", "access"):
        exp.emit("repro_events_total", stats[f"events_{kind}"],
                 {"kind": kind}, type="counter",
                 help="Merged events consumed, by kind.")
    exp.emit("repro_dropped_accesses_total", service.dropped_accesses,
             type="counter",
             help="Out-of-window access events dropped.")
    exp.emit("repro_activeness_evals_total", stats["activeness_evals"],
             type="counter",
             help="Distinct-parameter activeness folds performed.")
    exp.emit("repro_eval_users_total", stats["eval_users"], type="counter",
             help="User-type histories visited across evaluations.")
    exp.emit("repro_eval_refolded_total", stats["eval_refolded"],
             type="counter",
             help="User-type histories actually refolded (cache misses).")
    eval_users = stats["eval_users"]
    exp.emit("repro_refold_fraction",
             (stats["eval_refolded"] / eval_users) if eval_users else 0.0,
             help="Refolded share of evaluated user-type histories.")

    # -- checkpoint chain health --------------------------------------
    exp.emit("repro_checkpoints_written_total", stats["checkpoints_written"],
             type="counter", help="Checkpoint links written.")
    exp.emit("repro_checkpoint_failures_total", stats["checkpoint_failures"],
             type="counter", help="Checkpoint writes that failed.")
    age = service.checkpoint_age()
    if age is not None:
        exp.emit("repro_checkpoint_age_seconds", age,
                 help="Seconds since the newest checkpoint link was "
                      "written (clamped at zero).")

    # -- ingest plane --------------------------------------------------
    if stream is not None:
        quarantine = stream.quarantine
        exp.emit("repro_quarantined_total", int(quarantine.total),
                 type="counter", help="Events diverted to quarantine.")
        for reason, count in sorted(quarantine.by_reason.items()):
            exp.emit("repro_quarantined_reason_total", int(count),
                     {"reason": reason}, type="counter",
                     help="Quarantined events by reason code.")
        listener = getattr(stream, "listener", None)
        if listener is not None:
            exp.emit("repro_connections_accepted_total",
                     int(listener.connections_accepted), type="counter",
                     help="Producer connections accepted.")
            exp.emit("repro_connections_refused_total",
                     int(listener.connections_refused), type="counter",
                     help="Producer connections refused at handshake.")
            exp.emit("repro_decode_errors_total",
                     int(listener.decode_errors), type="counter",
                     help="Frames/rows that failed wire decoding.")
            exp.emit("repro_batches_received_total",
                     int(listener.batches_received), type="counter",
                     help="Binary batch frames decoded.")
            exp.emit("repro_batch_rows_received_total",
                     int(listener.batch_rows_received), type="counter",
                     help="Rows carried by decoded batch frames.")
            exp.summary("repro_batch_decode_seconds",
                        tail_stats(listener.decode_seconds),
                        help="Per-batch decode wall seconds "
                             "(recent window).")
            for src in listener.sources():
                exp.emit("repro_source_queue_depth", src.queue.qsize(),
                         {"source": src.name},
                         help="Backpressure queue depth per source.")

    # -- per-tenant ----------------------------------------------------
    capacity = service.capacity_bytes
    for tenant in list(service.tenants):
        label = {"tenant": tenant.name}
        live_bytes = tenant.state.total_bytes
        exp.emit("repro_tenant_triggers_total", tenant.stats["triggers"],
                 label, type="counter",
                 help="Purge triggers fired per tenant.")
        exp.emit("repro_tenant_live_files", tenant.state.file_count, label,
                 help="Live files in the tenant's replay state.")
        exp.emit("repro_tenant_live_bytes", live_bytes, label,
                 help="Live bytes in the tenant's replay state.")
        if capacity:
            exp.emit("repro_tenant_utilization", live_bytes / capacity,
                     label, help="Live bytes over filesystem capacity.")
        exp.emit("repro_tenant_purged_bytes_total",
                 tenant.stats.get("purged_bytes", 0), label, type="counter",
                 help="Bytes purged by the tenant's triggers.")
        exp.emit("repro_tenant_purged_files_total",
                 tenant.stats.get("purged_files", 0), label, type="counter",
                 help="Files purged by the tenant's triggers.")
        exp.emit("repro_tenant_target_misses_total",
                 tenant.stats.get("target_misses", 0), label, type="counter",
                 help="Triggers that failed to reach the purge target.")
        exp.summary("repro_trigger_latency_seconds",
                    tail_stats(tenant.trigger_latency_log), label,
                    help="Per-trigger wall seconds (recent window).")

    # -- forecasts (from the newest history sample) --------------------
    if history is not None:
        newest = history.last()
        if newest:
            for name, info in (newest.get("tenants") or {}).items():
                forecast = (info or {}).get("forecast_days_to_capacity")
                if isinstance(forecast, (int, float)) and forecast >= 0:
                    exp.emit("repro_tenant_forecast_days_to_capacity",
                             forecast, {"tenant": name},
                             help="Linear-growth days until the tenant "
                                  "fills capacity (from the history "
                                  "ring).")
        exp.emit("repro_metrics_history_samples_total", history.seq,
                 type="counter",
                 help="Samples appended to the metrics history ring.")
        exp.emit("repro_metrics_history_rotations_total", history.rotations,
                 type="counter",
                 help="Metrics history file rotations this incarnation.")

    # -- admin plane ---------------------------------------------------
    if admin is not None:
        exp.emit("repro_admin_requests_total", int(admin.requests),
                 type="counter", help="Admin requests served.")
        exp.emit("repro_admin_errors_total", int(admin.errors),
                 type="counter", help="Admin requests that errored.")
    return exp.render()
