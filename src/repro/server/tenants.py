"""N retention policies over ONE event feed and ONE activeness state.

:class:`MultiTenantService` is the multi-policy counterpart of
:class:`~repro.stream.service.OnlineRetentionService`.  Each *tenant* is
one policy configuration (FLT / ActiveDR / ValueBased / ScratchAsCache,
with its own lifetime, purge target, trigger cadence and activeness
period) making independent purge decisions over its own replica of the
replay state.  Everything that does not depend on the policy is shared:

* the event feed, cursor and day buffers (one merge, consumed once);
* the :class:`~repro.stream.state.PathCatalog` (pids are positional
  identity, so one interner serves every tenant);
* the :class:`~repro.stream.state.IncrementalActivenessState` -- and,
  decisively, its *evaluation*: at a boundary where several tenants
  trigger, activeness is refolded **once per distinct parameter set**,
  not once per tenant (``stats["activeness_evals"]`` counts the folds;
  four same-params tenants cost one).  Sharing the evaluation is sound
  because the batch ``ComparisonRunner`` already shares one evaluation
  per trigger across policies, and extra evaluation instants never
  perturb later ones (flush/refresh are order-insensitive).

Per tenant: the replay-state columns, daily metrics, purge reports,
classification + group lookup (refreshed on the tenant's *own* trigger
cadence, exactly as a standalone run would), and the trigger engine.
Because the shared pieces are read-only to the per-tenant kernels and
the per-tenant pieces replicate the standalone layout exactly, each
tenant's finalized :class:`EmulationResult` is **bit-identical** to an
independent batch ``FastEmulator`` run of the same policy (pinned by
``tests/test_server.py``).

Tenants are addable/removable at runtime: the admin plane enqueues ops
(:meth:`request_add_tenant` / :meth:`request_remove_tenant`, thread-safe)
and the engine applies them at the next day boundary -- the only place
the replay state is quiescent.  A new tenant clones the replay state of
a donor tenant (its scratch *as that tenant retained it*) and
participates from the admission boundary on.

Checkpoints pack every tenant into one digest-verified link of the
existing chain (format ``repro-server-checkpoint/1``): shared arrays
(catalog, activeness history) stored once, per-tenant arrays under a
``t<i>__`` namespace prefix, per-tenant config fingerprints cross-checked
on resume.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..core.activeness import ActivenessParams, UserActiveness
from ..core.classification import UserClass, classify_all, group_counts
from ..core.config import RetentionConfig
from ..core.exemption import ExemptionList
from ..core.policy import RetentionPolicy
from ..emulation.compiled import (NEVER_POS, GroupLookup, TriggerEngine,
                                  replay_day_columns)
from ..emulation.emulator import EmulationResult, EmulatorConfig
from ..emulation.metrics import DailyMetrics
from ..vfs.file_meta import DAY_SECONDS
from ..vfs.filesystem import VirtualFileSystem
from ..stream.checkpoint import (SERVER_CHECKPOINT_FORMAT, CheckpointManager,
                                 activeness_from_arrays, activeness_to_arrays,
                                 load_checkpoint, metrics_from_arrays,
                                 metrics_to_arrays, reports_from_jsonable,
                                 reports_to_jsonable)
from ..stream.batch import (KIND_ACC_CODE, KIND_JOB_CODE, KIND_PUB_CODE,
                            BatchRun, EventBatch)
from ..stream.events import (EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION,
                             StreamEvent)
from ..stream.state import (GrowableReplayState, IncrementalActivenessState,
                            PathCatalog)
from ..traces.schema import PublicationRecord
from .metrics import MetricsHistory, tail_stats

__all__ = ["TenantSpec", "Tenant", "MultiTenantService", "POLICY_KINDS"]

_OP_CODES = {"access": 0, "create": 1, "touch": 2}  # mirrors compiled._OP_CODES

#: Policy kinds a tenant spec can name.
POLICY_KINDS = ("flt", "flt-target", "activedr", "value", "cache")


@dataclass(frozen=True)
class TenantSpec:
    """The declarative identity of one tenant: policy kind + knobs.

    A spec is everything needed (plus workspace-derived context such as
    the job-residency index for ``cache``) to rebuild the tenant's
    policy object -- which is why checkpoints store specs, not policies.
    """

    name: str
    policy: str = "activedr"
    lifetime_days: float = 90.0
    target: float = 0.5
    purge_trigger_days: int = 7
    period_days: float = 7.0

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in ",=|\n"):
            raise ValueError(f"bad tenant name {self.name!r}: must be "
                             f"non-empty without ',', '=', '|' or newlines")
        if self.policy not in POLICY_KINDS:
            raise ValueError(f"unknown tenant policy {self.policy!r} "
                             f"(expected one of {POLICY_KINDS})")

    def retention_config(self) -> RetentionConfig:
        return RetentionConfig(
            lifetime_days=self.lifetime_days,
            purge_target_utilization=self.target,
            purge_trigger_days=self.purge_trigger_days,
            activeness=ActivenessParams(period_days=self.period_days))

    def build_policy(self, *, residency=None) -> RetentionPolicy:
        """Instantiate the live policy object this spec describes.

        ``residency`` (a :class:`~repro.core.JobResidencyIndex`) is
        required for ``cache`` tenants and ignored by the rest.
        """
        from ..core import (ActiveDRPolicy, FixedLifetimePolicy,
                            ScratchAsCachePolicy, ValueBasedPolicy)

        config = self.retention_config()
        if self.policy == "flt":
            return FixedLifetimePolicy(config)
        if self.policy == "flt-target":
            return FixedLifetimePolicy(config, enforce_target=True)
        if self.policy == "activedr":
            return ActiveDRPolicy(config)
        if self.policy == "value":
            return ValueBasedPolicy(config)
        if residency is None:
            raise ValueError(
                f"tenant {self.name!r} uses the cache policy, which needs "
                f"a job-residency index")
        return ScratchAsCachePolicy(config, residency=residency)

    # -- serialization -------------------------------------------------

    def to_jsonable(self) -> dict:
        return {"name": self.name, "policy": self.policy,
                "lifetime_days": self.lifetime_days, "target": self.target,
                "purge_trigger_days": self.purge_trigger_days,
                "period_days": self.period_days}

    @classmethod
    def from_jsonable(cls, data: Mapping) -> "TenantSpec":
        return cls(name=data["name"], policy=data["policy"],
                   lifetime_days=float(data["lifetime_days"]),
                   target=float(data["target"]),
                   purge_trigger_days=int(data["purge_trigger_days"]),
                   period_days=float(data["period_days"]))

    @classmethod
    def parse(cls, text: str) -> "TenantSpec":
        """Parse the CLI spelling: ``name=t1,policy=activedr,lifetime=90``.

        Keys: ``name`` (required), ``policy``, ``lifetime``, ``target``,
        ``trigger`` (purge-trigger days), ``period`` (activeness period
        days).  Unknown keys are an error, not a silent default.
        """
        fields: dict = {}
        keys = {"name": ("name", str), "policy": ("policy", str),
                "lifetime": ("lifetime_days", float),
                "target": ("target", float),
                "trigger": ("purge_trigger_days", int),
                "period": ("period_days", float)}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep or key not in keys:
                raise ValueError(
                    f"bad tenant spec field {part!r} (expected "
                    f"key=value with key in {sorted(keys)})")
            attr, cast = keys[key]
            fields[attr] = cast(value)
        if "name" not in fields:
            raise ValueError(f"tenant spec {text!r} needs a name=<id> field")
        return cls(**fields)


@dataclass
class Tenant:
    """One policy's live state inside the multi-tenant engine."""

    spec: TenantSpec
    policy: RetentionPolicy
    engine: TriggerEngine
    state: GrowableReplayState
    metrics: DailyMetrics
    reports: list = field(default_factory=list)
    group_count_history: list = field(default_factory=list)
    classes: dict = field(default_factory=dict)
    lookup: GroupLookup | None = None
    add_pos: np.ndarray = field(
        default_factory=lambda: np.full(0, NEVER_POS, dtype=np.int64))
    admitted_boundary: int = 0
    stats: dict = field(
        default_factory=lambda: {"triggers": 0, "trigger_seconds": 0.0,
                                 "purged_bytes": 0, "purged_files": 0,
                                 "target_misses": 0})
    #: Recent per-trigger wall seconds (forensic tail-latency window for
    #: ``admin metrics``; not checkpointed -- ``stats`` stays JSON-able).
    trigger_latency_log: deque = field(
        default_factory=lambda: deque(maxlen=512))

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def params(self) -> ActivenessParams:
        return self.policy.config.activeness

    @property
    def params_key(self) -> tuple:
        p = self.params
        return (p.period_days, p.empty_period, p.epsilon, p.max_periods)

    def describe(self) -> dict:
        return {
            "spec": self.spec.to_jsonable(),
            "policy": self.policy.name,
            "admitted_boundary": self.admitted_boundary,
            "triggers": self.stats["triggers"],
            "reports": len(self.reports),
            "live_files": self.state.file_count,
            "live_bytes": self.state.total_bytes,
        }


class MultiTenantService:
    """Streaming retention for a fleet of policies over one event feed.

    ``tenants`` is a sequence of ``(TenantSpec, RetentionPolicy)`` pairs
    (build policies with :meth:`TenantSpec.build_policy`); the remaining
    parameters mirror :class:`OnlineRetentionService`.  ``policy_factory``
    builds policies for tenants added at runtime (it receives the new
    tenant's spec); without one, runtime adds are refused.
    """

    def __init__(self, tenants: Sequence[tuple[TenantSpec, RetentionPolicy]],
                 *,
                 snapshot_fs: VirtualFileSystem | None = None,
                 replay_start: int, replay_end: int,
                 capacity_bytes: int | None = None,
                 config: EmulatorConfig | None = None,
                 exemptions: ExemptionList | None = None,
                 known_uids: Iterable[int] = (),
                 checkpoint_dir: str | None = None,
                 checkpoint_every_days: int = 7,
                 checkpoint_retain: int = 3,
                 checkpoint_manager: CheckpointManager | None = None,
                 policy_factory: Callable[[TenantSpec],
                                          RetentionPolicy] | None = None,
                 metrics_history: MetricsHistory | None = None,
                 wall: Callable[[], float] = time.time,
                 ) -> None:
        if replay_end <= replay_start:
            raise ValueError("replay_end must exceed replay_start")
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [spec.name for spec, _policy in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")

        self.config = config or EmulatorConfig()
        self.exemptions = exemptions
        self.known_uids = [int(u) for u in known_uids]
        self.policy_factory = policy_factory

        self.replay_start = int(replay_start)
        self.replay_end = int(replay_end)
        self.n_days = -(-(self.replay_end - self.replay_start) // DAY_SECONDS)
        self.window_end = self.replay_start + self.n_days * DAY_SECONDS

        if capacity_bytes is None:
            capacity_bytes = (snapshot_fs.capacity_bytes
                              if snapshot_fs is not None else 0)
        self.capacity_bytes = int(capacity_bytes)

        self.catalog = PathCatalog()
        self.activity = IncrementalActivenessState()
        self.tenants: list[Tenant] = [
            self._new_tenant(spec, policy) for spec, policy in tenants]

        self._next_boundary = 0
        self._consumed = 0
        self.dropped_accesses = 0
        #: Optional hook ``consumed -> dict`` supplying an ``ingest``
        #: section for every checkpoint manifest (the networked stream
        #: wires its SequenceLedger snapshot here, making per-source
        #: producer cursors durable across kill -9 + resume).
        self.ingest_snapshot: Callable[[int], dict] | None = None
        #: The ``ingest`` section of the manifest this service was
        #: resumed from (None on a fresh service or an old checkpoint):
        #: the CLI seeds the listener's initial cursors from it.
        self.resumed_ingest: dict | None = None
        #: The newest *durable* per-source ingest cursors -- what the
        #: last checkpoint on our own chain recorded.  A shard router
        #: polls this (via ``admin health``) to trim its resend-retention
        #: lanes: rows at or below these cursors survive a kill -9.
        self.last_durable_ingest: dict | None = None
        #: Optional hook returning extra manifest keys for every
        #: checkpoint (shard workers stamp a ``shard`` provenance
        #: section: shard name + ring digest).
        self.manifest_extra: Callable[[], dict] | None = None
        #: Optional post-evaluation filter ``activeness_dict -> dict``
        #: restricting classification to the users this shard owns
        #: (publication rows are duplicated to every co-author's shard,
        #: so un-owned authors acquire activity here; without the filter
        #: they would be classified on several shards at once).
        self.owned_filter: Callable[[dict[int, UserActiveness]],
                                    dict[int, UserActiveness]] | None = None
        #: True when this service was resumed from a donor's rebalance
        #: clone that has not yet been narrowed to this shard's users
        #: (manifest flag ``shard_seed_pending``); the serve wiring then
        #: calls :meth:`restrict_users` + :meth:`reset_measurements`.
        self.resumed_seed_pending = False
        self.resumed_shard: dict | None = None
        self._buf_pid: list[int] = []
        self._buf_uid: list[int] = []
        self._buf_ts: list[int] = []
        self._buf_op: list[int] = []
        self._exempt: np.ndarray | None = (
            np.empty(0, dtype=np.bool_) if exemptions is not None else None)
        self._exempt_count = 0

        # Runtime tenant ops, enqueued by the admin thread and applied
        # at the next boundary (deque appends/pops are atomic).
        self._pending_ops: deque = deque()
        self.op_log: list[dict] = []
        # (at_boundary, dest_dir) of the newest applied shard split:
        # the fleet re-issues the split request when the donor respawns
        # mid-rebalance, and a re-issue racing the original ack can
        # queue the op twice -- the duplicate must be a no-op.
        self._last_applied_split: tuple | None = None

        if checkpoint_manager is not None:
            self.checkpoints: CheckpointManager | None = checkpoint_manager
        else:
            self.checkpoints = (
                CheckpointManager(checkpoint_dir, retain=checkpoint_retain)
                if checkpoint_dir else None)
        self.checkpoint_every_days = int(checkpoint_every_days)

        self.stats = {
            "events_job": 0, "events_publication": 0, "events_access": 0,
            "activeness_evals": 0, "eval_users": 0, "eval_refolded": 0,
            "checkpoints_written": 0, "checkpoint_failures": 0,
        }
        self.last_checkpoint_error: str | None = None
        #: params_key -> (t_c, activeness dict) of the newest evaluation,
        #: kept for the admin plane's ``query user``.
        self._last_eval: dict[tuple, tuple[int, dict[int,
                                                     UserActiveness]]] = {}

        #: The observability plane's sample store: one sample appended at
        #: every day boundary.  ``sample_extra`` (set by the serve
        #: wiring) merges stream/listener counters into each sample.
        self.metrics_history = metrics_history
        self.sample_extra: Callable[[], dict] | None = None
        self.last_metrics_error: str | None = None
        self._wall = wall
        # (wall stamp, path) of the newest checkpoint *we* wrote; both
        # sides of checkpoint_age() then read the same clock source.
        self._last_checkpoint_wall: float | None = None
        self._last_checkpoint_path: str | None = None

        if snapshot_fs is not None:
            self.load_snapshot(snapshot_fs)

    # ------------------------------------------------------------------
    # construction helpers

    def _new_tenant(self, spec: TenantSpec,
                    policy: RetentionPolicy) -> Tenant:
        return Tenant(spec=spec, policy=policy, engine=TriggerEngine(policy),
                      state=GrowableReplayState(self.capacity_bytes),
                      metrics=DailyMetrics(self.n_days))

    def load_snapshot(self, fs: VirtualFileSystem) -> None:
        """Intern the initial file system once; materialize per tenant."""
        for path, meta in fs.iter_files():
            pid = self.catalog.intern(path, snap_size=meta.size)
            for tenant in self.tenants:
                tenant.state.ensure(self.catalog.n_paths)
                tenant.state.add_file(pid, meta.size, meta.atime, meta.uid)

    def tenant(self, name: str) -> Tenant | None:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        return None

    # ------------------------------------------------------------------
    # runtime tenant ops (admin thread -> boundary application)

    def request_add_tenant(self, spec: TenantSpec,
                           clone_from: str | None = None) -> None:
        """Enqueue a tenant addition, applied at the next day boundary.

        The new tenant clones the replay state of ``clone_from`` (the
        first tenant when omitted) -- its scratch as that tenant has
        retained it -- and participates in flushes and triggers from the
        admission boundary on.
        """
        self._pending_ops.append(("add", spec, clone_from))

    def request_remove_tenant(self, name: str) -> None:
        """Enqueue a tenant removal, applied at the next day boundary."""
        self._pending_ops.append(("remove", name, None))

    def request_split(self, *, at_boundary: int, dest_dir: str,
                      keep_mask, owned_filter=None,
                      extra: Mapping | None = None,
                      donor_extra: Mapping | None = None) -> None:
        """Enqueue a shard split, applied exactly at ``at_boundary``.

        At that boundary -- after the previous day's flush, before the
        boundary's own triggers, with the engine quiescent -- the full
        service state is checkpointed into ``dest_dir`` (the *new*
        worker's chain; the manifest carries ``shard_seed_pending`` plus
        ``extra``), then this service is narrowed in place to the users
        ``keep_mask`` retains and ``owned_filter`` (the post-split
        ownership filter) is installed.  The seeded worker resumes the
        clone with ``next_boundary == at_boundary``, so it re-fires the
        boundary's triggers for *its* users while the donor's cover only
        the kept ones: every user triggers exactly once.
        """
        self._pending_ops.append(("split", {
            "at_boundary": int(at_boundary), "dest_dir": dest_dir,
            "keep_mask": keep_mask, "owned_filter": owned_filter,
            "extra": dict(extra or {}),
            "donor_extra": (dict(donor_extra)
                            if donor_extra is not None else None)}, None))

    def _apply_pending_ops(self, boundary: int) -> None:
        deferred = []
        while True:
            try:
                op, arg, extra = self._pending_ops.popleft()
            except IndexError:
                break
            if (op == "split" and arg["at_boundary"] > boundary):
                deferred.append((op, arg, extra))
                continue
            entry = {"op": op, "boundary": boundary, "ok": False}
            try:
                if op == "add":
                    spec: TenantSpec = arg
                    entry["tenant"] = spec.name
                    self._apply_add(spec, extra, boundary)
                elif op == "split":
                    entry["dest"] = arg["dest_dir"]
                    if arg["at_boundary"] < boundary:
                        raise ValueError(
                            f"split scheduled for boundary "
                            f"{arg['at_boundary']} but the engine is "
                            f"already at {boundary}")
                    self._apply_split(arg)
                else:
                    entry["tenant"] = arg
                    self._apply_remove(arg)
                entry["ok"] = True
            except (ValueError, OSError) as exc:
                entry["error"] = str(exc)
            self.op_log.append(entry)
        # Ops scheduled for a later boundary wait their turn (order
        # within the queue is preserved).
        for item in reversed(deferred):
            self._pending_ops.appendleft(item)

    def _apply_split(self, payload: Mapping) -> None:
        key = (int(payload["at_boundary"]), payload["dest_dir"])
        if key == self._last_applied_split:
            # Duplicate of a split this incarnation already applied
            # (fleet re-issue racing the original ack).  Applying it
            # again would clone the already-narrowed donor state over
            # the seed checkpoint in ``dest_dir``.
            return
        extra = dict(payload["extra"])
        extra["shard_seed_pending"] = True
        dest = CheckpointManager(payload["dest_dir"])
        self.save_checkpoint(manager=dest, extra=extra)
        self.restrict_users(payload["keep_mask"])
        if payload.get("owned_filter") is not None:
            self.owned_filter = payload["owned_filter"]
        if payload.get("donor_extra") is not None:
            # The donor's own manifests must stamp the *post-split*
            # shard section from this boundary on, or a donor crash
            # after the split would resume with pre-split ownership.
            donor_extra = dict(payload["donor_extra"])
            self.manifest_extra = lambda: dict(donor_extra)
        self._last_applied_split = key

    # ------------------------------------------------------------------
    # shard restriction (rebalance donor / seeded worker)

    def restrict_users(self, keep_mask) -> dict:
        """Narrow this service, in place, to the users ``keep_mask`` keeps.

        ``keep_mask`` maps an int64 uid array to a boolean keep mask.
        Live files owned by shed users are dropped from every tenant's
        replay state (with byte/count fixups), their activity histories
        are removed, classifications are filtered, and cached
        evaluations are invalidated.  Returns drop counters.
        """
        uids = np.asarray(self.known_uids, dtype=np.int64)
        if uids.size:
            kept = uids[np.asarray(keep_mask(uids), dtype=bool)]
            self.known_uids = [int(u) for u in kept.tolist()]
        dropped_users = self.activity.restrict_users(keep_mask)
        dropped_files = dropped_bytes = 0
        for tenant in self.tenants:
            state = tenant.state
            if state.n_paths:
                keep = np.asarray(keep_mask(state.owner), dtype=bool)
                drop = state.live & ~keep
                n_drop = int(np.count_nonzero(drop))
                if n_drop:
                    bytes_drop = int(state.size[drop].sum())
                    state.live[drop] = False
                    state.total_bytes -= bytes_drop
                    state.file_count -= n_drop
                    dropped_files += n_drop
                    dropped_bytes += bytes_drop
            if tenant.classes:
                cu = np.fromiter(tenant.classes.keys(), np.int64,
                                 len(tenant.classes))
                m = np.asarray(keep_mask(cu), dtype=bool)
                if not m.all():
                    tenant.classes = {int(u): tenant.classes[int(u)]
                                      for u in cu[m].tolist()}
                    tenant.lookup = GroupLookup(tenant.classes)
        self._last_eval.clear()
        return {"dropped_users": dropped_users,
                "dropped_files": dropped_files,
                "dropped_bytes": dropped_bytes}

    def reset_measurements(self) -> None:
        """Zero every *additive* measurement (seeded-worker admission).

        A worker seeded from a donor's rebalance clone inherits the
        donor's metrics, reports and purge totals -- all of which the
        donor keeps reporting.  The fleet merge sums per-shard
        contributions, so the newcomer must start its own ledgers at
        zero and contribute only what happens from the cut boundary on.
        """
        for tenant in self.tenants:
            tenant.metrics = DailyMetrics(self.n_days)
            tenant.reports = []
            tenant.group_count_history = []
            tenant.trigger_latency_log.clear()
            tenant.stats = {"triggers": 0, "trigger_seconds": 0.0,
                            "purged_bytes": 0, "purged_files": 0,
                            "target_misses": 0}
        self.dropped_accesses = 0

    def _apply_add(self, spec: TenantSpec, clone_from: str | None,
                   boundary: int) -> None:
        if self.tenant(spec.name) is not None:
            raise ValueError(f"tenant {spec.name!r} already exists")
        if self.policy_factory is None:
            raise ValueError("service has no policy factory; runtime "
                             "tenant addition is disabled")
        donor = (self.tenant(clone_from) if clone_from is not None
                 else (self.tenants[0] if self.tenants else None))
        if donor is None:
            raise ValueError(f"no donor tenant {clone_from!r} to clone")
        tenant = self._new_tenant(spec, self.policy_factory(spec))
        n = donor.state.n_paths
        tenant.state.ensure(n)
        tenant.state.live[:] = donor.state.live
        tenant.state.atime[:] = donor.state.atime
        tenant.state.size[:] = donor.state.size
        tenant.state.owner[:] = donor.state.owner
        tenant.state.total_bytes = donor.state.total_bytes
        tenant.state.file_count = donor.state.file_count
        tenant.add_pos = donor.add_pos.copy()
        tenant.admitted_boundary = boundary
        self.tenants.append(tenant)
        # Give the newcomer a classification immediately -- unless its
        # first trigger fires at this very boundary, which reclassifies
        # anyway (a double reclassify would double-append the group
        # history).
        if not self._trigger_due(tenant, boundary):
            t_c = self.replay_start + boundary * DAY_SECONDS
            evals = self._evaluate_for([tenant], min(t_c, self.window_end))
            self._reclassify_one(tenant, evals[tenant.params_key])

    def _apply_remove(self, name: str) -> None:
        tenant = self.tenant(name)
        if tenant is None:
            raise ValueError(f"no tenant {name!r}")
        if len(self.tenants) == 1:
            raise ValueError(f"cannot remove {name!r}: it is the last "
                             f"tenant")
        self.tenants.remove(tenant)

    # ------------------------------------------------------------------
    # ingestion

    def ingest(self, event: StreamEvent) -> None:
        """Consume one merged event; may fire any number of boundaries."""
        kind = event.kind
        # Counters bump only after boundaries fire, mirroring the
        # single-tenant service: a checkpoint inside the cascade must
        # not have counted the not-yet-consumed current event.
        if kind == EVENT_ACCESS:
            rec = event.payload
            if self.replay_start <= rec.ts < self.window_end:
                day = (rec.ts - self.replay_start) // DAY_SECONDS
                self._advance_boundaries(day)
                self.stats["events_access"] += 1
                self._buf_pid.append(self.catalog.intern(rec.path))
                self._buf_uid.append(rec.uid)
                self._buf_ts.append(rec.ts)
                self._buf_op.append(_OP_CODES[rec.op])
            else:
                self.stats["events_access"] += 1
                self.dropped_accesses += 1
        elif kind == EVENT_JOB:
            self._advance_boundaries_before(event.ts)
            self.stats["events_job"] += 1
            self.activity.add_job(event.payload)
        elif kind == EVENT_PUBLICATION:
            self._advance_boundaries_before(event.ts)
            self.stats["events_publication"] += 1
            self.activity.add_publication(event.payload)
        else:
            raise ValueError(f"unknown stream event kind {kind!r}")
        self._consumed += 1

    def ingest_run(self, run: BatchRun) -> None:
        """Consume one merged batch run columnarly -- no per-event objects.

        Strategy: boundaries fire only at specific rows (the first
        in-window access of a not-yet-flushed day; the first job or
        publication whose timestamp passes the next pending boundary),
        and *between* two firings every observable effect of
        :meth:`ingest` commutes across kinds -- accesses only append to
        the day buffers, jobs and publications only append to disjoint
        pending activity lists, and the counters are sums.  So the run
        is cut at the exact rows where the per-event path would fire a
        boundary, each boundary-free span is ingested with three bulk
        per-kind appends, and the firing row's own advance call is
        issued verbatim.  The result -- boundary cascade order, buffer
        contents, pid assignment order, float fold order, the
        ``_consumed`` value any checkpoint inside a cascade observes --
        is bit-identical to feeding the rows through :meth:`ingest` one
        at a time.
        """
        batch = run.batch
        lo, hi = run.lo, run.hi
        ts_all = batch.ts
        kinds = batch.kinds
        rs, we = self.replay_start, self.window_end
        n_days = self.n_days

        # Per-kind row positions within the run (global), their sorted
        # timestamps, and the kind-local column offset of the first one.
        if batch.single_kind:
            code = int(kinds[lo])
            full = np.arange(lo, hi, dtype=np.int64)
            empty = full[:0]
            idx_acc = full if code == KIND_ACC_CODE else empty
            idx_job = full if code == KIND_JOB_CODE else empty
            idx_pub = full if code == KIND_PUB_CODE else empty
        else:
            k = kinds[lo:hi]
            idx_acc = np.flatnonzero(k == KIND_ACC_CODE) + lo
            idx_job = np.flatnonzero(k == KIND_JOB_CODE) + lo
            idx_pub = np.flatnonzero(k == KIND_PUB_CODE) + lo
        kpos = batch.kpos()
        ts_acc = ts_all[idx_acc]
        ts_job = ts_all[idx_job]
        ts_pub = ts_all[idx_pub]
        a0 = int(kpos[idx_acc[0]]) if idx_acc.size else 0
        j0 = int(kpos[idx_job[0]]) if idx_job.size else 0
        p0 = int(kpos[idx_pub[0]]) if idx_pub.size else 0
        # The run's in-window access range: everything before aw0 is a
        # pre-window drop, everything at/after aw1 a post-window drop.
        aw0 = int(np.searchsorted(ts_acc, rs, side="left"))
        aw1 = int(np.searchsorted(ts_acc, we, side="left"))

        if idx_job.size:
            b = j0 + idx_job.size
            imp_job = (batch.job_nodes[j0:b] * batch.job_cores[j0:b]
                       * (batch.job_end[j0:b] - batch.job_start[j0:b])
                       ) / 3600.0
        if aw1 > aw0:
            # Pid assignment order is observable (purge tie-breaks,
            # checkpoint fingerprints), so new paths must be interned in
            # first-access order.  One ``np.unique`` over the run's
            # in-window accesses yields every first occurrence; the
            # spans below consume them through ``inext`` as their end
            # position passes each first occurrence, which is exactly
            # the per-event first-touch order.
            pid_map = batch.pid_map
            if pid_map is None:
                pid_map = batch.pid_map = np.full(batch.n_pool, -1,
                                                  dtype=np.int64)
            pwin = batch.acc_path[a0 + aw0:a0 + aw1]
            uniq, first = np.unique(pwin, return_index=True)
            iorder = np.argsort(first, kind="stable")
            iuniq = uniq[iorder].tolist()
            ifirst = first[iorder].tolist()
            n_uniq = len(iuniq)
            inext = 0
            pool = batch.pool()
            intern = self.catalog.intern
        stats = self.stats
        pa = pj = pp = 0  # per-kind rows already consumed
        cur = lo
        while cur < hi:
            # -- find the next row that fires a boundary ---------------
            nb = self._next_boundary
            nxt = hi
            fire_kind = -1
            if nb <= n_days:
                bt = rs + nb * DAY_SECONDS
                j = int(np.searchsorted(ts_acc, bt, side="left"))
                if j < aw1:  # in-window access with day >= nb
                    nxt = int(idx_acc[j])
                    fire_kind = KIND_ACC_CODE
                j = int(np.searchsorted(ts_job, bt, side="right"))
                if j < ts_job.size and int(idx_job[j]) < nxt:
                    nxt = int(idx_job[j])
                    fire_kind = KIND_JOB_CODE
                j = int(np.searchsorted(ts_pub, bt, side="right"))
                if j < ts_pub.size and int(idx_pub[j]) < nxt:
                    nxt = int(idx_pub[j])
                    fire_kind = KIND_PUB_CODE
            if nxt == cur:
                # The row at ``cur`` fires before it is ingested --
                # exactly the per-event advance calls, which also
                # guarantee it cannot fire again for the new boundary.
                t = int(ts_all[cur])
                if fire_kind == KIND_ACC_CODE:
                    self._advance_boundaries((t - rs) // DAY_SECONDS)
                else:
                    self._advance_boundaries_before(t)
                continue

            # -- bulk-ingest the boundary-free span [cur, nxt) ---------
            pa2 = int(np.searchsorted(idx_acc, nxt, side="left"))
            if pa2 > pa:
                stats["events_access"] += pa2 - pa
                s, e = max(pa, aw0), min(pa2, aw1)
                if e > s:
                    e_w = e - aw0
                    while inext < n_uniq and ifirst[inext] < e_w:
                        k = iuniq[inext]
                        if pid_map[k] < 0:
                            pid_map[k] = intern(pool[k])
                        inext += 1
                    pid = pid_map[pwin[s - aw0:e_w]]
                    self._buf_pid.extend(pid.tolist())
                    self._buf_uid.extend(
                        batch.acc_uid[a0 + s:a0 + e].tolist())
                    self._buf_ts.extend(ts_acc[s:e].tolist())
                    self._buf_op.extend(
                        batch.acc_op[a0 + s:a0 + e].tolist())
                else:
                    e = s
                self.dropped_accesses += (pa2 - pa) - (e - s)
                self._consumed += pa2 - pa
                pa = pa2
            pj2 = int(np.searchsorted(idx_job, nxt, side="left"))
            if pj2 > pj:
                stats["events_job"] += pj2 - pj
                self.activity.add_jobs(batch.job_uid[j0 + pj:j0 + pj2],
                                       ts_job[pj:pj2], imp_job[pj:pj2])
                self._consumed += pj2 - pj
                pj = pj2
            pp2 = int(np.searchsorted(idx_pub, nxt, side="left"))
            if pp2 > pp:
                self._ingest_pub_run(batch, p0 + pp, p0 + pp2,
                                     ts_pub[pp:pp2])
                pp = pp2
            cur = nxt

    def _ingest_pub_run(self, batch: EventBatch, a: int, b: int,
                        ts: np.ndarray) -> None:
        """Publication rows ``[a, b)`` (kind-local) of a boundary-free
        span: rare enough to reconstruct records per row (author-rank
        scoring needs the author list anyway)."""
        off = batch.pub_auth_off
        for k in range(a, b):
            self.stats["events_publication"] += 1
            s, e = int(off[k]), int(off[k + 1])
            rec = PublicationRecord(int(batch.pub_id[k]), int(ts[k - a]),
                                    batch.pub_auth[s:e].tolist(),
                                    int(batch.pub_cit[k]))
            self.activity.add_publication(rec)
            self._consumed += 1

    def run(self, events: Iterator[StreamEvent | BatchRun],
            stop_after_events: int | None = None,
            ) -> dict[str, EmulationResult] | None:
        """Drive the fleet from an event/run iterator (None = stopped
        early).  A stop can overshoot by at most one batch run: the
        cursor reflects what was actually consumed, so resume stays
        exact."""
        for event in events:
            if (stop_after_events is not None
                    and self._consumed >= stop_after_events):
                return None
            if type(event) is BatchRun:
                self.ingest_run(event)
            else:
                self.ingest(event)
        return self.finalize()

    # ------------------------------------------------------------------
    # boundaries

    def _advance_boundaries(self, day: int) -> None:
        while self._next_boundary <= min(day, self.n_days):
            self._boundary(self._next_boundary)

    def _advance_boundaries_before(self, ts: int) -> None:
        while (self._next_boundary <= self.n_days
               and self.replay_start + self._next_boundary * DAY_SECONDS
               < ts):
            self._boundary(self._next_boundary)

    def _trigger_due(self, tenant: Tenant, boundary: int) -> bool:
        return (1 <= boundary < self.n_days
                and boundary % tenant.policy.config.purge_trigger_days == 0)

    def _boundary(self, boundary: int) -> None:
        if boundary == 0:
            evals = self._evaluate_for(self.tenants, self.replay_start)
            for tenant in self.tenants:
                self._reclassify_one(tenant, evals[tenant.params_key])
        else:
            self._flush_day(boundary - 1)
        self._apply_pending_ops(boundary)
        triggered = False
        due = [t for t in self.tenants if self._trigger_due(t, boundary)]
        if due:
            t_c = self.replay_start + boundary * DAY_SECONDS
            evals = self._evaluate_for(due, t_c)
            for tenant in due:
                started = time.perf_counter()
                activeness = evals[tenant.params_key]
                self._reclassify_one(tenant, activeness)
                tenant.state.ensure(self.catalog.n_paths)
                report = tenant.engine.trigger(
                    self.catalog, tenant.state, t_c, activeness,
                    tenant.lookup, self._exempt_mask())
                tenant.reports.append(report)
                tenant.stats["triggers"] += 1
                tenant.stats["purged_bytes"] = (
                    tenant.stats.get("purged_bytes", 0)
                    + report.purged_bytes_total)
                tenant.stats["purged_files"] = (
                    tenant.stats.get("purged_files", 0)
                    + report.purged_files_total)
                if not report.target_met:
                    tenant.stats["target_misses"] = (
                        tenant.stats.get("target_misses", 0) + 1)
                elapsed = time.perf_counter() - started
                tenant.stats["trigger_seconds"] += elapsed
                tenant.trigger_latency_log.append(elapsed)
            triggered = True
        self._next_boundary = boundary + 1
        if (triggered and self.checkpoints is not None
                and self.checkpoint_every_days > 0
                and boundary % self.checkpoint_every_days == 0):
            self._try_checkpoint()
        # Sampled after the checkpoint attempt so the chain counters in
        # the sample reflect this boundary's own write.
        self._sample_metrics(boundary)

    def _evaluate_for(self, tenants: Iterable[Tenant], t_c: int,
                      ) -> dict[tuple, dict[int, UserActiveness]]:
        """One activeness fold per *distinct* parameter set at ``t_c``.

        This is where multi-tenant sharing pays: same-params tenants
        receive the same evaluation object (the batch ComparisonRunner
        shares evaluations the same way, so downstream consumers are
        known not to mutate it).
        """
        out: dict[tuple, dict[int, UserActiveness]] = {}
        for tenant in tenants:
            key = tenant.params_key
            if key in out:
                continue
            result = self.activity.evaluate(t_c, tenant.params,
                                            self.known_uids)
            if self.owned_filter is not None:
                # Shard workers classify only the users they own; see
                # the ``owned_filter`` attribute doc.
                result = self.owned_filter(result)
            self.stats["activeness_evals"] += 1
            self.stats["eval_users"] += self.activity.last_eval_users
            self.stats["eval_refolded"] += self.activity.last_eval_refolded
            out[key] = result
            self._last_eval[key] = (t_c, result)
        return out

    def _reclassify_one(self, tenant: Tenant,
                        activeness: dict[int, UserActiveness]) -> None:
        tenant.classes = classify_all(activeness)
        tenant.group_count_history.append(group_counts(tenant.classes))
        tenant.lookup = GroupLookup(tenant.classes)

    def _flush_day(self, day: int) -> None:
        if not self._buf_pid:
            return
        pid = np.asarray(self._buf_pid, dtype=np.int64)
        uid = np.asarray(self._buf_uid, dtype=np.int64)
        ts = np.asarray(self._buf_ts, dtype=np.int64)
        op = np.asarray(self._buf_op, dtype=np.int8)
        self._buf_pid, self._buf_uid = [], []
        self._buf_ts, self._buf_op = [], []
        n = self.catalog.n_paths
        det_size = self.catalog.det_size
        for tenant in self.tenants:
            if day < tenant.admitted_boundary:
                continue
            tenant.state.ensure(n)
            if tenant.add_pos.size < n:
                grown = np.full(max(n, tenant.add_pos.size * 2, 1024),
                                NEVER_POS, dtype=np.int64)
                grown[:tenant.add_pos.size] = tenant.add_pos
                tenant.add_pos = grown
            replay_day_columns(self.config, det_size, tenant.state, day,
                               tenant.metrics, tenant.lookup, tenant.add_pos,
                               pid, uid, ts, op)

    def _exempt_mask(self) -> np.ndarray | None:
        if self._exempt is None:
            return None
        n = self.catalog.n_paths
        if self._exempt.size < n:
            grown = np.zeros(max(n, self._exempt.size * 2, 1024),
                             dtype=np.bool_)
            grown[:self._exempt_count] = self._exempt[:self._exempt_count]
            self._exempt = grown
        if self._exempt_count < n:
            for i in range(self._exempt_count, n):
                self._exempt[i] = self.catalog.paths[i] in self.exemptions
            self._exempt_count = n
        return self._exempt[:n]

    # ------------------------------------------------------------------
    # observability sampling

    def _sample_metrics(self, boundary: int) -> None:
        """Append one observability sample for a just-fired boundary.

        Samples carry the engine cursor and boundary (the rewind keys a
        resume uses to keep history and checkpoint chain in agreement),
        cumulative event/eval/checkpoint counters, and a per-tenant
        block with live state, cumulative purge totals, trigger-latency
        tails, and a linear days-to-capacity forecast against the
        previous sample.  A failed append never stops the engine: the
        history is evidence, not state.
        """
        history = self.metrics_history
        if history is None:
            return
        stats = self.stats
        eval_users = stats["eval_users"]
        prev = history.last()
        prev_tenants = (prev.get("tenants") or {}) if prev else {}
        prev_boundary = prev.get("boundary") if prev else None
        capacity = self.capacity_bytes
        tenants: dict = {}
        for tenant in self.tenants:
            live_bytes = tenant.state.total_bytes
            info: dict = {
                "triggers": tenant.stats["triggers"],
                "live_files": tenant.state.file_count,
                "live_bytes": live_bytes,
                "utilization": ((live_bytes / capacity)
                                if capacity else 0.0),
                "purged_bytes": tenant.stats.get("purged_bytes", 0),
                "purged_files": tenant.stats.get("purged_files", 0),
                "target_misses": tenant.stats.get("target_misses", 0),
                "trigger_latency": tail_stats(tenant.trigger_latency_log),
            }
            if tenant.reports:
                info["target_met"] = bool(tenant.reports[-1].target_met)
            prev_info = prev_tenants.get(tenant.name)
            if (capacity and prev_info
                    and isinstance(prev_boundary, int)
                    and boundary > prev_boundary):
                growth = (live_bytes
                          - prev_info.get("live_bytes", live_bytes)
                          ) / (boundary - prev_boundary)
                if growth > 0:
                    info["forecast_days_to_capacity"] = max(
                        0.0, (capacity - live_bytes) / growth)
            tenants[tenant.name] = info
        sample = {
            "boundary": boundary,
            "cursor": self._consumed,
            "events_job": stats["events_job"],
            "events_publication": stats["events_publication"],
            "events_access": stats["events_access"],
            "dropped_accesses": self.dropped_accesses,
            "activeness_evals": stats["activeness_evals"],
            "refold_fraction": (stats["eval_refolded"] / eval_users
                                if eval_users else 0.0),
            "checkpoints_written": stats["checkpoints_written"],
            "checkpoint_failures": stats["checkpoint_failures"],
            "tenants": tenants,
        }
        if self._exempt is not None:
            sample["exempt_paths"] = int(np.count_nonzero(
                self._exempt[:self._exempt_count]))
        extra = self.sample_extra
        if extra is not None:
            sample["stream"] = extra()
        try:
            history.append(sample)
        except (OSError, ValueError) as exc:
            self.last_metrics_error = f"{type(exc).__name__}: {exc}"

    def activity_summary(self) -> dict:
        """Rank distributions + class counts for the dashboard/admin.

        Per distinct activeness parameter set: user count, active counts
        and percentiles of the operation/outcome ranks from the newest
        evaluation.  Per tenant: the latest classification's group
        counts.  Point-in-time reads only (admin-thread safe).
        """
        out: dict = {"params": {}, "tenants": {}}
        for key, (t_c, activeness) in list(self._last_eval.items()):
            op = np.asarray([ua.op_rank for ua in activeness.values()],
                            dtype=np.float64)
            oc = np.asarray([ua.oc_rank for ua in activeness.values()],
                            dtype=np.float64)
            entry: dict = {
                "period_days": key[0],
                "evaluated_at": t_c,
                "users": int(op.size),
                "op_active": int(np.count_nonzero(op >= 1.0)),
                "oc_active": int(np.count_nonzero(oc >= 1.0)),
            }
            if op.size:
                qs = (10.0, 25.0, 50.0, 75.0, 90.0, 99.0)
                entry["op_rank_percentiles"] = {
                    f"p{int(q)}": float(v)
                    for q, v in zip(qs, np.percentile(op, qs))}
                entry["oc_rank_percentiles"] = {
                    f"p{int(q)}": float(v)
                    for q, v in zip(qs, np.percentile(oc, qs))}
            out["params"][f"period={key[0]:g}"] = entry
        for tenant in list(self.tenants):
            history = tenant.group_count_history
            counts = history[-1] if history else {}
            out["tenants"][tenant.name] = {
                "classes": {cls.label: int(n)
                            for cls, n in counts.items()},
                "triggers": tenant.stats["triggers"],
            }
        return out

    # ------------------------------------------------------------------
    # completion

    def finalize(self) -> dict[str, EmulationResult]:
        """Flush the remaining boundaries; one result per tenant.

        Each result is bit-identical to ``FastEmulator.run`` of that
        tenant's policy alone over the same dataset.
        """
        self._advance_boundaries(self.n_days)
        out: dict[str, EmulationResult] = {}
        for tenant in self.tenants:
            result = EmulationResult(
                policy=tenant.policy.name,
                lifetime_days=tenant.policy.config.lifetime_days,
                metrics=tenant.metrics)
            result.reports = tenant.reports
            result.group_count_history = tenant.group_count_history
            result.final_classes = tenant.classes
            result.final_total_bytes = tenant.state.total_bytes
            result.final_file_count = tenant.state.file_count
            out[tenant.name] = result
        if self.checkpoints is not None:
            self._try_checkpoint()
        return out

    # ------------------------------------------------------------------
    # checkpoint / resume

    @staticmethod
    def _fingerprint_of(tenant: Tenant, config: EmulatorConfig) -> dict:
        cfg = tenant.policy.config
        p = tenant.params
        return {
            "policy": tenant.policy.name,
            "lifetime_days": cfg.lifetime_days,
            "purge_trigger_days": cfg.purge_trigger_days,
            "period_days": p.period_days,
            "empty_period": p.empty_period,
            "epsilon": p.epsilon,
            "max_periods": p.max_periods,
            "apply_creates": config.apply_creates,
            "restore_on_miss": config.restore_on_miss,
        }

    def _try_checkpoint(self) -> str | None:
        try:
            return self.save_checkpoint()
        except OSError as exc:
            self.stats["checkpoint_failures"] += 1
            self.last_checkpoint_error = f"{type(exc).__name__}: {exc}"
            return None

    def save_checkpoint(self, *, manager: CheckpointManager | None = None,
                        extra: Mapping | None = None) -> str:
        """One atomic link holding every tenant; returns the path.

        Shared arrays (catalog, activeness history) are stored once;
        per-tenant arrays live under a ``t<i>__`` prefix.  Pending
        runtime ops are *not* checkpointed -- they are in-flight admin
        requests, and the admin client re-issues on reconnect.

        ``manager`` redirects the write to a foreign chain (the
        rebalance clone into a new worker's directory) without touching
        this service's own chain bookkeeping; ``extra`` merges extra
        manifest keys on top of ``manifest_extra``.
        """
        own_chain = manager is None
        manager = self.checkpoints if manager is None else manager
        if manager is None:
            raise ValueError("service has no checkpoint directory")
        if self._buf_pid:
            raise ValueError("cannot checkpoint with a partial day buffered")
        act_table, act_arrays = activeness_to_arrays(
            self.activity.snapshot_state())
        manifest = {
            "format": SERVER_CHECKPOINT_FORMAT,
            "cursor": self._consumed,
            "next_boundary": self._next_boundary,
            "n_days": self.n_days,
            "replay_start": self.replay_start,
            "replay_end": self.replay_end,
            "capacity_bytes": self.capacity_bytes,
            "dropped_accesses": self.dropped_accesses,
            "known_uids": self.known_uids,
            "activity_types": act_table,
            "stats": {k: v for k, v in self.stats.items()},
            "tenants": [],
        }
        if self.ingest_snapshot is not None:
            # Per-source producer cursors at exactly this consumed
            # count: a resumed server hands them to its listener so
            # reconnecting producers resume mid-stream instead of
            # replaying (exactly-once across kill -9).
            manifest["ingest"] = self.ingest_snapshot(self._consumed)
        if self.manifest_extra is not None:
            manifest.update(self.manifest_extra())
        if extra:
            manifest.update(extra)
        arrays: dict[str, np.ndarray] = {
            "paths": np.asarray(self.catalog.paths, dtype=np.str_),
            "snap_size": self.catalog.snap_size.copy(),
        }
        arrays.update(act_arrays)
        for i, tenant in enumerate(self.tenants):
            manifest["tenants"].append({
                "name": tenant.name,
                "spec": tenant.spec.to_jsonable(),
                "fingerprint": self._fingerprint_of(tenant, self.config),
                "reports": reports_to_jsonable(tenant.reports),
                "stats": dict(tenant.stats),
                "admitted_boundary": tenant.admitted_boundary,
                "total_bytes": tenant.state.total_bytes,
                "file_count": tenant.state.file_count,
            })
            ghist = np.zeros((len(tenant.group_count_history), 4),
                             dtype=np.int64)
            for row, counts in enumerate(tenant.group_count_history):
                ghist[row] = [counts[cls] for cls in counts]
            prefix = f"t{i}__"
            arrays[prefix + "live"] = tenant.state.live.copy()
            arrays[prefix + "atime"] = tenant.state.atime.copy()
            arrays[prefix + "size"] = tenant.state.size.copy()
            arrays[prefix + "owner"] = tenant.state.owner.copy()
            arrays[prefix + "class_uids"] = np.fromiter(
                tenant.classes.keys(), np.int64, len(tenant.classes))
            arrays[prefix + "class_codes"] = np.fromiter(
                (c.value for c in tenant.classes.values()), np.int64,
                len(tenant.classes))
            arrays[prefix + "group_count_history"] = ghist
            for key, value in metrics_to_arrays(tenant.metrics).items():
                arrays[prefix + key] = value
        path = manager.save(manifest, arrays)
        if own_chain:
            self.stats["checkpoints_written"] += 1
            self._last_checkpoint_wall = self._wall()
            self._last_checkpoint_path = path
            self.last_durable_ingest = manifest.get("ingest")
        return path

    @property
    def cursor(self) -> int:
        """Merged events fully consumed so far (the resume cursor)."""
        return self._consumed

    @property
    def next_boundary(self) -> int:
        """The next day boundary the engine will fire (0..n_days+1)."""
        return self._next_boundary

    def checkpoint_age(self) -> float | None:
        """Seconds since the newest checkpoint link, clamped at >= 0.

        For links written by this process both the stamp and *now* come
        from the same injectable ``wall`` source, so an injected clock
        can never produce a negative age.  For links inherited from a
        dead incarnation the file mtime is the only evidence; the clamp
        still guarantees non-negative output if the filesystem clock
        disagrees with ours.
        """
        manager = self.checkpoints
        if manager is None:
            return None
        newest = manager.latest()
        if newest is None:
            return None
        if (newest == self._last_checkpoint_path
                and self._last_checkpoint_wall is not None):
            return max(0.0, self._wall() - self._last_checkpoint_wall)
        try:
            mtime = os.path.getmtime(newest)
        except OSError:
            return None
        return max(0.0, self._wall() - mtime)

    @classmethod
    def resume(cls, checkpoint_path: str, *,
               policy_factory: Callable[[TenantSpec], RetentionPolicy],
               config: EmulatorConfig | None = None,
               exemptions: ExemptionList | None = None,
               checkpoint_dir: str | None = None,
               checkpoint_every_days: int = 7,
               checkpoint_retain: int = 3,
               checkpoint_manager: CheckpointManager | None = None,
               metrics_history: MetricsHistory | None = None,
               wall: Callable[[], float] = time.time,
               ) -> "MultiTenantService":
        """Rebuild the whole fleet from one checkpoint link.

        ``policy_factory`` turns each stored :class:`TenantSpec` back
        into a live policy (supplying workspace-derived context such as
        the job-residency index); the stored per-tenant fingerprints
        cross-check the rebuilt policies and refuse any drift.  Feed the
        resumed service ``skip_stream_items(stream, service.cursor)`` of
        the original deterministic merge to continue bit-identically
        (``skip_events`` is equivalent on per-event streams; only
        ``skip_stream_items`` counts binary batch runs by row width).
        """
        manifest, arrays = load_checkpoint(checkpoint_path)
        if manifest.get("format") != SERVER_CHECKPOINT_FORMAT:
            raise ValueError(
                f"{checkpoint_path} is a {manifest.get('format')!r} "
                f"checkpoint, not a multi-tenant server checkpoint "
                f"(expected {SERVER_CHECKPOINT_FORMAT!r})")
        specs = [TenantSpec.from_jsonable(t["spec"])
                 for t in manifest["tenants"]]
        pairs = [(spec, policy_factory(spec)) for spec in specs]
        service = cls(pairs,
                      replay_start=manifest["replay_start"],
                      replay_end=manifest["replay_end"],
                      capacity_bytes=manifest["capacity_bytes"],
                      config=config, exemptions=exemptions,
                      known_uids=manifest["known_uids"],
                      checkpoint_dir=checkpoint_dir,
                      checkpoint_every_days=checkpoint_every_days,
                      checkpoint_retain=checkpoint_retain,
                      checkpoint_manager=checkpoint_manager,
                      policy_factory=policy_factory,
                      metrics_history=metrics_history, wall=wall)

        snap_size = np.asarray(arrays["snap_size"], dtype=np.int64)
        for i, path in enumerate(arrays["paths"].tolist()):
            service.catalog.intern(path, snap_size=int(snap_size[i]))
        n = service.catalog.n_paths
        for i, (tenant, stored) in enumerate(zip(service.tenants,
                                                 manifest["tenants"])):
            fingerprint = cls._fingerprint_of(tenant, service.config)
            if stored["fingerprint"] != fingerprint:
                diff = {k: (stored["fingerprint"].get(k), fingerprint.get(k))
                        for k in set(stored["fingerprint"]) | set(fingerprint)
                        if stored["fingerprint"].get(k)
                        != fingerprint.get(k)}
                raise ValueError(
                    f"tenant {tenant.name!r}: checkpoint fingerprint "
                    f"mismatch (stored vs rebuilt): {diff}")
            prefix = f"t{i}__"
            tenant.state.ensure(n)
            tenant.state.live[:] = np.asarray(arrays[prefix + "live"],
                                              dtype=np.bool_)
            tenant.state.atime[:] = np.asarray(arrays[prefix + "atime"],
                                               dtype=np.int64)
            tenant.state.size[:] = np.asarray(arrays[prefix + "size"],
                                              dtype=np.int64)
            tenant.state.owner[:] = np.asarray(arrays[prefix + "owner"],
                                               dtype=np.int64)
            tenant.state.total_bytes = int(stored["total_bytes"])
            tenant.state.file_count = int(stored["file_count"])
            tenant.metrics = metrics_from_arrays({
                key: arrays[prefix + key]
                for key in ("metrics_accesses", "metrics_misses",
                            "metrics_group_misses")})
            tenant.reports = reports_from_jsonable(stored["reports"])
            ghist = np.asarray(arrays[prefix + "group_count_history"],
                               dtype=np.int64)
            tenant.group_count_history = [
                {cls: int(row[j]) for j, cls in enumerate(UserClass)}
                for row in ghist]
            tenant.classes = {
                int(u): UserClass(int(c))
                for u, c in zip(arrays[prefix + "class_uids"].tolist(),
                                arrays[prefix + "class_codes"].tolist())}
            tenant.lookup = GroupLookup(tenant.classes)
            tenant.admitted_boundary = int(stored["admitted_boundary"])
            tenant.stats.update(stored.get("stats", {}))

        service.activity.restore_state(activeness_from_arrays(
            manifest["activity_types"], arrays))
        service._next_boundary = int(manifest["next_boundary"])
        service._consumed = int(manifest["cursor"])
        service.resumed_ingest = manifest.get("ingest")
        service.resumed_seed_pending = bool(
            manifest.get("shard_seed_pending"))
        # A rebalance clone's ingest section belongs to the DONOR's
        # lane sequence domain.  Advertising it as *our* durable
        # cursors (admin health -> fleet lane trim) would trim the
        # seeded worker's fresh lanes -- whose seq domain starts at 1
        # -- against the donor's much larger cursors, discarding
        # retained rows that are not durable here yet.  Stay None
        # until the first checkpoint written on our own chain.
        service.last_durable_ingest = (
            None if service.resumed_seed_pending
            else manifest.get("ingest"))
        service.resumed_shard = manifest.get("shard")
        service.dropped_accesses = int(manifest["dropped_accesses"])
        saved_stats = dict(manifest.get("stats", {}))
        saved_stats.pop("checkpoints_written", None)
        saved_stats.pop("checkpoint_failures", None)
        service.stats.update(saved_stats)
        if metrics_history is not None:
            # History must not fork from the checkpoint chain: drop every
            # sample the rollback un-happened; the resumed engine re-fires
            # (and re-samples) boundaries from ``next_boundary`` on.
            metrics_history.rewind(service._consumed,
                                   service._next_boundary)
        return service

    # ------------------------------------------------------------------
    # introspection (read by the admin thread; point-in-time reads only)

    def describe(self) -> dict:
        return {
            "cursor": self._consumed,
            "next_boundary": self._next_boundary,
            "n_days": self.n_days,
            "replay_start": self.replay_start,
            "replay_end": self.replay_end,
            "dropped_accesses": self.dropped_accesses,
            "stats": dict(self.stats),
            # list() snapshots: the admin thread calls this while the
            # ingest thread may add/remove tenants at a boundary.
            "tenants": {t.name: t.describe() for t in list(self.tenants)},
        }

    def query_user(self, uid: int) -> dict:
        """Activeness + per-tenant verdicts for one user (admin plane)."""
        uid = int(uid)
        out: dict = {"uid": uid, "tenants": {}}
        for tenant in list(self.tenants):
            info: dict = {}
            cls = tenant.classes.get(uid)
            info["class"] = cls.label if cls is not None else None
            held = self._last_eval.get(tenant.params_key)
            if held is not None:
                t_c, activeness = held
                ua = activeness.get(uid)
                if ua is not None:
                    info["evaluated_at"] = t_c
                    info["op_rank"] = ua.op_rank
                    info["oc_rank"] = ua.oc_rank
            owner = tenant.state.owner
            mask = (owner == uid) & tenant.state.live
            info["live_files"] = int(np.count_nonzero(mask))
            info["live_bytes"] = int(tenant.state.size[mask].sum())
            last = tenant.reports[-1] if tenant.reports else None
            if last is not None:
                info["scanned_last_trigger"] = any(
                    uid in g.users_scanned for g in last.groups.values())
                info["purged_last_trigger"] = any(
                    uid in g.users_purged for g in last.groups.values())
            out["tenants"][tenant.name] = info
        return out
