"""The retention server's wire protocol: length-prefixed newline-JSON.

Every message on every server socket -- producer feeds and the admin
plane alike -- is one **frame**::

    <decimal byte length of body>\\n<body bytes>\\n

The body is a single UTF-8 JSON object with no embedded newlines (the
encoder enforces it).  The redundant trailing newline is deliberate: a
reader that has lost sync can abort immediately instead of consuming a
corrupted length's worth of garbage, and a human can still eyeball a
captured stream.  Frames are bounded by :data:`MAX_FRAME_BYTES`; an
oversized length prefix is a protocol error, not an allocation.

Message vocabulary
------------------
Producer side (``repro publish`` -> ``serve --listen``)::

    {"type": "hello", "protocol": 1, "source": "jobs", "producer": "..."}
    {"type": "event", "kind": "job"|"publication"|"access", ...payload}
    {"type": "end"}

The server answers ``hello`` and ``end`` with ``{"type": "ok", ...}`` or
``{"type": "error", "reason": ...}``.  Event frames are *not* acked
individually -- producers stream at full speed and TCP provides the
ordering and backpressure; a frame the server cannot decode is diverted
to the event quarantine (with its dead-letter reason code), never
answered, exactly like a malformed row in a trace file.

Admin side (``repro admin`` -> the admin listener)::

    {"type": "request", "cmd": "status" | "health" | "tenants" |
                               "metrics" | "query", ...args}
    {"type": "response", "ok": true, ...}  |  {"type": "response",
                                               "ok": false, "error": ...}

Event payload codecs translate :class:`~repro.stream.events.StreamEvent`
to and from plain dicts, field for field, so a trace file replayed over
the wire reconstructs the exact record objects the file readers produce
-- the first link in the chain that keeps networked runs bit-identical
to batch.

Addresses are spelled ``unix:/path/to.sock``, ``tcp:host:port``, or bare
``host:port``; :func:`parse_address` normalizes all three.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Union

from ..stream.events import (EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION,
                             StreamEvent)
from ..traces.schema import AppAccessRecord, JobRecord, PublicationRecord

__all__ = ["PROTOCOL_VERSION", "MAX_FRAME_BYTES", "FrameError",
           "encode_frame", "write_frame", "FrameReader", "read_frame",
           "encode_event", "decode_event",
           "parse_address", "format_address", "create_listener",
           "connect_socket"]

PROTOCOL_VERSION = 1

#: Upper bound on one frame's body.  Paths dominate event size and are
#: filesystem-limited to a few KiB; a megabyte means a corrupt or
#: hostile length prefix, so the reader refuses rather than buffering.
MAX_FRAME_BYTES = 1 << 20


class FrameError(ValueError):
    """A malformed frame: bad length prefix, bad JSON, missing newline."""


# ---------------------------------------------------------------------------
# framing


def encode_frame(obj: dict) -> bytes:
    """Serialize one message dict to its wire frame."""
    body = json.dumps(obj, separators=(",", ":"), ensure_ascii=False,
                      ).encode("utf-8")
    if b"\n" in body:
        raise FrameError("frame body cannot contain newlines")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame body of {len(body)} bytes exceeds "
                         f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})")
    return b"%d\n%s\n" % (len(body), body)


def write_frame(sock: socket.socket, obj: dict) -> None:
    """Send one frame over a connected socket (blocking, all-or-error)."""
    sock.sendall(encode_frame(obj))


class FrameReader:
    """Incremental frame decoder over a connected socket.

    Buffers socket reads and yields one decoded dict per
    :meth:`read` call; ``None`` means orderly EOF at a frame boundary.
    EOF *inside* a frame -- the torn tail a killed producer leaves -- and
    any framing violation raise :class:`FrameError` so the caller can
    quarantine rather than mis-parse everything after the tear.
    """

    def __init__(self, sock: socket.socket, chunk_size: int = 65536) -> None:
        self._sock = sock
        self._chunk = chunk_size
        self._buf = bytearray()
        self._eof = False

    def _fill(self) -> bool:
        """Pull one chunk into the buffer; False at EOF."""
        if self._eof:
            return False
        data = self._sock.recv(self._chunk)
        if not data:
            self._eof = True
            return False
        self._buf += data
        return True

    def _read_until_newline(self, limit: int) -> bytes | None:
        while True:
            idx = self._buf.find(b"\n")
            if idx >= 0:
                line = bytes(self._buf[:idx])
                del self._buf[:idx + 1]
                return line
            if len(self._buf) > limit:
                raise FrameError(
                    f"no newline within {limit} bytes of frame start")
            if not self._fill():
                if self._buf:
                    raise FrameError("connection closed mid frame header")
                return None

    def read(self) -> dict | None:
        """Next message dict, or ``None`` on clean end of stream."""
        header = self._read_until_newline(32)
        if header is None:
            return None
        try:
            length = int(header)
        except ValueError:
            raise FrameError(f"bad frame length prefix {header!r}") from None
        if not 0 <= length <= MAX_FRAME_BYTES:
            raise FrameError(f"frame length {length} out of range")
        while len(self._buf) < length + 1:
            if not self._fill():
                raise FrameError("connection closed mid frame body")
        body = bytes(self._buf[:length])
        if self._buf[length:length + 1] != b"\n":
            raise FrameError("frame body not newline-terminated")
        del self._buf[:length + 1]
        try:
            obj = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"frame body is not JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise FrameError(
                f"frame body must be a JSON object, got "
                f"{type(obj).__name__}")
        return obj


def read_frame(reader: FrameReader) -> dict | None:
    """Functional alias for :meth:`FrameReader.read`."""
    return reader.read()


# ---------------------------------------------------------------------------
# event codec


def encode_event(event: StreamEvent) -> dict:
    """One event frame body for ``event`` (adds ``type: "event"``)."""
    kind = event.kind
    p = event.payload
    if kind == EVENT_JOB:
        return {"type": "event", "kind": kind, "job_id": p.job_id,
                "uid": p.uid, "submit_ts": p.submit_ts,
                "start_ts": p.start_ts, "end_ts": p.end_ts,
                "num_nodes": p.num_nodes,
                "cores_per_node": p.cores_per_node}
    if kind == EVENT_PUBLICATION:
        return {"type": "event", "kind": kind, "pub_id": p.pub_id,
                "ts": p.ts, "citations": p.citations,
                "author_uids": list(p.author_uids)}
    if kind == EVENT_ACCESS:
        return {"type": "event", "kind": kind, "ts": p.ts, "uid": p.uid,
                "op": p.op, "path": p.path}
    raise ValueError(f"cannot encode stream event of kind {kind!r}")


def decode_event(obj: dict) -> StreamEvent:
    """Rebuild the exact :class:`StreamEvent` an event frame encodes.

    Schema violations (missing fields, wrong types, ``__post_init__``
    failures) raise ``ValueError``/``TypeError``/``KeyError`` -- the
    listener routes those to the quarantine as unparsable rows.
    """
    kind = obj.get("kind")
    if kind == EVENT_JOB:
        rec = JobRecord(int(obj["job_id"]), int(obj["uid"]),
                        int(obj["submit_ts"]), int(obj["start_ts"]),
                        int(obj["end_ts"]), int(obj["num_nodes"]),
                        int(obj["cores_per_node"]))
        return StreamEvent(rec.submit_ts, EVENT_JOB, rec)
    if kind == EVENT_PUBLICATION:
        rec = PublicationRecord(int(obj["pub_id"]), int(obj["ts"]),
                                [int(u) for u in obj["author_uids"]],
                                int(obj["citations"]))
        return StreamEvent(rec.ts, EVENT_PUBLICATION, rec)
    if kind == EVENT_ACCESS:
        path = obj["path"]
        if not isinstance(path, str):
            raise ValueError(f"access path must be a string, "
                             f"got {type(path).__name__}")
        rec = AppAccessRecord(int(obj["ts"]), int(obj["uid"]), path,
                              str(obj["op"]))
        return StreamEvent(rec.ts, EVENT_ACCESS, rec)
    raise ValueError(f"unknown event kind {kind!r}")


# ---------------------------------------------------------------------------
# addresses

#: A parsed address: ``("unix", path)`` or ``("tcp", (host, port))``.
Address = Union[tuple[str, str], tuple[str, tuple[str, int]]]


def parse_address(spec: str) -> Address:
    """Normalize ``unix:/path``, ``tcp:host:port``, or ``host:port``."""
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError(f"empty unix socket path in {spec!r}")
        return ("unix", path)
    if spec.startswith("tcp:"):
        spec = spec[len("tcp:"):]
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"cannot parse address {spec!r}: expected unix:/path, "
            f"tcp:host:port, or host:port")
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        raise ValueError(f"bad port in address {spec!r}") from None


def format_address(address: Address) -> str:
    family, where = address
    if family == "unix":
        return f"unix:{where}"
    host, port = where
    return f"tcp:{host}:{port}"


def create_listener(spec: str, backlog: int = 16) -> socket.socket:
    """A bound, listening socket for ``spec``.

    A pre-existing Unix socket path is unlinked first: the only thing
    that leaves one behind is a dead server (crash before cleanup), and
    a supervisor restarting into the same address must win the bind.
    """
    family, where = parse_address(spec)
    if family == "unix":
        try:
            os.unlink(where)
        except FileNotFoundError:
            pass
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(where)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(where)
    sock.listen(backlog)
    return sock


def connect_socket(spec: str, timeout: float | None = None) -> socket.socket:
    """A connected client socket for ``spec``."""
    family, where = parse_address(spec)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(where)
    except BaseException:
        sock.close()
        raise
    return sock
