"""The retention server's wire protocol: JSON frames plus binary batches.

Every message on every server socket -- producer feeds and the admin
plane alike -- is one **frame**.  Protocol v1 knows one frame shape::

    <decimal byte length of body>\\n<body bytes>\\n

where the body is a single UTF-8 JSON object with no embedded newlines
(the encoder enforces it).  The redundant trailing newline is
deliberate: a reader that has lost sync can abort immediately instead
of consuming a corrupted length's worth of garbage, and a human can
still eyeball a captured stream.  Frames are bounded by the reader's
frame cap (:data:`MAX_FRAME_BYTES` until negotiated otherwise); an
oversized length prefix is a protocol error, not an allocation.

Protocol v2 adds a second, *binary* frame shape for bulk event
transport -- the length prefix is tagged with a leading ``b``::

    b<decimal byte length of payload>\\n<payload bytes>\\n

The payload is a columnar **batch**: magic, a flags byte, the packed
column arrays of up to a few thousand events, and a CRC32 trailer (see
:func:`encode_batch` for the exact layout, and DESIGN.md section 10 for
the diagram).  Control messages (``hello``/``end``/acks) stay JSON in
both protocol versions, so the handshake and teardown remain greppable
on the wire.

Message vocabulary
------------------
Producer side (``repro publish`` -> ``serve --listen``)::

    {"type": "hello", "protocol": 1|2, "source": "jobs",
     "producer": "...", "session": "...", "auth": "...",
     # protocol 2 only:
     "capabilities": ["batch", "zlib"], "max_frame_bytes": N}
    {"type": "event", "kind": "job"|..., "seq": K, ...payload}
    b<len>\\n<columnar batch payload>\\n            # protocol 2 only
    {"type": "end"}

The server answers ``hello`` and ``end`` with ``{"type": "ok", ...}`` or
``{"type": "error", "reason": ...}``.  A v2 ``ok`` echoes the
*negotiated* capability set and frame cap (the intersection of what
both sides support); a v2 client that is refused with an
unsupported-protocol error reconnects speaking v1, so v1 JSON framing
remains the debugging/compat path and unknown-capability peers fall
back cleanly.  Event and batch frames are *not* acked individually --
producers stream at full speed and TCP provides the ordering and
backpressure (the per-stream ack is amortized into the ``end``
exchange, which reports the total row count received); a frame the
server cannot decode is diverted to the event quarantine (with its
dead-letter reason code), never answered, exactly like a malformed row
in a trace file.

Exactly-once sequencing (both protocol versions): a producer numbers
its events ``1, 2, 3, ...`` per source -- ``"seq"`` on v1 event frames,
a :data:`BATCH_FLAG_SEQ` u64 (the sequence number of the batch's first
row) on v2 batch payloads -- and the hello/end acks carry ``"cursor"``,
the highest *contiguously received* sequence number for that source.
A reconnecting producer resumes from ``cursor + 1`` instead of
replaying the round; the server discards any already-seen sequence
numbers, so connection churn (and a server crash-and-resume, whose
checkpoint restores the durable cursors) can duplicate bytes on the
wire but never events in the fold.  ``"session"`` identifies one
logical producer across its reconnects, making ``end`` idempotent.
``"auth"`` carries the optional shared secret; a mismatch is refused
with reason ``unauthorized``.  A listener over its connection quota
refuses with a reason starting ``busy`` and ``"retryable": true`` --
clients back off (jittered exponential) and retry.

Admin side (``repro admin`` -> the admin listener)::

    {"type": "request", "cmd": "status" | "health" | "tenants" |
                               "metrics" | "query", ...args}
    {"type": "response", "ok": true, ...}  |  {"type": "response",
                                               "ok": false, "error": ...}

Event payload codecs translate :class:`~repro.stream.events.StreamEvent`
to and from plain dicts, field for field, so a trace file replayed over
the wire reconstructs the exact record objects the file readers produce
-- the first link in the chain that keeps networked runs bit-identical
to batch.

Addresses are spelled ``unix:/path/to.sock``, ``tcp:host:port``, or bare
``host:port``; :func:`parse_address` normalizes all three.
"""

from __future__ import annotations

import binascii
import json
import os
import socket
import ssl
import struct
import zlib
from typing import Union

import numpy as np

from ..stream.batch import EventBatch
from ..stream.events import (EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION,
                             StreamEvent)
from ..traces.schema import AppAccessRecord, JobRecord, PublicationRecord

__all__ = ["PROTOCOL_V1", "PROTOCOL_V2", "PROTOCOL_VERSION",
           "SUPPORTED_PROTOCOLS", "CAP_BATCH", "CAP_ZLIB",
           "MAX_FRAME_BYTES", "BATCH_MAX_FRAME_BYTES",
           "FrameError", "BatchFormatError", "BinaryFrame",
           "encode_frame", "write_frame", "FrameReader", "read_frame",
           "encode_event", "decode_event",
           "encode_batch", "decode_batch", "encode_batch_frame",
           "parse_address", "format_address", "create_listener",
           "connect_socket", "make_server_ssl_context",
           "make_client_ssl_context"]

PROTOCOL_V1 = 1
PROTOCOL_V2 = 2
#: The protocol this build speaks by default (v2: binary batch frames).
PROTOCOL_VERSION = PROTOCOL_V2
#: Protocols a stock listener accepts; v1 remains the compat path.
SUPPORTED_PROTOCOLS = (PROTOCOL_V1, PROTOCOL_V2)

#: v2 hello capability tokens.  Unknown tokens are ignored by both
#: sides, so future capabilities degrade to "not negotiated".
CAP_BATCH = "batch"
CAP_ZLIB = "zlib"

#: Upper bound on one frame's body before negotiation.  Paths dominate
#: JSON event size and are filesystem-limited to a few KiB; a megabyte
#: means a corrupt or hostile length prefix, so the reader refuses
#: rather than buffering.
MAX_FRAME_BYTES = 1 << 20

#: Ceiling a listener will grant a v2 peer for binary batch frames.
#: The negotiated cap is ``min(client ask, server ceiling)`` and only
#: raises the limit *after* a successful hello on that connection.
BATCH_MAX_FRAME_BYTES = 8 << 20

#: Floor for a negotiated cap -- control frames must always fit.
MIN_FRAME_BYTES = 4096


class FrameError(ValueError):
    """A malformed frame: bad length prefix, bad JSON, missing newline."""


class BatchFormatError(FrameError):
    """A binary batch payload that fails its own self-checks.

    Unlike a raw :class:`FrameError` the *envelope* was intact -- the
    length prefix and trailing newline framed the payload correctly --
    so the connection is still in sync and the reader may continue with
    the next frame after diverting this one.
    """


class BinaryFrame(bytes):
    """A binary frame's payload, as returned by :meth:`FrameReader.read`.

    A distinct type (rather than plain ``bytes``) so callers can
    dispatch on frame shape with one ``isinstance`` check.
    """

    __slots__ = ()


# ---------------------------------------------------------------------------
# framing


def encode_frame(obj: dict) -> bytes:
    """Serialize one message dict to its wire frame."""
    body = json.dumps(obj, separators=(",", ":"), ensure_ascii=False,
                      ).encode("utf-8")
    if b"\n" in body:
        raise FrameError("frame body cannot contain newlines")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame body of {len(body)} bytes exceeds "
                         f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})")
    return b"%d\n%s\n" % (len(body), body)


def write_frame(sock: socket.socket, obj: dict) -> None:
    """Send one frame over a connected socket (blocking, all-or-error)."""
    sock.sendall(encode_frame(obj))


class FrameReader:
    """Incremental frame decoder over a connected socket.

    Buffers socket reads and yields one decoded dict (JSON frame) or
    :class:`BinaryFrame` payload (``b``-tagged frame) per :meth:`read`
    call; ``None`` means orderly EOF at a frame boundary.  EOF *inside*
    a frame -- the torn tail a killed producer leaves -- and any framing
    violation raise :class:`FrameError` so the caller can quarantine
    rather than mis-parse everything after the tear.

    ``max_frame_bytes`` starts at the v1 bound and is raised in place
    after a successful v2 hello negotiates a larger batch-frame cap;
    the length check always runs *before* any body bytes are buffered,
    so an oversized prefix is refused, never allocated.
    """

    def __init__(self, sock: socket.socket, chunk_size: int = 65536,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._sock = sock
        self._chunk = chunk_size
        self._buf = bytearray()
        self._eof = False
        self.max_frame_bytes = max_frame_bytes

    def _fill(self) -> bool:
        """Pull one chunk into the buffer; False at EOF."""
        if self._eof:
            return False
        data = self._sock.recv(self._chunk)
        if not data:
            self._eof = True
            return False
        self._buf += data
        return True

    def _read_until_newline(self, limit: int) -> bytes | None:
        while True:
            idx = self._buf.find(b"\n")
            if idx >= 0:
                line = bytes(self._buf[:idx])
                del self._buf[:idx + 1]
                return line
            if len(self._buf) > limit:
                raise FrameError(
                    f"no newline within {limit} bytes of frame start")
            if not self._fill():
                if self._buf:
                    raise FrameError("connection closed mid frame header")
                return None

    def read(self) -> dict | BinaryFrame | None:
        """Next message, or ``None`` on clean end of stream.

        JSON frames decode to a dict; binary (``b``-prefixed) frames
        return their raw payload as a :class:`BinaryFrame` for the
        caller to hand to :func:`decode_batch`.
        """
        header = self._read_until_newline(32)
        if header is None:
            return None
        binary = header[:1] == b"b"
        if binary:
            header = header[1:]
        try:
            length = int(header)
        except ValueError:
            raise FrameError(f"bad frame length prefix {header!r}") from None
        if not 0 <= length <= self.max_frame_bytes:
            raise FrameError(f"frame length {length} out of range "
                             f"(cap {self.max_frame_bytes})")
        have = len(self._buf)
        need = length + 1
        if have < need:
            # Read the remaining body straight into one right-sized
            # buffer: appending chunks to ``_buf`` and slicing them back
            # out would copy every large batch frame twice more.
            body_buf = bytearray(need)
            view = memoryview(body_buf)
            view[:have] = self._buf
            self._buf.clear()
            got = have
            while got < need:
                read = self._sock.recv_into(view[got:])
                if not read:
                    self._eof = True
                    raise FrameError("connection closed mid frame body")
                got += read
            if body_buf[length] != 0x0A:
                raise FrameError("frame body not newline-terminated")
            body = bytes(view[:length])
        else:
            body = bytes(self._buf[:length])
            if self._buf[length:length + 1] != b"\n":
                raise FrameError("frame body not newline-terminated")
            del self._buf[:length + 1]
        if binary:
            return BinaryFrame(body)
        try:
            obj = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"frame body is not JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise FrameError(
                f"frame body must be a JSON object, got "
                f"{type(obj).__name__}")
        return obj

    def read_message(self) -> dict | None:
        """Like :meth:`read` but only control messages are legal.

        Used wherever the protocol state machine expects JSON (admin
        plane, handshakes, acks); a binary frame there is a violation.
        """
        frame = self.read()
        if isinstance(frame, BinaryFrame):
            raise FrameError("unexpected binary frame; expected a JSON "
                             "control message")
        return frame


def read_frame(reader: FrameReader) -> dict | None:
    """Functional alias for :meth:`FrameReader.read`."""
    return reader.read()


# ---------------------------------------------------------------------------
# event codec


def encode_event(event: StreamEvent) -> dict:
    """One event frame body for ``event`` (adds ``type: "event"``)."""
    kind = event.kind
    p = event.payload
    if kind == EVENT_JOB:
        return {"type": "event", "kind": kind, "job_id": p.job_id,
                "uid": p.uid, "submit_ts": p.submit_ts,
                "start_ts": p.start_ts, "end_ts": p.end_ts,
                "num_nodes": p.num_nodes,
                "cores_per_node": p.cores_per_node}
    if kind == EVENT_PUBLICATION:
        return {"type": "event", "kind": kind, "pub_id": p.pub_id,
                "ts": p.ts, "citations": p.citations,
                "author_uids": list(p.author_uids)}
    if kind == EVENT_ACCESS:
        return {"type": "event", "kind": kind, "ts": p.ts, "uid": p.uid,
                "op": p.op, "path": p.path}
    raise ValueError(f"cannot encode stream event of kind {kind!r}")


def decode_event(obj: dict) -> StreamEvent:
    """Rebuild the exact :class:`StreamEvent` an event frame encodes.

    Schema violations (missing fields, wrong types, ``__post_init__``
    failures) raise ``ValueError``/``TypeError``/``KeyError`` -- the
    listener routes those to the quarantine as unparsable rows.
    """
    kind = obj.get("kind")
    if kind == EVENT_JOB:
        rec = JobRecord(int(obj["job_id"]), int(obj["uid"]),
                        int(obj["submit_ts"]), int(obj["start_ts"]),
                        int(obj["end_ts"]), int(obj["num_nodes"]),
                        int(obj["cores_per_node"]))
        return StreamEvent(rec.submit_ts, EVENT_JOB, rec)
    if kind == EVENT_PUBLICATION:
        rec = PublicationRecord(int(obj["pub_id"]), int(obj["ts"]),
                                [int(u) for u in obj["author_uids"]],
                                int(obj["citations"]))
        return StreamEvent(rec.ts, EVENT_PUBLICATION, rec)
    if kind == EVENT_ACCESS:
        path = obj["path"]
        if not isinstance(path, str):
            raise ValueError(f"access path must be a string, "
                             f"got {type(path).__name__}")
        rec = AppAccessRecord(int(obj["ts"]), int(obj["uid"]), path,
                              str(obj["op"]))
        return StreamEvent(rec.ts, EVENT_ACCESS, rec)
    raise ValueError(f"unknown event kind {kind!r}")


# ---------------------------------------------------------------------------
# batch codec (protocol v2)

#: Leading magic of every batch payload: "Repro Event Batch, layout 2".
BATCH_MAGIC = b"REB2"
#: Flags byte, bit 0: the column body is zlib-compressed.
BATCH_FLAG_ZLIB = 0x01
#: Flags byte, bit 1: a u64le sequence number (of the batch's first row)
#: follows the flags byte, before the column body.
BATCH_FLAG_SEQ = 0x02
_BATCH_KNOWN_FLAGS = BATCH_FLAG_ZLIB | BATCH_FLAG_SEQ

_HEADER = struct.Struct("<7I")  # n_rows n_jobs n_pubs n_acc n_auth n_pool blob
_CRC = struct.Struct("<I")
_SEQ = struct.Struct("<Q")


def _batch_columns(batch: EventBatch) -> bytes:
    """The packed column body of ``batch`` (uncompressed form)."""
    pool = [p.encode("utf-8") for p in batch.pool()]
    blob = b"".join(pool)
    pool_off = np.zeros(len(pool) + 1, np.uint32)
    if pool:
        np.cumsum([len(p) for p in pool], out=pool_off[1:])
    parts = [
        _HEADER.pack(batch.n, batch.n_jobs, batch.n_pubs, batch.n_acc,
                     batch.pub_auth.size, len(pool), len(blob)),
        batch.kinds.tobytes(), batch.ts.tobytes(),
        batch.job_id.tobytes(), batch.job_uid.tobytes(),
        batch.job_start.tobytes(), batch.job_end.tobytes(),
        batch.job_nodes.tobytes(), batch.job_cores.tobytes(),
        batch.pub_id.tobytes(), batch.pub_cit.tobytes(),
        batch.pub_auth_off.tobytes(), batch.pub_auth.tobytes(),
        batch.acc_uid.tobytes(), batch.acc_op.tobytes(),
        batch.acc_path.tobytes(),
        pool_off.tobytes(), blob,
    ]
    return b"".join(parts)


def encode_batch(batch: EventBatch, *, compress: bool = False,
                 seq: int | None = None) -> bytes:
    """Serialize ``batch`` to a binary frame payload.

    Layout::

        REB2 | flags:u8 | [first_seq:u64le] | column body | crc32:u32le

    The CRC covers everything before it (magic, flags, optional
    sequence number, and the body *as transmitted*, i.e. after
    compression), so a receiver verifies integrity with one pass over
    the wire bytes before spending any decompression or parsing work.
    All integers are little-endian; the column body is the fixed-order
    sequence of arrays documented in :mod:`repro.stream.batch` (header
    counts, kinds, ts, job columns, publication columns + ragged author
    offsets, access columns, then the string-pool offsets and UTF-8
    blob).

    ``seq``, when given, is the 1-based per-source sequence number of
    the batch's *first* row (rows cover ``seq .. seq + n - 1``); it is
    stored outside the compressed body so the receiving edge can dedupe
    without decompressing.
    """
    body = _batch_columns(batch)
    flags = 0
    if compress:
        flags |= BATCH_FLAG_ZLIB
        body = zlib.compress(body, 1)
    head = BATCH_MAGIC
    if seq is not None:
        if seq < 1:
            raise ValueError(f"batch seq must be >= 1, got {seq}")
        head += bytes((flags | BATCH_FLAG_SEQ,)) + _SEQ.pack(seq)
    else:
        head += bytes((flags,))
    head += body
    return head + _CRC.pack(binascii.crc32(head) & 0xFFFFFFFF)


def _take(buf: memoryview, pos: int, nbytes: int, what: str):
    end = pos + nbytes
    if end > len(buf):
        raise BatchFormatError(f"batch payload truncated in {what}")
    return buf[pos:end], end


def _col(buf: memoryview, pos: int, count: int, dtype, what: str):
    raw, pos = _take(buf, pos, count * dtype().itemsize, what)
    return np.frombuffer(raw, dtype=dtype), pos


def decode_batch(payload: bytes) -> EventBatch:
    """Decode one binary frame payload into an :class:`EventBatch`.

    Verifies magic, flags, CRC (before decompressing), and the
    structural consistency of every length field; any violation raises
    :class:`BatchFormatError`.  Per-row *value* problems (bad op codes,
    impossible job timestamps, unknown uids...) are deliberately left
    to the quarantine's vectorized row validation -- one bad row must
    divert that row, not the whole frame.
    """
    if len(payload) < len(BATCH_MAGIC) + 1 + _CRC.size:
        raise BatchFormatError(f"batch payload of {len(payload)} bytes is "
                               f"shorter than its envelope")
    if payload[:4] != BATCH_MAGIC:
        raise BatchFormatError(f"bad batch magic {payload[:4]!r}")
    (crc_stored,) = _CRC.unpack_from(payload, len(payload) - _CRC.size)
    crc_actual = binascii.crc32(payload[:-_CRC.size]) & 0xFFFFFFFF
    if crc_stored != crc_actual:
        raise BatchFormatError(
            f"batch CRC mismatch: stored {crc_stored:#010x}, "
            f"computed {crc_actual:#010x}")
    flags = payload[4]
    if flags & ~_BATCH_KNOWN_FLAGS:
        raise BatchFormatError(f"unknown batch flags {flags:#04x}")
    pos0 = 5
    first_seq = None
    if flags & BATCH_FLAG_SEQ:
        if len(payload) < pos0 + _SEQ.size + _CRC.size:
            raise BatchFormatError("batch payload truncated in seq field")
        (first_seq,) = _SEQ.unpack_from(payload, pos0)
        pos0 += _SEQ.size
        if first_seq < 1:
            raise BatchFormatError(f"batch first_seq {first_seq} out of range")
    body = payload[pos0:-_CRC.size]
    if flags & BATCH_FLAG_ZLIB:
        try:
            body = zlib.decompress(body)
        except zlib.error as exc:
            raise BatchFormatError(f"batch zlib body: {exc}") from exc
    buf = memoryview(body)
    if len(buf) < _HEADER.size:
        raise BatchFormatError("batch body shorter than its header")
    n, n_jobs, n_pubs, n_acc, n_auth, n_pool, blob_len = \
        _HEADER.unpack_from(buf, 0)
    pos = _HEADER.size
    kinds, pos = _col(buf, pos, n, np.uint8, "kinds")
    ts, pos = _col(buf, pos, n, np.int64, "ts")
    job_id, pos = _col(buf, pos, n_jobs, np.int64, "job_id")
    job_uid, pos = _col(buf, pos, n_jobs, np.int64, "job_uid")
    job_start, pos = _col(buf, pos, n_jobs, np.int64, "job_start")
    job_end, pos = _col(buf, pos, n_jobs, np.int64, "job_end")
    job_nodes, pos = _col(buf, pos, n_jobs, np.int64, "job_nodes")
    job_cores, pos = _col(buf, pos, n_jobs, np.int64, "job_cores")
    pub_id, pos = _col(buf, pos, n_pubs, np.int64, "pub_id")
    pub_cit, pos = _col(buf, pos, n_pubs, np.int64, "pub_cit")
    auth_off, pos = _col(buf, pos, n_pubs + 1, np.int64, "author offsets")
    pub_auth, pos = _col(buf, pos, n_auth, np.int64, "authors")
    acc_uid, pos = _col(buf, pos, n_acc, np.int64, "acc_uid")
    acc_op, pos = _col(buf, pos, n_acc, np.uint8, "acc_op")
    acc_path, pos = _col(buf, pos, n_acc, np.uint32, "acc_path")
    pool_off, pos = _col(buf, pos, n_pool + 1, np.uint32, "pool offsets")
    blob_view, pos = _take(buf, pos, blob_len, "string pool")
    if pos != len(buf):
        raise BatchFormatError(f"{len(buf) - pos} trailing bytes after "
                               f"batch columns")
    if n and int(kinds.max()) > 2:
        raise BatchFormatError("batch kinds column has unknown kind codes")
    counts = np.bincount(kinds, minlength=3)
    if (int(counts[0]), int(counts[1]), int(counts[2])) != \
            (n_jobs, n_pubs, n_acc):
        raise BatchFormatError(
            f"kind counts {counts.tolist()} disagree with header "
            f"({n_jobs} jobs, {n_pubs} pubs, {n_acc} accesses)")
    if n_pubs and (np.diff(auth_off) < 0).any() or \
            int(auth_off[0]) != 0 or int(auth_off[-1]) != n_auth:
        raise BatchFormatError("publication author offsets are not a "
                               "monotone 0..n_auth ramp")
    if n_pool and (np.diff(pool_off.astype(np.int64)) < 0).any() or \
            int(pool_off[0]) != 0 or int(pool_off[-1]) != blob_len:
        raise BatchFormatError("string pool offsets are not a monotone "
                               "0..blob ramp")
    batch = EventBatch(
        kinds, ts,
        job_id=job_id, job_uid=job_uid, job_start=job_start,
        job_end=job_end, job_nodes=job_nodes, job_cores=job_cores,
        pub_id=pub_id, pub_cit=pub_cit,
        pub_auth_off=auth_off, pub_auth=pub_auth,
        acc_uid=acc_uid, acc_op=acc_op, acc_path=acc_path,
        pool_off=pool_off, pool_blob=bytes(blob_view))
    if first_seq is not None:
        batch.first_seq = int(first_seq)
        batch.seq_width = n
    return batch


def encode_batch_frame(payload: bytes,
                       max_frame_bytes: int = BATCH_MAX_FRAME_BYTES) -> bytes:
    """Wrap a batch payload in the ``b``-tagged frame envelope."""
    if len(payload) > max_frame_bytes:
        raise FrameError(f"batch payload of {len(payload)} bytes exceeds "
                         f"the negotiated cap ({max_frame_bytes})")
    return b"b%d\n" % len(payload) + payload + b"\n"


# ---------------------------------------------------------------------------
# addresses

#: A parsed address: ``("unix", path)`` or ``("tcp", (host, port))``.
Address = Union[tuple[str, str], tuple[str, tuple[str, int]]]


def parse_address(spec: str) -> Address:
    """Normalize ``unix:/path``, ``tcp:host:port``, or ``host:port``."""
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError(f"empty unix socket path in {spec!r}")
        return ("unix", path)
    if spec.startswith("tcp:"):
        spec = spec[len("tcp:"):]
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"cannot parse address {spec!r}: expected unix:/path, "
            f"tcp:host:port, or host:port")
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        raise ValueError(f"bad port in address {spec!r}") from None


def format_address(address: Address) -> str:
    family, where = address
    if family == "unix":
        return f"unix:{where}"
    host, port = where
    return f"tcp:{host}:{port}"


def create_listener(spec: str, backlog: int = 16) -> socket.socket:
    """A bound, listening socket for ``spec``.

    A pre-existing Unix socket path is unlinked first: the only thing
    that leaves one behind is a dead server (crash before cleanup), and
    a supervisor restarting into the same address must win the bind.
    """
    family, where = parse_address(spec)
    if family == "unix":
        try:
            os.unlink(where)
        except FileNotFoundError:
            pass
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(where)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(where)
    sock.listen(backlog)
    return sock


def connect_socket(spec: str, timeout: float | None = None,
                   ssl_context: ssl.SSLContext | None = None,
                   ) -> socket.socket:
    """A connected client socket for ``spec``.

    With ``ssl_context``, the TCP connection is wrapped in TLS before
    return (the handshake runs under the same ``timeout``); unix-socket
    addresses never wrap -- they are same-host transport and the fleet
    uses them for router->worker hops inside one machine.
    """
    family, where = parse_address(spec)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(where)
        if ssl_context is not None and family != "unix":
            sock = ssl_context.wrap_socket(sock, server_hostname=where[0])
    except BaseException:
        sock.close()
        raise
    return sock


# ---------------------------------------------------------------------------
# TLS

def make_server_ssl_context(certfile: str,
                            keyfile: str | None = None) -> ssl.SSLContext:
    """A server-side TLS context for the ingest socket.

    ``certfile``/``keyfile`` come from ``serve --tls-cert/--tls-key``;
    the listener wraps every accepted TCP connection before any frame
    is read, so refuse-before-allocate semantics are unchanged (the
    frame cap applies to the decrypted stream).
    """
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(certfile, keyfile)
    return context


def make_client_ssl_context(cafile: str | None = None) -> ssl.SSLContext:
    """A client-side TLS context (``publish``/``admin --tls-ca``).

    Trust is pinned to ``cafile`` (typically the server's self-signed
    certificate itself): certificate verification is required against
    exactly that anchor, while hostname matching is disabled --
    deployments address servers by IP/socket path and the pinned CA is
    the identity.  Without ``cafile`` the channel is encrypted but
    unauthenticated (still useful against passive snooping in tests).
    """
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    context.check_hostname = False
    if cafile:
        context.load_verify_locations(cafile)
        context.verify_mode = ssl.CERT_REQUIRED
    else:
        context.verify_mode = ssl.CERT_NONE
    return context
