"""``repro dashboard``: render what a retention server is doing.

Two data paths feed one pair of renderers:

* **live** -- :func:`fetch_dashboard_data` asks a running server's admin
  socket for ``status``, ``metrics`` (with the newest N history-ring
  samples) and ``activity`` and fuses them into one dict;
* **offline** -- :func:`load_history_data` rebuilds the same dict shape
  from a metrics-history JSONL file (plus its rotated backups), so a
  dead server's last written samples render identically.

:func:`render_terminal` prints an ASCII view (ingest sparkline, tenant
table, activeness-rank percentiles, class-distribution bars, capacity
forecasts); :func:`render_html` writes the same content as one static
self-contained HTML file (inline CSS, inline SVG sparkline -- no
external assets, safe to open from a scratch directory).  Everything is
stdlib + the data dict: the renderers never touch sockets or the engine,
which keeps them trivially testable.
"""

from __future__ import annotations

import html
import json
import os

__all__ = ["fetch_dashboard_data", "load_history_data",
           "render_terminal", "render_html"]

#: History samples fetched/rendered by default.
DEFAULT_SAMPLES = 120

_BARS = "▁▂▃▄▅▆▇█"


def fetch_dashboard_data(address: str, *, samples: int = DEFAULT_SAMPLES,
                         timeout: float = 10.0) -> dict:
    """One dashboard snapshot from a live server's admin socket."""
    from .admin import admin_request

    status = admin_request(address, {"cmd": "status"}, timeout=timeout)
    metrics = admin_request(address, {"cmd": "metrics",
                                      "history": samples}, timeout=timeout)
    activity = admin_request(address, {"cmd": "activity"}, timeout=timeout)
    for part, name in ((status, "status"), (metrics, "metrics"),
                       (activity, "activity")):
        if not part.get("ok"):
            raise ConnectionError(f"admin {name} against {address} failed: "
                                  f"{part.get('error')}")
    return {
        "source": f"live admin socket {address}",
        "status": status,
        "metrics": metrics,
        "activity": activity,
        "history": metrics.get("history") or [],
    }


def load_history_data(path: str, *, samples: int = DEFAULT_SAMPLES) -> dict:
    """The offline snapshot: newest ``samples`` of a history file.

    Reads the rotated backups too (oldest first, same layout the
    :class:`~repro.server.metrics.MetricsHistory` writes), skipping torn
    lines, so the file of a crashed server still renders.
    """
    rows: list[dict] = []
    backups = sorted((p for p in (f"{path}.{i}" for i in range(9, 0, -1))
                      if os.path.exists(p)),
                     key=lambda p: int(p.rsplit(".", 1)[1]), reverse=True)
    for candidate in [*backups, path]:
        try:
            fh = open(candidate)
        except OSError:
            continue
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    sample = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(sample, dict):
                    rows.append(sample)
    if not rows:
        raise FileNotFoundError(f"no metrics-history samples under {path}")
    rows = rows[-samples:]
    newest = rows[-1]
    tenants = newest.get("tenants") or {}
    # Synthesize the live-view dict shape from the newest sample.
    status = {"ok": True, "cursor": newest.get("cursor", 0),
              "next_boundary": newest.get("boundary", 0) + 1,
              "stats": {k: newest.get(k, 0)
                        for k in ("events_job", "events_publication",
                                  "events_access", "activeness_evals",
                                  "checkpoints_written",
                                  "checkpoint_failures")},
              "tenants": {name: {"triggers": info.get("triggers", 0),
                                 "live_files": info.get("live_files", 0),
                                 "live_bytes": info.get("live_bytes", 0)}
                          for name, info in tenants.items()}}
    metrics = {"ok": True, "cursor": newest.get("cursor", 0),
               "refold_fraction": newest.get("refold_fraction", 0.0),
               "checkpoints_written": newest.get("checkpoints_written", 0),
               "checkpoint_failures": newest.get("checkpoint_failures", 0)}
    return {"source": f"history file {path}", "status": status,
            "metrics": metrics, "activity": {"params": {}, "tenants": {}},
            "history": rows}


# ---------------------------------------------------------------------------
# shared shaping


def _ingest_series(history: list[dict]) -> list[float]:
    """Per-sample events/s between consecutive samples (wall-clocked)."""
    rates: list[float] = []
    for prev, cur in zip(history, history[1:]):
        try:
            dc = int(cur["cursor"]) - int(prev["cursor"])
            dt = float(cur["mono"]) - float(prev["mono"])
        except (KeyError, TypeError, ValueError):
            continue
        if dt > 0 and dc >= 0:
            rates.append(dc / dt)
    return rates


def _sparkline(values: list[float], width: int = 48) -> str:
    if not values:
        return "(no samples)"
    if len(values) > width:
        # Downsample by striding from the end: the newest values matter.
        step = len(values) / width
        values = [values[min(len(values) - 1, int(i * step))]
                  for i in range(width)]
    top = max(values) or 1.0
    return "".join(_BARS[min(len(_BARS) - 1,
                             int(v / top * (len(_BARS) - 1)))]
                   for v in values)


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if abs(n) < 1024 or unit == "PiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}PiB"


def _tenant_rows(data: dict) -> list[dict]:
    history = data["history"]
    newest = history[-1] if history else {}
    sample_tenants = newest.get("tenants") or {}
    status_tenants = (data["status"].get("tenants") or {})
    rows = []
    for name in sorted(set(sample_tenants) | set(status_tenants)):
        info = dict(status_tenants.get(name) or {})
        info.update(sample_tenants.get(name) or {})
        rows.append({
            "name": name,
            "triggers": info.get("triggers", 0),
            "live_files": info.get("live_files", 0),
            "live_bytes": info.get("live_bytes", 0),
            "utilization": info.get("utilization"),
            "purged_bytes": info.get("purged_bytes", 0),
            "target_misses": info.get("target_misses", 0),
            "forecast": info.get("forecast_days_to_capacity"),
            "latency": (info.get("trigger_latency") or {}),
        })
    return rows


def _class_bars(activity: dict, width: int = 30) -> list[str]:
    lines = []
    for name, entry in sorted((activity.get("tenants") or {}).items()):
        classes = entry.get("classes") or {}
        total = sum(classes.values()) or 1
        parts = ", ".join(f"{label}:{n}" for label, n in classes.items())
        lines.append(f"  {name:<12} {parts}")
        for label, n in classes.items():
            bar = "#" * max(1, int(n / total * width)) if n else ""
            lines.append(f"    {label:<22} {bar} {n}")
    return lines


# ---------------------------------------------------------------------------
# renderers


def render_terminal(data: dict) -> str:
    """The dashboard as plain text for a terminal."""
    status = data["status"]
    metrics = data["metrics"]
    history = data["history"]
    stats = status.get("stats") or {}
    rates = _ingest_series(history)
    lines = [
        f"repro retention dashboard -- {data['source']}",
        "=" * 64,
        f"cursor {status.get('cursor', 0):,}   "
        f"next boundary day {status.get('next_boundary', 0)}   "
        f"samples {len(history)}",
        f"events: job {stats.get('events_job', 0):,}  "
        f"pub {stats.get('events_publication', 0):,}  "
        f"access {stats.get('events_access', 0):,}",
        f"checkpoints {metrics.get('checkpoints_written', 0)} written / "
        f"{metrics.get('checkpoint_failures', 0)} failed   "
        f"refold fraction {metrics.get('refold_fraction', 0.0):.3f}",
        "",
        f"ingest rate (events/s, per boundary sample, "
        f"peak {max(rates):,.0f})" if rates else
        "ingest rate: not enough samples yet",
        f"  {_sparkline(rates)}",
        "",
        "tenants",
    ]
    for row in _tenant_rows(data):
        util = (f"{row['utilization'] * 100.0:5.1f}%"
                if isinstance(row["utilization"], (int, float)) else "   --")
        forecast = (f"{row['forecast']:.1f}d to full"
                    if isinstance(row["forecast"], (int, float))
                    else "no growth")
        p99 = row["latency"].get("p99")
        lat = f"p99 {p99 * 1000.0:.1f}ms" if p99 is not None else "p99 --"
        lines.append(
            f"  {row['name']:<12} triggers {row['triggers']:>4}  "
            f"live {row['live_files']:>8,} files "
            f"{_fmt_bytes(row['live_bytes']):>10}  util {util}  "
            f"purged {_fmt_bytes(row['purged_bytes']):>10}  "
            f"misses {row['target_misses']:>3}  {lat}  {forecast}")
    activity = data.get("activity") or {}
    params = activity.get("params") or {}
    if params:
        lines += ["", "activeness ranks (per parameter set)"]
        for key, entry in sorted(params.items()):
            lines.append(
                f"  {key:<12} users {entry.get('users', 0):>6,}  "
                f"op-active {entry.get('op_active', 0):>6,}  "
                f"oc-active {entry.get('oc_active', 0):>6,}")
            for which in ("op_rank_percentiles", "oc_rank_percentiles"):
                pct = entry.get(which)
                if pct:
                    body = "  ".join(f"{k}={v:.3g}"
                                     for k, v in pct.items())
                    lines.append(f"    {which.split('_')[0]}: {body}")
    bars = _class_bars(activity)
    if bars:
        lines += ["", "user classes (latest classification)", *bars]
    return "\n".join(lines) + "\n"


def render_html(data: dict) -> str:
    """The dashboard as one static self-contained HTML page."""
    status = data["status"]
    history = data["history"]
    rates = _ingest_series(history)
    esc = html.escape

    def svg_sparkline(values: list[float], w: int = 640,
                      h: int = 80) -> str:
        if len(values) < 2:
            return "<p>not enough samples for a rate series yet</p>"
        top = max(values) or 1.0
        pts = " ".join(
            f"{i * w / (len(values) - 1):.1f},"
            f"{h - (v / top) * (h - 4) - 2:.1f}"
            for i, v in enumerate(values))
        return (f'<svg viewBox="0 0 {w} {h}" class="spark">'
                f'<polyline points="{pts}" fill="none" '
                f'stroke="#2a7" stroke-width="2"/></svg>'
                f"<p class='dim'>peak {max(values):,.0f} events/s over "
                f"{len(values)} boundary samples</p>")

    tenant_rows = []
    for row in _tenant_rows(data):
        util = (f"{row['utilization'] * 100.0:.1f}%"
                if isinstance(row["utilization"], (int, float)) else "&ndash;")
        forecast = (f"{row['forecast']:.1f} d"
                    if isinstance(row["forecast"], (int, float))
                    else "no growth")
        p99 = row["latency"].get("p99")
        lat = f"{p99 * 1000.0:.1f} ms" if p99 is not None else "&ndash;"
        tenant_rows.append(
            f"<tr><td>{esc(str(row['name']))}</td>"
            f"<td>{row['triggers']}</td>"
            f"<td>{row['live_files']:,}</td>"
            f"<td>{esc(_fmt_bytes(row['live_bytes']))}</td>"
            f"<td>{util}</td>"
            f"<td>{esc(_fmt_bytes(row['purged_bytes']))}</td>"
            f"<td>{row['target_misses']}</td>"
            f"<td>{lat}</td><td>{forecast}</td></tr>")

    activity = data.get("activity") or {}
    rank_rows = []
    for key, entry in sorted((activity.get("params") or {}).items()):
        for which in ("op_rank_percentiles", "oc_rank_percentiles"):
            pct = entry.get(which) or {}
            if pct:
                cells = "".join(f"<td>{v:.3g}</td>" for v in pct.values())
                rank_rows.append(
                    f"<tr><td>{esc(key)}</td>"
                    f"<td>{esc(which.split('_')[0])}</td>{cells}</tr>")
    class_rows = []
    for name, entry in sorted((activity.get("tenants") or {}).items()):
        classes = entry.get("classes") or {}
        total = sum(classes.values()) or 1
        for label, n in classes.items():
            width = int(n / total * 240)
            class_rows.append(
                f"<tr><td>{esc(str(name))}</td><td>{esc(str(label))}</td>"
                f"<td><div class='bar' style='width:{width}px'></div>"
                f" {n}</td></tr>")

    stats = status.get("stats") or {}
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>repro retention dashboard</title>
<style>
 body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
        max-width: 60em; color: #223; }}
 h1 {{ font-size: 1.3em; }} h2 {{ font-size: 1.1em; margin-top: 1.6em; }}
 table {{ border-collapse: collapse; width: 100%; }}
 th, td {{ text-align: left; padding: .25em .6em;
          border-bottom: 1px solid #dde; }}
 .dim {{ color: #778; }} .spark {{ width: 100%; height: 80px; }}
 .bar {{ display: inline-block; height: .8em; background: #2a7;
        vertical-align: middle; }}
</style></head><body>
<h1>repro retention dashboard</h1>
<p class="dim">{esc(str(data['source']))} &middot;
cursor {status.get('cursor', 0):,} &middot;
next boundary day {status.get('next_boundary', 0)} &middot;
events: job {stats.get('events_job', 0):,} /
pub {stats.get('events_publication', 0):,} /
access {stats.get('events_access', 0):,}</p>
<h2>Ingest rate</h2>
{svg_sparkline(rates)}
<h2>Tenants</h2>
<table><tr><th>tenant</th><th>triggers</th><th>live files</th>
<th>live bytes</th><th>util</th><th>purged</th><th>target misses</th>
<th>trigger p99</th><th>capacity forecast</th></tr>
{''.join(tenant_rows) or '<tr><td colspan="9">no tenants</td></tr>'}
</table>
<h2>Activeness rank percentiles</h2>
<table><tr><th>params</th><th>rank</th><th>p10</th><th>p25</th><th>p50</th>
<th>p75</th><th>p90</th><th>p99</th></tr>
{''.join(rank_rows) or '<tr><td colspan="8">no evaluation yet</td></tr>'}
</table>
<h2>User classes</h2>
<table><tr><th>tenant</th><th>class</th><th>users</th></tr>
{''.join(class_rows) or '<tr><td colspan="3">no classification yet</td></tr>'}
</table>
</body></html>
"""
