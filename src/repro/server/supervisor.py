"""Supervised restarts: keep the retention server alive across crashes.

The durability story so far ends at the checkpoint chain -- a killed
daemon *can* resume bit-identically, but something has to notice the
death and restart it.  :class:`Supervisor` is that something: a parent
loop that spawns the serve command, waits, and on an abnormal exit
relaunches it with ``--resume`` appended (once the checkpoint directory
has a link to resume from), under seeded exponential backoff.

The state machine is deliberately small and fully injectable (``spawn``,
``sleep``, ``clock``), so ``tests/test_supervisor.py`` drives it with a
fake child and asserts the exact backoff schedule:

* exit code 0 -- clean completion, supervisor returns 0;
* non-retryable codes (default: 3, the serve CLI's
  checkpoint-failure exit -- restarting cannot make an unwritable
  checkpoint directory writable) -- supervisor passes the code through;
* any other exit (including signal deaths, which ``subprocess`` reports
  as negative codes) -- relaunch after ``base * multiplier**(n-1)``
  seconds, jittered deterministically from the seed.  A child that
  stayed up ``healthy_seconds`` resets the consecutive-crash counter;
  ``max_restarts`` consecutive crashes means the service cannot hold and
  the supervisor gives up with :data:`EXIT_GIVE_UP`.

Real deployments run ``repro supervise -- serve --listen ...``; the
chaos path (``repro.faults`` killing the child mid-ingest with a
scripted ``kill -9``) exercises exactly this loop in CI.
"""

from __future__ import annotations

import random
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = ["EXIT_GIVE_UP", "BackoffPolicy", "Supervisor",
           "SupervisorReport"]

#: Exit code when ``max_restarts`` consecutive crashes exhaust the budget.
EXIT_GIVE_UP = 4

#: Child exit codes that restarting cannot fix (3 = the serve CLI's
#: checkpoint-failure exit).
NON_RETRYABLE = (3,)


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with seeded jitter and a give-up bound."""

    base: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0
    max_restarts: int = 5
    healthy_seconds: float = 30.0

    def delays(self):
        """The jittered delay sequence (an infinite generator)."""
        rng = random.Random(self.seed)
        n = 0
        while True:
            raw = min(self.max_delay, self.base * self.multiplier ** n)
            yield raw * (1.0 + self.jitter * rng.random())
            n += 1


@dataclass
class Attempt:
    """One child lifetime, as the supervisor saw it."""

    returncode: int
    uptime: float
    resumed: bool
    delay: float | None = None  # backoff slept *after* this attempt


@dataclass
class SupervisorReport:
    """Everything that happened across one :meth:`Supervisor.run`."""

    attempts: list[Attempt] = field(default_factory=list)
    final_returncode: int | None = None
    gave_up: bool = False

    @property
    def restarts(self) -> int:
        return max(0, len(self.attempts) - 1)


def _default_spawn(command: Sequence[str]):
    return subprocess.Popen(list(command))


class Supervisor:
    """Spawn-and-restart loop around one serve command.

    ``command`` is the child argv.  ``resume_args`` (default
    ``("--resume",)``) is appended when ``should_resume()`` says there is
    a checkpoint to resume from -- by default, when the predicate is
    given; the CLI passes one that checks the checkpoint directory for
    ``checkpoint-*.npz`` links.  ``spawn`` must return an object with
    ``wait() -> int``.
    """

    def __init__(self, command: Sequence[str], *,
                 backoff: BackoffPolicy | None = None,
                 resume_args: Sequence[str] = ("--resume",),
                 should_resume: Callable[[], bool] | None = None,
                 non_retryable: Sequence[int] = NON_RETRYABLE,
                 spawn: Callable[[Sequence[str]], object] = _default_spawn,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 log: Callable[[str], None] | None = None) -> None:
        self.command = list(command)
        self.backoff = backoff or BackoffPolicy()
        self.resume_args = list(resume_args)
        self.should_resume = should_resume
        self.non_retryable = tuple(non_retryable)
        self._spawn = spawn
        self._sleep = sleep
        self._clock = clock
        self._log = log or (lambda line: print(line, file=sys.stderr))
        self.report = SupervisorReport()

    def _child_command(self) -> list[str]:
        command = list(self.command)
        if (self.resume_args and self.should_resume is not None
                and self.should_resume()
                and not any(arg in command for arg in self.resume_args)):
            command += self.resume_args
        return command

    def run(self) -> int:
        """Supervise until clean exit, non-retryable exit, or give-up."""
        delays = self.backoff.delays()
        consecutive = 0
        while True:
            command = self._child_command()
            resumed = command != self.command
            started = self._clock()
            child = self._spawn(command)
            rc = child.wait()
            uptime = self._clock() - started
            attempt = Attempt(returncode=rc, uptime=uptime, resumed=resumed)
            self.report.attempts.append(attempt)
            if rc == 0:
                self.report.final_returncode = 0
                return 0
            if rc in self.non_retryable:
                self._log(f"supervisor: child exited {rc} (non-retryable), "
                          f"giving up")
                self.report.final_returncode = rc
                return rc
            # A child that held steady long enough earns a fresh crash
            # budget; an immediate flameout burns it down.
            consecutive = (1 if uptime >= self.backoff.healthy_seconds
                           else consecutive + 1)
            if consecutive > self.backoff.max_restarts:
                self._log(f"supervisor: {consecutive} consecutive crashes, "
                          f"giving up")
                self.report.final_returncode = EXIT_GIVE_UP
                self.report.gave_up = True
                return EXIT_GIVE_UP
            delay = next(delays)
            attempt.delay = delay
            self._log(f"supervisor: child exited {rc} after {uptime:.1f}s; "
                      f"restart {consecutive}/{self.backoff.max_restarts} "
                      f"in {delay:.2f}s")
            self._sleep(delay)
