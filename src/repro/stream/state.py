"""Incremental state for the online retention service.

Three pieces, all designed so that streaming produces **bit-identical**
results to the batch columnar replay:

* :class:`PathCatalog` -- a growable path interner.  Batch compilation
  knows every path up front and assigns pids in string-sort order; a
  stream does not, so pids here are assigned in arrival order and the
  two scan orders the purge triggers need (plain-string order for the
  per-user ActiveDR walk and value tie-breaks, prefix-trie order for the
  FLT system scan) are maintained as explicit rank columns, rebuilt
  lazily when new paths intern.  This is exactly the
  :class:`~repro.emulation.compiled.TriggerEngine` catalog protocol.
* :class:`GrowableReplayState` -- live/atime/size/owner columns with
  amortized-doubling growth, mirroring the batch ``_ReplayState``.
* :class:`IncrementalActivenessState` -- per-(user, type) activity
  history with O(delta) appends and an O(recently-active) per-trigger
  evaluation.  The full rank fold (Eqs. 1-5) inherently needs a user's
  whole visible history (the period count ``m`` spans it), but under the
  faithful ``empty_period="zero"`` policy
  :func:`~repro.core.activeness.collapse_cutoff` proves that any user
  whose newest activity predates ``t_c - period`` ranks exactly 0 -- so
  each trigger refolds only the users active within the last period and
  scatters ``-inf`` for everyone else, instead of refolding the entire
  population's history the way ``ColumnarActivityStore.evaluate`` does.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..core.activeness import (ActivenessParams, RankAccumulator,
                               UserActiveness, collapse_cutoff,
                               evaluate_type_bulk)
from ..core.activity import JOB_SUBMISSION, PUBLICATION, ActivityType
from ..emulation.emulator import deterministic_file_size
from ..traces.schema import JobRecord, PublicationRecord
from ..vfs.path_trie import split_path

__all__ = ["PathCatalog", "GrowableReplayState",
           "IncrementalActivenessState"]

_MIN_CAPACITY = 1024

#: reduceat segment anchor reused by every per-user impact refresh.
_SEG_START = np.zeros(1, dtype=np.intp)


def _grown(arr: np.ndarray, capacity: int, fill) -> np.ndarray:
    out = np.full(capacity, fill, dtype=arr.dtype)
    out[:arr.size] = arr
    return out


class PathCatalog:
    """Arrival-order path interner satisfying the trigger-engine catalog.

    ``det_size`` is stamped at intern time (it depends only on the
    path); ``snap_size`` is the snapshot size for preloaded files and 0
    for paths first seen in the trace -- the same convention batch
    compilation uses, which keeps the value-function smallness columns
    identical.  ``version`` advances on every intern so rank columns and
    engine-side value columns know when to extend.
    """

    __slots__ = ("_paths", "_pid_of", "_det_size", "_snap_size",
                 "version", "_scan_rank", "_order_rank", "_ranks_version",
                 "_scan_keys")

    def __init__(self) -> None:
        self._paths: list[str] = []
        self._scan_keys: list[str] = []
        self._pid_of: dict[str, int] = {}
        self._det_size = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._snap_size = np.zeros(_MIN_CAPACITY, dtype=np.int64)
        self.version = 0
        self._scan_rank: np.ndarray | None = None
        self._order_rank: np.ndarray | None = None
        self._ranks_version = -1

    # -- catalog protocol ----------------------------------------------

    @property
    def n_paths(self) -> int:
        return len(self._paths)

    @property
    def paths(self) -> list[str]:
        return self._paths

    @property
    def det_size(self) -> np.ndarray:
        return self._det_size[:len(self._paths)]

    @property
    def snap_size(self) -> np.ndarray:
        return self._snap_size[:len(self._paths)]

    def _ranks(self) -> tuple[np.ndarray, np.ndarray]:
        if self._ranks_version != self.version:
            n = len(self._paths)
            if n == 0:
                order_rank = scan_rank = np.empty(0, dtype=np.int64)
            else:
                # Plain-string order (iter_user_files / value
                # tie-breaks).  Paths are unique, so the stable numpy
                # argsort reproduces ``sorted()`` exactly while staying
                # out of the interpreter -- this runs once per trigger
                # over the whole catalog.
                order = np.argsort(np.asarray(self._paths), kind="stable")
                order_rank = np.empty(n, dtype=np.int64)
                order_rank[order] = np.arange(n, dtype=np.int64)
                # Prefix-trie order (the FLT system scan): component
                # tuples compare identically to the components joined on
                # NUL (below every path character), and those keys are
                # built once per path at intern time.
                trie = np.argsort(np.asarray(self._scan_keys),
                                  kind="stable")
                scan_rank = np.empty(n, dtype=np.int64)
                scan_rank[trie] = np.arange(n, dtype=np.int64)
            self._order_rank, self._scan_rank = order_rank, scan_rank
            self._ranks_version = self.version
        return self._order_rank, self._scan_rank

    @property
    def order_rank(self) -> np.ndarray:
        return self._ranks()[0]

    @property
    def scan_rank(self) -> np.ndarray:
        return self._ranks()[1]

    # -- interning -----------------------------------------------------

    def intern(self, path: str, snap_size: int = 0) -> int:
        """Pid of ``path``, assigning the next id on first sight."""
        pid = self._pid_of.get(path)
        if pid is not None:
            return pid
        pid = len(self._paths)
        if pid >= self._det_size.size:
            capacity = max(self._det_size.size * 2, _MIN_CAPACITY)
            self._det_size = _grown(self._det_size, capacity, 0)
            self._snap_size = _grown(self._snap_size, capacity, 0)
        self._paths.append(path)
        self._scan_keys.append("\x00".join(split_path(path)))
        self._pid_of[path] = pid
        self._det_size[pid] = deterministic_file_size(path)
        self._snap_size[pid] = snap_size
        self.version += 1
        return pid


class GrowableReplayState:
    """Mutable live/atime/size/owner columns that grow with the catalog.

    Duck-types the batch ``_ReplayState`` for the trigger engine and the
    day-replay kernel: the array properties are views over the first
    ``n`` slots (scatter-assignment through a view mutates the backing
    store), and ``purge_target`` mirrors ``core.policy.purge_target_bytes``.
    """

    __slots__ = ("_live", "_atime", "_size", "_owner", "_n",
                 "total_bytes", "file_count", "capacity_bytes")

    def __init__(self, capacity_bytes: int) -> None:
        self._live = np.zeros(_MIN_CAPACITY, dtype=np.bool_)
        self._atime = np.zeros(_MIN_CAPACITY, dtype=np.int64)
        self._size = np.zeros(_MIN_CAPACITY, dtype=np.int64)
        self._owner = np.zeros(_MIN_CAPACITY, dtype=np.int64)
        self._n = 0
        self.total_bytes = 0
        self.file_count = 0
        self.capacity_bytes = capacity_bytes

    @property
    def n_paths(self) -> int:
        return self._n

    @property
    def live(self) -> np.ndarray:
        return self._live[:self._n]

    @property
    def atime(self) -> np.ndarray:
        return self._atime[:self._n]

    @property
    def size(self) -> np.ndarray:
        return self._size[:self._n]

    @property
    def owner(self) -> np.ndarray:
        return self._owner[:self._n]

    def ensure(self, n_paths: int) -> None:
        """Extend the columns to cover ``n_paths`` catalog slots."""
        if n_paths <= self._n:
            return
        if n_paths > self._live.size:
            capacity = max(self._live.size * 2, n_paths, _MIN_CAPACITY)
            self._live = _grown(self._live, capacity, False)
            self._atime = _grown(self._atime, capacity, 0)
            self._size = _grown(self._size, capacity, 0)
            self._owner = _grown(self._owner, capacity, 0)
        self._n = n_paths

    def add_file(self, pid: int, size: int, atime: int, owner: int) -> None:
        """Materialize one preloaded (snapshot) file."""
        self._live[pid] = True
        self._atime[pid] = atime
        self._size[pid] = size
        self._owner[pid] = owner
        self.total_bytes += int(size)
        self.file_count += 1

    def purge_target(self, config) -> int:
        if self.capacity_bytes <= 0:
            return 0
        allowed = int(config.purge_target_utilization * self.capacity_bytes)
        return max(0, self.total_bytes - allowed)


# ---------------------------------------------------------------------------
# incremental activeness


class _UserSeries:
    """One user's (ts, impact) history for one activity type."""

    __slots__ = ("chunks", "count", "last_ts", "total_impact", "dirty")

    def __init__(self) -> None:
        self.chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self.count = 0
        self.last_ts = -1
        self.total_impact = 0.0
        self.dirty = True

    def append(self, ts: np.ndarray, imp: np.ndarray) -> None:
        self.chunks.append((ts, imp))
        self.count += ts.size
        self.dirty = True

    def columns(self) -> tuple[np.ndarray, np.ndarray]:
        if len(self.chunks) > 1:
            merged = (np.concatenate([c[0] for c in self.chunks]),
                      np.concatenate([c[1] for c in self.chunks]))
            self.chunks = [merged]
        return self.chunks[0]

    def refresh(self) -> None:
        """Recompute the cached per-user aggregates after appends.

        ``total_impact`` uses the same segment-reduction primitive
        (``np.add.reduceat``) as the batch fold, over the same values in
        the same order, so the cached float is bit-identical to the
        batch per-user ``impact_sums`` entry.
        """
        if not self.dirty:
            return
        ts, imp = self.columns()
        self.last_ts = int(ts[-1])
        self.total_impact = float(np.add.reduceat(imp, _SEG_START)[0])
        self.dirty = False


class _TypeState:
    """Per-type pending buffer plus per-user series."""

    __slots__ = ("users", "pend_uid", "pend_ts", "pend_imp")

    def __init__(self) -> None:
        self.users: dict[int, _UserSeries] = {}
        self.pend_uid: list[int] = []
        self.pend_ts: list[int] = []
        self.pend_imp: list[float] = []

    def __len__(self) -> int:
        return (sum(s.count for s in self.users.values())
                + len(self.pend_uid))

    def flush(self) -> None:
        """Distribute the pending delta into per-user chunk lists.

        Events arrive time-ordered, so a stable uid sort groups each
        user's new rows while preserving their within-user time order --
        the same relative order the batch store's stable
        ``lexsort((ts, uids))`` produces over the full trace.
        """
        if not self.pend_uid:
            return
        uid = np.asarray(self.pend_uid, dtype=np.int64)
        ts = np.asarray(self.pend_ts, dtype=np.int64)
        imp = np.asarray(self.pend_imp, dtype=np.float64)
        self.pend_uid, self.pend_ts, self.pend_imp = [], [], []
        order = np.argsort(uid, kind="stable")
        uid, ts, imp = uid[order], ts[order], imp[order]
        uniq, starts, counts = np.unique(uid, return_index=True,
                                         return_counts=True)
        for u, s, c in zip(uniq.tolist(), starts.tolist(), counts.tolist()):
            series = self.users.get(u)
            if series is None:
                series = self.users[u] = _UserSeries()
            series.append(ts[s:s + c], imp[s:s + c])


class IncrementalActivenessState:
    """Streaming counterpart of ``ColumnarActivityStore.evaluate``.

    Appends are O(1) per activity (buffered, then chunked per user);
    :meth:`evaluate` refolds only the users whose newest activity lies
    within one period of ``t_c`` (see :func:`collapse_cutoff`) and emits
    exact rank 0 for the rest, falling back to refolding every user when
    the empty-period relaxations make the shortcut unsound.  Results are
    bit-identical to the batch store over the same visible history.

    The two paper activity types are pre-registered so the per-type
    iteration order (and therefore the accumulator scatter order)
    matches ``build_activity_store`` regardless of which kind of event
    happens to arrive first.
    """

    __slots__ = ("_types", "last_eval_users", "last_eval_refolded")

    def __init__(self) -> None:
        self._types: dict[ActivityType, _TypeState] = {
            JOB_SUBMISSION: _TypeState(),
            PUBLICATION: _TypeState(),
        }
        self.last_eval_users = 0
        self.last_eval_refolded = 0

    # -- ingestion -----------------------------------------------------

    def add_job(self, job: JobRecord,
                activity_type: ActivityType = JOB_SUBMISSION) -> None:
        state = self._types.setdefault(activity_type, _TypeState())
        state.pend_uid.append(job.uid)
        state.pend_ts.append(job.submit_ts)
        state.pend_imp.append(job.core_hours() * activity_type.weight)

    def add_jobs(self, uids: np.ndarray, ts: np.ndarray,
                 core_hours: np.ndarray,
                 activity_type: ActivityType = JOB_SUBMISSION) -> None:
        """Bulk :meth:`add_job` for a columnar run of job rows.

        ``core_hours`` carries each job's unweighted core-hour impact;
        the weight multiply happens here so the per-row float is the
        same ``core_hours() * weight`` expression (same operand order)
        that :meth:`add_job` computes, keeping the pending-buffer
        contents -- and every fold downstream -- bit-identical.
        """
        state = self._types.setdefault(activity_type, _TypeState())
        state.pend_uid.extend(uids.tolist())
        state.pend_ts.extend(ts.tolist())
        state.pend_imp.extend((core_hours * activity_type.weight).tolist())

    def add_publication(self, pub: PublicationRecord,
                        activity_type: ActivityType = PUBLICATION) -> None:
        state = self._types.setdefault(activity_type, _TypeState())
        for uid in pub.author_uids:
            state.pend_uid.append(uid)
            state.pend_ts.append(pub.ts)
            state.pend_imp.append(pub.author_score(uid)
                                  * activity_type.weight)

    def total_activities(self) -> int:
        return sum(len(s) for s in self._types.values())

    # -- evaluation ----------------------------------------------------

    def evaluate(self, t_c: int, params: ActivenessParams | None = None,
                 known_uids: Iterable[int] = (),
                 ) -> dict[int, UserActiveness]:
        """Every user's activeness at ``t_c``.

        The caller must not have ingested any activity with ``ts > t_c``
        (the service's boundary ordering guarantees this); under that
        contract the result equals
        ``ColumnarActivityStore.evaluate(t_c, params, known_uids)`` over
        the same history, bit for bit.
        """
        params = params or ActivenessParams()
        cutoff = collapse_cutoff(t_c, params)

        self.last_eval_users = 0
        self.last_eval_refolded = 0
        folded = []
        for atype, tstate in self._types.items():
            tstate.flush()
            if not tstate.users:
                continue
            uids_sorted = sorted(tstate.users)
            n = len(uids_sorted)
            uids_arr = np.asarray(uids_sorted, dtype=np.int64)
            last_ts = np.empty(n, dtype=np.int64)
            total_imp = np.empty(n, dtype=np.float64)
            refold: list[tuple[int, _UserSeries]] = []
            for i, u in enumerate(uids_sorted):
                series = tstate.users[u]
                series.refresh()
                last_ts[i] = series.last_ts
                total_imp[i] = series.total_impact
                if cutoff is None or series.last_ts >= cutoff:
                    refold.append((u, series))

            ranks = np.full(n, -np.inf, dtype=np.float64)
            if refold:
                k = len(refold)
                ruids = np.fromiter((u for u, _ in refold), np.int64, k)
                lens = np.fromiter((s.count for _, s in refold), np.int64, k)
                uid_arr = np.repeat(ruids, lens)
                ts_arr = np.concatenate([s.columns()[0] for _, s in refold])
                imp_arr = np.concatenate([s.columns()[1] for _, s in refold])
                # Already uid-major (ascending) and time-ordered within
                # each user -- the evaluate_type_bulk sorted contract.
                out_uids, out_ranks = evaluate_type_bulk(
                    uid_arr, ts_arr, imp_arr, t_c, params,
                    assume_sorted=True)
                ranks[np.searchsorted(uids_arr, out_uids)] = out_ranks
            self.last_eval_users += n
            self.last_eval_refolded += len(refold)
            folded.append((atype, (uids_arr, ranks, last_ts, total_imp)))

        all_uids = (np.unique(np.concatenate([f[1][0] for f in folded]))
                    if folded else np.empty(0, dtype=np.int64))
        acc = RankAccumulator(all_uids)
        for atype, columns in folded:
            acc.scatter(atype, *columns)
        return acc.finalize(known_uids)

    # -- shard restriction ---------------------------------------------

    def restrict_users(self, keep_mask) -> int:
        """Drop every user the fleet has migrated off this shard.

        ``keep_mask`` maps an int64 uid array to a boolean keep mask
        (shard routers pass ``ring.owner_mask``).  Both the settled
        per-user series and the pending buffers are filtered, so a
        donor shard that sheds users at a rebalance boundary folds
        exactly the histories it still owns.  Returns the number of
        users dropped.
        """
        dropped = 0
        for tstate in self._types.values():
            if tstate.users:
                uids = np.fromiter(tstate.users, np.int64,
                                   len(tstate.users))
                gone = uids[~np.asarray(keep_mask(uids), dtype=bool)]
                for u in gone.tolist():
                    del tstate.users[u]
                dropped += gone.size
            if tstate.pend_uid:
                uids = np.asarray(tstate.pend_uid, dtype=np.int64)
                mask = np.asarray(keep_mask(uids), dtype=bool)
                if not mask.all():
                    idx = np.flatnonzero(mask).tolist()
                    tstate.pend_uid = [tstate.pend_uid[i] for i in idx]
                    tstate.pend_ts = [tstate.pend_ts[i] for i in idx]
                    tstate.pend_imp = [tstate.pend_imp[i] for i in idx]
        return dropped

    # -- snapshot / restore --------------------------------------------

    def snapshot_state(self) -> dict[ActivityType, tuple[np.ndarray,
                                                         np.ndarray,
                                                         np.ndarray]]:
        """``{type: (uids, ts, impacts)}`` columns, uid-major.

        The same shape as ``ColumnarActivityStore.snapshot_state`` (and
        consumed by the same checkpoint serializer); rows are grouped by
        ascending uid with each user's rows in time order, which
        :meth:`restore_state` relies on to rebuild per-user series.
        """
        out = {}
        for atype, tstate in self._types.items():
            tstate.flush()
            uids_sorted = sorted(tstate.users)
            if not uids_sorted:
                empty_i = np.empty(0, dtype=np.int64)
                out[atype] = (empty_i, empty_i.copy(),
                              np.empty(0, dtype=np.float64))
                continue
            k = len(uids_sorted)
            lens = np.fromiter(
                (tstate.users[u].count for u in uids_sorted), np.int64, k)
            uids = np.repeat(np.asarray(uids_sorted, dtype=np.int64), lens)
            ts = np.concatenate(
                [tstate.users[u].columns()[0] for u in uids_sorted])
            imp = np.concatenate(
                [tstate.users[u].columns()[1] for u in uids_sorted])
            out[atype] = (uids, ts.copy(), imp.copy())
        return out

    def restore_state(self, state: Mapping[ActivityType,
                                           tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]]) -> None:
        """Rebuild from a :meth:`snapshot_state` payload.

        Aggregates are recomputed from the restored columns with the
        same primitives that produced the originals, so a resumed
        service evaluates bit-identically to one that never stopped.
        """
        self._types = {
            JOB_SUBMISSION: _TypeState(),
            PUBLICATION: _TypeState(),
        }
        for atype, (uids, ts, imp) in state.items():
            tstate = self._types.setdefault(atype, _TypeState())
            uids = np.asarray(uids, dtype=np.int64)
            ts = np.asarray(ts, dtype=np.int64)
            imp = np.asarray(imp, dtype=np.float64)
            uniq, starts, counts = np.unique(uids, return_index=True,
                                             return_counts=True)
            for u, s, c in zip(uniq.tolist(), starts.tolist(),
                               counts.tolist()):
                series = tstate.users[u] = _UserSeries()
                series.append(ts[s:s + c].copy(), imp[s:s + c].copy())
