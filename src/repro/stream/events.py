"""Unified event schema and k-way merge for the online retention service.

A production retention daemon does not receive "the trace" -- it receives
interleaved feeds: scheduler job submissions, parallel-file-system access
records, and (slow, bursty) publication metadata.  This module unifies
the three existing trace families into one time-ordered
:class:`StreamEvent` sequence via a stable k-way heap merge over the
``traces/io`` readers, so the service consumes exactly one clock.

Ordering contract
-----------------
The merged stream is sorted by timestamp.  Ties are resolved
deterministically: **activity events (jobs, publications) come before
access events at the same timestamp**, because a purge trigger fired at
instant ``t_c`` must see every activity with ``ts <= t_c`` (the batch
evaluators clip inclusively) while the access replay is day-bucketed and
insensitive to sub-day ordering.  Within one source the original trace
order is preserved (``heapq.merge`` is stable), which is what makes the
streaming activeness state fold floats in the same order as the batch
``ColumnarActivityStore`` -- a requirement for bit-identical results.

Each source iterator is validated to be non-decreasing in time; a
regression raises ``ValueError`` at the offending event rather than
silently corrupting the stream clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from ..traces.io import read_app_log, read_jobs, read_publications
from ..traces.schema import AppAccessRecord, JobRecord, PublicationRecord

__all__ = ["EVENT_JOB", "EVENT_PUBLICATION", "EVENT_ACCESS", "StreamEvent",
           "job_events", "publication_events", "access_events",
           "merge_event_streams", "dataset_event_stream",
           "workspace_event_stream", "skip_events"]

EVENT_JOB = "job"
EVENT_PUBLICATION = "publication"
EVENT_ACCESS = "access"

_Payload = Union[JobRecord, PublicationRecord, AppAccessRecord]


@dataclass(slots=True, frozen=True)
class StreamEvent:
    """One merged event: a timestamp, a kind tag, and the source record."""

    ts: int
    kind: str
    payload: _Payload


def job_events(jobs: Iterable[JobRecord]) -> Iterator[StreamEvent]:
    """Job records as :class:`StreamEvent`\\ s keyed on ``submit_ts``."""
    for job in jobs:
        yield StreamEvent(job.submit_ts, EVENT_JOB, job)


def publication_events(pubs: Iterable[PublicationRecord],
                       ) -> Iterator[StreamEvent]:
    for pub in pubs:
        yield StreamEvent(pub.ts, EVENT_PUBLICATION, pub)


def access_events(accesses: Iterable[AppAccessRecord],
                  ) -> Iterator[StreamEvent]:
    for rec in accesses:
        yield StreamEvent(rec.ts, EVENT_ACCESS, rec)


# Backwards-compatible private aliases (pre-reliability callers).
_job_events = job_events
_pub_events = publication_events
_access_events = access_events


def _validated(events: Iterator[StreamEvent], source: str,
               ) -> Iterator[StreamEvent]:
    last = None
    for ev in events:
        if last is not None and ev.ts < last:
            raise ValueError(
                f"{source} events regress in time: {ev.ts} after {last}")
        last = ev.ts
        yield ev


def merge_event_streams(jobs: Iterable[JobRecord] = (),
                        publications: Iterable[PublicationRecord] = (),
                        accesses: Iterable[AppAccessRecord] = (),
                        ) -> Iterator[StreamEvent]:
    """Stable time-ordered merge of the three trace families.

    Sources may be lists or lazy iterators (the workspace reader streams
    straight off disk); each must be internally time-sorted.  At equal
    timestamps the merge emits jobs, then publications, then accesses --
    ``heapq.merge`` breaks key ties by source position, so listing the
    activity sources first implements the activity-before-access
    contract, and within one source the original order is kept.
    """
    return heapq.merge(
        _validated(_job_events(jobs), "job"),
        _validated(_pub_events(publications), "publication"),
        _validated(_access_events(accesses), "access"),
        key=lambda ev: ev.ts)


def dataset_event_stream(dataset) -> Iterator[StreamEvent]:
    """Merged event stream of an in-memory ``TitanDataset`` / workspace."""
    return merge_event_streams(dataset.jobs, dataset.publications,
                               dataset.accesses)


def workspace_event_stream(directory: str) -> Iterator[StreamEvent]:
    """Merged event stream read lazily from a workspace directory.

    Unlike :func:`~repro.cli.workspace.load_workspace` this never holds a
    full trace family in memory -- the three gzip readers are consumed
    record by record as the merge advances, so serving a workspace is
    O(open files), not O(trace size).  Yields the same sequence as
    ``dataset_event_stream(load_workspace(directory))``.
    """
    import os

    return merge_event_streams(
        read_jobs(os.path.join(directory, "jobs.txt.gz")),
        read_publications(os.path.join(directory, "publications.txt.gz")),
        read_app_log(os.path.join(directory, "app_log.txt.gz")))


def skip_events(events: Iterator[StreamEvent], n: int,
                ) -> Iterator[StreamEvent]:
    """Drop the first ``n`` events -- resume-cursor positioning.

    The checkpoint manifest stores how many merged events the service
    consumed; replaying the deterministic merge and skipping that many
    lands exactly on the next unprocessed event.  Streams that may carry
    columnar batch runs (the binary wire path) must position with
    :func:`repro.stream.batch.skip_stream_items` instead, which counts a
    run by its row width.
    """
    if n < 0:
        raise ValueError("cursor must be non-negative")
    return itertools.islice(events, n, None)
