"""Columnar event batches: the in-memory form of protocol-v2 frames.

Per-event JSON framing pays object, dict, and heap costs for every row
on the wire; the retention engine, however, consumes day-granular
*columns* (``replay_day_columns``, ``ColumnarActivityStore``).  An
:class:`EventBatch` is the meeting point: one decoded binary frame's
worth of events held as parallel NumPy arrays -- a row-order ``kinds``
byte per event, a shared ``ts`` column, and per-kind payload columns --
plus a string pool so each distinct path crosses the wire (and the
decoder) once.

The columnar layout is adapted from the paper's day/kind/user/type/size
framing to this repo's three trace families:

* **job** rows carry ``job_id, uid, start_ts, end_ts, num_nodes,
  cores_per_node`` (the row ``ts`` *is* ``submit_ts``),
* **publication** rows carry ``pub_id, citations`` and a ragged
  ``author_uids`` list (offsets + flat array),
* **access** rows carry ``uid``, an op code, and a pool index.

Ordering contract: rows within a batch are non-decreasing in ``ts`` --
the producer emits them straight off a merged (or per-source sorted)
stream -- so a batch can participate in the k-way merge as a *run*, not
row by row.  :func:`merge_stream_items` generalizes the stable
``heapq.merge`` used for per-event streams: at every step the earliest
head wins (listing order breaks ties), and a winning batch emits the
longest prefix that cannot interleave with any other source's head,
yielding :class:`BatchRun` slices instead of single events.  The emitted
row order is exactly what ``heapq.merge`` would produce event by event
-- the property the bit-identity contract rests on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

import numpy as np

from ..traces.schema import AppAccessRecord, JobRecord, PublicationRecord
from .events import (EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION, StreamEvent)

__all__ = ["KIND_JOB_CODE", "KIND_PUB_CODE", "KIND_ACC_CODE",
           "KIND_BY_CODE", "OP_BY_CODE", "OP_CODES",
           "EventBatch", "BatchBuilder", "BatchRun",
           "merge_stream_items", "skip_stream_items"]

#: Row kind codes, in activity-before-access tie-break order.
KIND_JOB_CODE = 0
KIND_PUB_CODE = 1
KIND_ACC_CODE = 2
KIND_BY_CODE = (EVENT_JOB, EVENT_PUBLICATION, EVENT_ACCESS)
KIND_CODES = {name: code for code, name in enumerate(KIND_BY_CODE)}

#: Access op codes; values match ``server.tenants._OP_CODES`` and the
#: compiled replay kernels, so decoded rows feed the engine unchanged.
OP_BY_CODE = ("access", "create", "touch")
OP_CODES = {name: code for code, name in enumerate(OP_BY_CODE)}

_I64 = np.int64
_EMPTY_I64 = np.zeros(0, _I64)
_EMPTY_U8 = np.zeros(0, np.uint8)
_EMPTY_U32 = np.zeros(0, np.uint32)


class EventBatch:
    """One frame's worth of events as parallel columns (see module doc).

    Row arrays (length ``n``): ``kinds`` (uint8 codes) and ``ts``
    (int64).  Kind-local arrays hold the payload columns for rows of
    that kind, in row order; ``kpos()`` maps a row index to its
    kind-local index.  The string pool is either a materialized
    ``list[str]`` (producer side) or a lazy (offsets, utf-8 blob) pair
    (decoder side) -- ``pool()`` materializes on first use, in the
    engine thread, never per row.
    """

    #: Structural marker checked by the quarantine/merge layers, so the
    #: reliability package needs no import of this module at its hot
    #: per-event paths.
    is_event_batch = True

    __slots__ = ("kinds", "ts",
                 "job_id", "job_uid", "job_start", "job_end", "job_nodes",
                 "job_cores",
                 "pub_id", "pub_cit", "pub_auth_off", "pub_auth",
                 "acc_uid", "acc_op", "acc_path",
                 "single_kind", "_pool", "_pool_off", "_pool_blob",
                 "_kpos", "pid_map",
                 "first_seq", "seq_width", "orig_rows")

    def __init__(self, kinds, ts, *,
                 job_id=_EMPTY_I64, job_uid=_EMPTY_I64,
                 job_start=_EMPTY_I64, job_end=_EMPTY_I64,
                 job_nodes=_EMPTY_I64, job_cores=_EMPTY_I64,
                 pub_id=_EMPTY_I64, pub_cit=_EMPTY_I64,
                 pub_auth_off=None, pub_auth=_EMPTY_I64,
                 acc_uid=_EMPTY_I64, acc_op=_EMPTY_U8,
                 acc_path=_EMPTY_U32,
                 pool=None, pool_off=None, pool_blob=None) -> None:
        self.kinds = kinds
        self.ts = ts
        self.job_id = job_id
        self.job_uid = job_uid
        self.job_start = job_start
        self.job_end = job_end
        self.job_nodes = job_nodes
        self.job_cores = job_cores
        self.pub_id = pub_id
        self.pub_cit = pub_cit
        self.pub_auth_off = (pub_auth_off if pub_auth_off is not None
                             else np.zeros(pub_id.size + 1, _I64))
        self.pub_auth = pub_auth
        self.acc_uid = acc_uid
        self.acc_op = acc_op
        self.acc_path = acc_path
        self._pool = pool
        self._pool_off = pool_off
        self._pool_blob = pool_blob
        self.single_kind = bool(
            kinds.size == 0 or kinds[0] == kinds[-1]
            and bool((kinds == kinds[0]).all()))
        self._kpos = None
        #: Per-batch path-interning cache (``pool index -> catalog pid``),
        #: filled lazily by the consuming service.  A batch is consumed by
        #: exactly one service, so the cache cannot leak across catalogs.
        self.pid_map = None
        #: Sequencing provenance (networked exactly-once ingest).
        #: ``first_seq`` is the 1-based per-source sequence number of the
        #: batch's *original* row 0 as it crossed the wire; ``seq_width``
        #: the original row count (so the batch covered sequence numbers
        #: ``first_seq .. first_seq + seq_width - 1``); ``orig_rows`` maps
        #: each current row back to its original row offset after
        #: compactions (``None`` = identity).  All three stay constant
        #: under :meth:`compact` so checkpoint cursors can name the exact
        #: wire position of any surviving row.  ``None`` on unsequenced
        #: batches.
        self.first_seq = None
        self.seq_width = None
        self.orig_rows = None

    # -- shape ----------------------------------------------------------

    @property
    def n(self) -> int:
        return self.kinds.size

    #: Uniform "how many events does this stream item cover" protocol,
    #: shared with :class:`BatchRun` (a plain ``StreamEvent`` counts 1).
    @property
    def n_rows(self) -> int:
        return self.kinds.size

    @property
    def n_jobs(self) -> int:
        return self.job_id.size

    @property
    def n_pubs(self) -> int:
        return self.pub_id.size

    @property
    def n_acc(self) -> int:
        return self.acc_uid.size

    @property
    def n_pool(self) -> int:
        if self._pool is not None:
            return len(self._pool)
        return 0 if self._pool_off is None else self._pool_off.size - 1

    def pool(self) -> list[str]:
        """The materialized string pool (cached after first decode)."""
        if self._pool is None:
            off = self._pool_off
            blob = self._pool_blob
            if off is None:
                self._pool = []
            else:
                offs = off.tolist()
                self._pool = [blob[offs[i]:offs[i + 1]].decode("utf-8")
                              for i in range(len(offs) - 1)]
        return self._pool

    def kpos(self):
        """Kind-local index of each row (lazy; trivial if single-kind)."""
        if self._kpos is None:
            if self.single_kind:
                self._kpos = np.arange(self.n, dtype=_I64)
            else:
                kpos = np.empty(self.n, dtype=_I64)
                for code in (KIND_JOB_CODE, KIND_PUB_CODE, KIND_ACC_CODE):
                    idx = np.flatnonzero(self.kinds == code)
                    kpos[idx] = np.arange(idx.size)
                self._kpos = kpos
        return self._kpos

    # -- row access -----------------------------------------------------

    def compact(self, keep) -> "EventBatch":
        """A new batch holding only rows where ``keep`` is True.

        Used by the quarantine after diverting malformed rows: the
        surviving rows stay columnar instead of falling back to
        per-event objects.  The string pool is shared (indices stay
        valid), so compaction is O(kept rows).
        """
        keep = np.asarray(keep, dtype=bool)
        jk = keep[self.kinds == KIND_JOB_CODE]
        pk = keep[self.kinds == KIND_PUB_CODE]
        ak = keep[self.kinds == KIND_ACC_CODE]
        auth_lens = np.diff(self.pub_auth_off)
        kept_lens = auth_lens[pk]
        new_off = np.zeros(int(pk.sum()) + 1, _I64)
        np.cumsum(kept_lens, out=new_off[1:])
        auth_keep = (np.repeat(pk, auth_lens)
                     if self.pub_auth.size else np.zeros(0, bool))
        out = EventBatch(
            self.kinds[keep], self.ts[keep],
            job_id=self.job_id[jk], job_uid=self.job_uid[jk],
            job_start=self.job_start[jk], job_end=self.job_end[jk],
            job_nodes=self.job_nodes[jk], job_cores=self.job_cores[jk],
            pub_id=self.pub_id[pk], pub_cit=self.pub_cit[pk],
            pub_auth_off=new_off, pub_auth=self.pub_auth[auth_keep],
            acc_uid=self.acc_uid[ak], acc_op=self.acc_op[ak],
            acc_path=self.acc_path[ak],
            pool=self._pool, pool_off=self._pool_off,
            pool_blob=self._pool_blob)
        if self.first_seq is not None:
            out.first_seq = self.first_seq
            out.seq_width = self.seq_width
            out.orig_rows = (self.orig_rows[keep]
                             if self.orig_rows is not None
                             else np.flatnonzero(keep))
        return out

    def subset(self, keep) -> "EventBatch":
        """Like :meth:`compact`, but with the string pool pruned.

        :meth:`compact` shares the full pool (indices stay valid), which
        is right for in-process quarantine but wrong for a shard router
        re-encoding the surviving rows onto a new wire frame -- the
        frame would carry every path of the original batch.  Here the
        pool is rebuilt to exactly the paths the kept access rows
        reference, and ``acc_path`` is remapped to the new indices.
        Sequencing provenance is dropped: a routed sub-batch lives in
        the *lane's* sequence domain, which the router assigns fresh.
        """
        out = self.compact(keep)
        out.first_seq = out.seq_width = out.orig_rows = None
        if out.acc_path.size:
            used = np.unique(out.acc_path)
            pool = self.pool()
            out._pool = [pool[i] for i in used.tolist()]
            out._pool_off = out._pool_blob = None
            out.acc_path = np.searchsorted(
                used, out.acc_path).astype(np.uint32)
        else:
            out._pool = []
            out._pool_off = out._pool_blob = None
        return out

    def split_at_ts(self, cut_ts: int) -> tuple["EventBatch", "EventBatch"]:
        """``(rows with ts < cut_ts, rows with ts >= cut_ts)``.

        Rows are non-decreasing in ``ts`` (the batch ordering contract),
        so this is the epoch split a shard router applies at a rebalance
        cut: the two halves preserve row order and each prunes its pool.
        """
        k = int(np.searchsorted(self.ts, cut_ts, side="left"))
        mask = np.zeros(self.n, dtype=bool)
        mask[:k] = True
        return self.subset(mask), self.subset(~mask)

    def drop_seq_prefix(self, k: int) -> "EventBatch":
        """Drop the first ``k`` rows (already-received duplicates).

        Used at the ingest edge when a resent batch partially overlaps
        the source cursor; ``first_seq``/``seq_width`` are preserved and
        ``orig_rows`` keeps naming the surviving rows' original wire
        offsets, so per-source checkpoint cursors stay exact.
        """
        keep = np.ones(self.n, dtype=bool)
        keep[:k] = False
        return self.compact(keep)

    def event_at(self, row: int) -> StreamEvent:
        """Reconstruct the :class:`StreamEvent` of one row (slow path)."""
        code = int(self.kinds[row])
        k = int(self.kpos()[row])
        ts = int(self.ts[row])
        if code == KIND_ACC_CODE:
            rec = AppAccessRecord(ts, int(self.acc_uid[k]),
                                  self.pool()[int(self.acc_path[k])],
                                  OP_BY_CODE[int(self.acc_op[k])])
            return StreamEvent(ts, EVENT_ACCESS, rec)
        if code == KIND_JOB_CODE:
            rec = JobRecord(int(self.job_id[k]), int(self.job_uid[k]), ts,
                            int(self.job_start[k]), int(self.job_end[k]),
                            int(self.job_nodes[k]), int(self.job_cores[k]))
            return StreamEvent(ts, EVENT_JOB, rec)
        lo, hi = int(self.pub_auth_off[k]), int(self.pub_auth_off[k + 1])
        rec = PublicationRecord(int(self.pub_id[k]), ts,
                                self.pub_auth[lo:hi].tolist(),
                                int(self.pub_cit[k]))
        return StreamEvent(ts, EVENT_PUBLICATION, rec)

    def iter_events(self, lo: int = 0, hi: int | None = None,
                    ) -> Iterator[StreamEvent]:
        """Rows ``[lo, hi)`` as reconstructed events (debug/compat path)."""
        for row in range(lo, self.n if hi is None else hi):
            yield self.event_at(row)

    def row_debug(self, row: int) -> dict:
        """A raw-column view of one row for dead-letter forensics.

        Unlike :meth:`event_at` this never constructs records, so it is
        safe on rows whose values violate the record invariants -- the
        rows the quarantine is diverting.
        """
        code = int(self.kinds[row])
        k = int(self.kpos()[row])
        out = {"kind": KIND_BY_CODE[code] if code < 3 else code,
               "ts": int(self.ts[row])}
        if code == KIND_ACC_CODE:
            pi = int(self.acc_path[k])
            out.update(uid=int(self.acc_uid[k]), op=int(self.acc_op[k]),
                       path=(self.pool()[pi] if pi < self.n_pool else pi))
        elif code == KIND_JOB_CODE:
            out.update(job_id=int(self.job_id[k]), uid=int(self.job_uid[k]),
                       start_ts=int(self.job_start[k]),
                       end_ts=int(self.job_end[k]),
                       num_nodes=int(self.job_nodes[k]),
                       cores_per_node=int(self.job_cores[k]))
        elif code == KIND_PUB_CODE:
            lo, hi = int(self.pub_auth_off[k]), int(self.pub_auth_off[k + 1])
            out.update(pub_id=int(self.pub_id[k]),
                       citations=int(self.pub_cit[k]),
                       author_uids=self.pub_auth[lo:hi].tolist())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventBatch(n={self.n}, jobs={self.n_jobs}, "
                f"pubs={self.n_pubs}, accesses={self.n_acc}, "
                f"pool={self.n_pool})")


class BatchRun:
    """A contiguous row slice ``[lo, hi)`` of one batch, post-merge.

    This is what the hybrid merge hands the engine: the engine ingests
    the slice columnarly (``MultiTenantService.ingest_run``) without the
    rows ever becoming objects.
    """

    __slots__ = ("batch", "lo", "hi")

    def __init__(self, batch: EventBatch, lo: int, hi: int) -> None:
        self.batch = batch
        self.lo = lo
        self.hi = hi

    @property
    def n_rows(self) -> int:
        return self.hi - self.lo

    def tail(self, skip: int) -> "BatchRun":
        """The run minus its first ``skip`` rows (resume positioning)."""
        return BatchRun(self.batch, self.lo + skip, self.hi)

    def iter_events(self) -> Iterator[StreamEvent]:
        return self.batch.iter_events(self.lo, self.hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchRun([{self.lo}:{self.hi}) of {self.batch!r})"


class BatchBuilder:
    """Producer-side accumulator: events in, :class:`EventBatch` out.

    Appends are plain list operations (the producer hot loop); ``build``
    converts to columns in bulk.  ``approx_bytes`` tracks a conservative
    wire-size estimate so the publisher can flush before a frame would
    exceed the negotiated cap.
    """

    __slots__ = ("_kinds", "_ts", "_jobs", "_pubs", "_acc",
                 "_pool", "_pool_index", "approx_bytes")

    #: Rough per-row wire cost (kind byte + ts + payload columns).
    _ROW_COST = 40

    def __init__(self) -> None:
        self._kinds = bytearray()
        self._ts: list[int] = []
        self._jobs: list[tuple[int, int, int, int, int, int]] = []
        self._pubs: list[tuple[int, int, list[int]]] = []
        self._acc: list[tuple[int, int, int]] = []
        self._pool: list[str] = []
        self._pool_index: dict[str, int] = {}
        self.approx_bytes = 64

    def __len__(self) -> int:
        return len(self._ts)

    def append(self, event: StreamEvent) -> None:
        kind = event.kind
        p = event.payload
        self._ts.append(event.ts)
        if kind == EVENT_ACCESS:
            self._kinds.append(KIND_ACC_CODE)
            idx = self._pool_index.get(p.path)
            if idx is None:
                idx = len(self._pool)
                self._pool_index[p.path] = idx
                self._pool.append(p.path)
                self.approx_bytes += len(p.path) + 8
            self._acc.append((p.uid, OP_CODES[p.op], idx))
            self.approx_bytes += self._ROW_COST
        elif kind == EVENT_JOB:
            self._kinds.append(KIND_JOB_CODE)
            self._jobs.append((p.job_id, p.uid, p.start_ts, p.end_ts,
                               p.num_nodes, p.cores_per_node))
            self.approx_bytes += self._ROW_COST + 24
        elif kind == EVENT_PUBLICATION:
            self._kinds.append(KIND_PUB_CODE)
            self._pubs.append((p.pub_id, p.citations, list(p.author_uids)))
            self.approx_bytes += self._ROW_COST + 8 * len(p.author_uids)
        else:
            raise ValueError(f"cannot batch stream event of kind {kind!r}")

    def extend(self, events: Iterable[StreamEvent]) -> None:
        """Bulk :meth:`append` with the per-event costs hoisted.

        The publisher hot loop spends its time here, competing with the
        engine thread for the interpreter, so every loop iteration
        avoids attribute lookups and defers the wire-size accounting to
        one arithmetic update at the end.
        """
        kinds_append = self._kinds.append
        ts_append = self._ts.append
        acc_append = self._acc.append
        jobs_append = self._jobs.append
        pubs_append = self._pubs.append
        pool_index = self._pool_index
        pool = self._pool
        op_codes = OP_CODES
        n0 = len(self._ts)
        n_jobs0, n_auth0 = len(self._jobs), 0
        pool_chars = 0
        for event in events:
            kind = event.kind
            p = event.payload
            ts_append(event.ts)
            if kind == EVENT_ACCESS:
                kinds_append(KIND_ACC_CODE)
                idx = pool_index.get(p.path)
                if idx is None:
                    idx = len(pool)
                    pool_index[p.path] = idx
                    pool.append(p.path)
                    pool_chars += len(p.path) + 8
                acc_append((p.uid, op_codes[p.op], idx))
            elif kind == EVENT_JOB:
                kinds_append(KIND_JOB_CODE)
                jobs_append((p.job_id, p.uid, p.start_ts, p.end_ts,
                             p.num_nodes, p.cores_per_node))
            elif kind == EVENT_PUBLICATION:
                kinds_append(KIND_PUB_CODE)
                pubs_append((p.pub_id, p.citations, list(p.author_uids)))
                n_auth0 += len(p.author_uids)
            else:
                raise ValueError(
                    f"cannot batch stream event of kind {kind!r}")
        self.approx_bytes += (
            (len(self._ts) - n0) * self._ROW_COST + pool_chars
            + (len(self._jobs) - n_jobs0) * 24 + 8 * n_auth0)

    def build(self) -> EventBatch:
        jobs = self._jobs
        pubs = self._pubs
        acc = self._acc
        auth_off = np.zeros(len(pubs) + 1, _I64)
        if pubs:
            np.cumsum([len(a) for _, _, a in pubs], out=auth_off[1:])
        flat_auth = ([u for _, _, a in pubs for u in a]
                     if pubs else _EMPTY_I64)
        return EventBatch(
            np.frombuffer(bytes(self._kinds), dtype=np.uint8),
            np.asarray(self._ts, dtype=_I64),
            job_id=np.asarray([j[0] for j in jobs], dtype=_I64),
            job_uid=np.asarray([j[1] for j in jobs], dtype=_I64),
            job_start=np.asarray([j[2] for j in jobs], dtype=_I64),
            job_end=np.asarray([j[3] for j in jobs], dtype=_I64),
            job_nodes=np.asarray([j[4] for j in jobs], dtype=_I64),
            job_cores=np.asarray([j[5] for j in jobs], dtype=_I64),
            pub_id=np.asarray([p[0] for p in pubs], dtype=_I64),
            pub_cit=np.asarray([p[1] for p in pubs], dtype=_I64),
            pub_auth_off=auth_off,
            pub_auth=np.asarray(flat_auth, dtype=_I64),
            acc_uid=np.asarray([a[0] for a in acc], dtype=_I64),
            acc_op=np.frombuffer(bytes(a[1] for a in acc), dtype=np.uint8),
            acc_path=np.asarray([a[2] for a in acc], dtype=np.uint32),
            pool=self._pool)


# ---------------------------------------------------------------------------
# hybrid merge and cursor skip

_StreamItem = Union[StreamEvent, EventBatch]
_RunItem = Union[StreamEvent, BatchRun]


def _head_ts(item, off: int) -> int:
    """Timestamp of a source head (event, or batch row at ``off``)."""
    if type(item) is StreamEvent:
        return item.ts
    return int(item.ts[off])


def merge_stream_items(sources: Iterable[Iterable[_StreamItem]],
                       ) -> Iterator[_RunItem]:
    """Stable k-way merge over sources yielding events *or* batches.

    Semantics: identical to ``heapq.merge(key=ts)`` over the equivalent
    per-event streams -- smallest head timestamp first, ties broken by
    source listing order, original order kept within a source.  When the
    winning head is a batch, the longest prefix that stays below every
    *earlier* source's head (strictly) and at-or-below every *later*
    source's head is emitted as one :class:`BatchRun`; the two
    ``searchsorted`` bounds reproduce the heap's tie-break exactly.
    """
    iters = [iter(src) for src in sources]
    heads: list[object] = []
    offs: list[int] = []
    order: list[int] = []

    def _advance(slot: int, it) -> None:
        for item in it:
            if type(item) is not StreamEvent and item.n == 0:
                continue  # empty batch: nothing to merge
            heads[slot] = item
            return
        heads[slot] = None

    for i, it in enumerate(iters):
        heads.append(None)
        offs.append(0)
        order.append(i)
        _advance(i, it)

    while True:
        active = [i for i in order if heads[i] is not None]
        if not active:
            return
        if len(active) == 1:
            # Sole surviving source: drain it without per-item scans.
            i = active[0]
            item = heads[i]
            if type(item) is StreamEvent:
                yield item
            else:
                yield BatchRun(item, offs[i], item.n)
            offs[i] = 0
            for item in iters[i]:
                if type(item) is StreamEvent:
                    yield item
                elif item.n:
                    yield BatchRun(item, 0, item.n)
            return
        best = active[0]
        best_ts = _head_ts(heads[best], offs[best])
        for i in active[1:]:
            ts_i = _head_ts(heads[i], offs[i])
            if ts_i < best_ts:
                best, best_ts = i, ts_i
        item = heads[best]
        if type(item) is StreamEvent:
            yield item
            _advance(best, iters[best])
            continue
        # Batch head: emit the longest non-interleaving prefix as a run.
        lo = offs[best]
        hi = item.n
        ts_col = item.ts
        for i in active:
            if i == best:
                continue
            other = _head_ts(heads[i], offs[i])
            side = "left" if i < best else "right"
            cut = int(np.searchsorted(ts_col, other, side=side))
            if cut < hi:
                hi = cut
        if hi <= lo:
            hi = lo + 1  # the winning row itself always qualifies
        yield BatchRun(item, lo, hi)
        if hi >= item.n:
            offs[best] = 0
            _advance(best, iters[best])
        else:
            offs[best] = hi


def skip_stream_items(items: Iterable[_RunItem], n: int,
                      ) -> Iterator[_RunItem]:
    """Batch-aware cursor skip: drop the first ``n`` *events*.

    The per-event twin is ``stream.events.skip_events``; this one
    understands that a :class:`BatchRun` covers ``n_rows`` events and
    slices the run the cursor lands inside instead of exploding it.
    """
    if n < 0:
        raise ValueError("cursor must be non-negative")

    def gen():
        remaining = n
        for item in items:
            if remaining:
                size = getattr(item, "n_rows", 1)
                if size <= remaining:
                    remaining -= size
                    continue
                item = item.tail(remaining)
                remaining = 0
            yield item

    return gen()
