"""The online retention service: event-sourced, incremental, resumable.

:class:`OnlineRetentionService` is the streaming counterpart of the batch
:class:`~repro.emulation.compiled.FastEmulator`.  Where the batch path
compiles the whole trace up front and replays day slices, the service
consumes one merged :class:`~repro.stream.events.StreamEvent` at a time
and maintains everything incrementally:

* activity events (jobs, publications) append O(1) into an
  :class:`~repro.stream.state.IncrementalActivenessState`;
* access events intern their path into a growing
  :class:`~repro.stream.state.PathCatalog` and buffer into the current
  replay day;
* crossing a day boundary flushes the finished day through the shared
  :func:`~repro.emulation.compiled.replay_day_columns` kernel and -- on
  trigger days -- re-evaluates activeness *incrementally* and fires the
  policy's purge scan through the shared
  :class:`~repro.emulation.compiled.TriggerEngine`.

Because the kernels, the float fold order, and the boundary protocol all
match the batch path exactly, :meth:`finalize` returns an
:class:`~repro.emulation.emulator.EmulationResult` that is bit-identical
to ``FastEmulator.run`` over the same dataset, for the full retention
spectrum (pinned by ``tests/test_stream_service.py``).

Boundary protocol
-----------------
The batch loop for day ``d`` runs *trigger (if due), then replay day d*.
The service mirrors that with boundaries ``B = 0 .. n_days``:

* boundary 0 performs the initial activeness evaluation at
  ``replay_start``;
* boundary ``B >= 1`` first flushes day ``B - 1``, then (when
  ``B < n_days`` and ``B`` is a trigger day) evaluates activeness at
  ``t_c = replay_start + B * DAY`` and fires the purge trigger.

An arriving access of day ``d`` forces boundaries through ``d`` first; an
arriving activity at ``ts`` forces only boundaries strictly before ``ts``
(so an activity stamped exactly at a trigger instant is ingested before
that trigger evaluates -- the batch evaluators clip ``ts <= t_c``
inclusively).  :meth:`finalize` forces the remaining boundaries through
``n_days``.

Checkpointing
-------------
With a checkpoint directory configured the service snapshots itself after
trigger boundaries (every ``checkpoint_every_days`` days).  Checkpoints
happen *between* events -- the manifest cursor counts fully-consumed
merged events -- so resuming is: rebuild the same deterministic event
merge, ``skip_events(stream, cursor)``, and keep going.  The resumed run
is bit-identical to one that never stopped.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

import numpy as np

from ..core.activeness import ActivenessParams
from ..core.classification import classify_all, group_counts
from ..core.exemption import ExemptionList
from ..core.policy import RetentionPolicy
from ..emulation.compiled import (NEVER_POS, GroupLookup, TriggerEngine,
                                  replay_day_columns)
from ..emulation.emulator import EmulationResult, EmulatorConfig
from ..emulation.metrics import DailyMetrics
from ..vfs.file_meta import DAY_SECONDS
from ..vfs.filesystem import VirtualFileSystem
from .checkpoint import (CHECKPOINT_FORMAT, CheckpointManager,
                         activeness_from_arrays, activeness_to_arrays,
                         load_checkpoint, metrics_from_arrays,
                         metrics_to_arrays, reports_from_jsonable,
                         reports_to_jsonable)
from .events import (EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION, StreamEvent)
from .state import (GrowableReplayState, IncrementalActivenessState,
                    PathCatalog)

__all__ = ["OnlineRetentionService"]

_OP_CODES = {"access": 0, "create": 1, "touch": 2}  # mirrors compiled._OP_CODES


class OnlineRetentionService:
    """Streaming retention over a merged event feed.

    Parameters mirror ``FastEmulator`` plus the stream-specific knobs:

    snapshot_fs:
        The initial scratch file system (read once, never mutated).
    replay_start / replay_end:
        The replay window; accesses outside it are counted and dropped,
        exactly like batch compilation.  Activity events are *never*
        window-clipped (history before the window informs activeness).
    checkpoint_dir / checkpoint_every_days:
        When set, a rolling atomic checkpoint is written after trigger
        boundaries whose day is a multiple of ``checkpoint_every_days``.
    """

    def __init__(self, policy: RetentionPolicy, *,
                 snapshot_fs: VirtualFileSystem | None = None,
                 replay_start: int, replay_end: int,
                 capacity_bytes: int | None = None,
                 activeness_params: ActivenessParams | None = None,
                 config: EmulatorConfig | None = None,
                 exemptions: ExemptionList | None = None,
                 known_uids: Iterable[int] = (),
                 checkpoint_dir: str | None = None,
                 checkpoint_every_days: int = 7,
                 checkpoint_retain: int = 3,
                 checkpoint_manager: CheckpointManager | None = None,
                 ) -> None:
        if replay_end <= replay_start:
            raise ValueError("replay_end must exceed replay_start")
        self._engine = TriggerEngine(policy)
        self.policy = policy
        self.params = activeness_params or policy.config.activeness
        self.config = config or EmulatorConfig()
        self.exemptions = exemptions
        self.known_uids = [int(u) for u in known_uids]

        self.replay_start = int(replay_start)
        self.replay_end = int(replay_end)
        self.n_days = -(-(self.replay_end - self.replay_start) // DAY_SECONDS)
        self.window_end = self.replay_start + self.n_days * DAY_SECONDS

        self.catalog = PathCatalog()
        if capacity_bytes is None:
            capacity_bytes = (snapshot_fs.capacity_bytes
                              if snapshot_fs is not None else 0)
        self.state = GrowableReplayState(capacity_bytes)
        self.activity = IncrementalActivenessState()
        self.metrics = DailyMetrics(self.n_days)
        self.reports = []
        self.group_count_history = []
        self.classes = {}
        self._lookup: GroupLookup | None = None

        self._next_boundary = 0
        self._consumed = 0          # fully-processed merged events
        self.dropped_accesses = 0   # out-of-window access records
        self._buf_pid: list[int] = []
        self._buf_uid: list[int] = []
        self._buf_ts: list[int] = []
        self._buf_op: list[int] = []
        self._add_pos = np.full(0, NEVER_POS, dtype=np.int64)
        self._exempt: np.ndarray | None = (
            np.empty(0, dtype=np.bool_) if exemptions is not None else None)
        self._exempt_count = 0

        if checkpoint_manager is not None:
            self.checkpoints: CheckpointManager | None = checkpoint_manager
        else:
            self.checkpoints = (
                CheckpointManager(checkpoint_dir, retain=checkpoint_retain)
                if checkpoint_dir else None)
        self.checkpoint_every_days = int(checkpoint_every_days)

        self.stats = {
            "events_job": 0, "events_publication": 0, "events_access": 0,
            "triggers": 0, "trigger_seconds": 0.0,
            "eval_users": 0, "eval_refolded": 0,
            "checkpoints_written": 0, "checkpoint_failures": 0,
        }
        self.last_checkpoint_error: str | None = None

        if snapshot_fs is not None:
            self.load_snapshot(snapshot_fs)

    # ------------------------------------------------------------------
    # construction helpers

    def load_snapshot(self, fs: VirtualFileSystem) -> None:
        """Intern and materialize the initial file system."""
        for path, meta in fs.iter_files():
            pid = self.catalog.intern(path, snap_size=meta.size)
            self.state.ensure(self.catalog.n_paths)
            self.state.add_file(pid, meta.size, meta.atime, meta.uid)

    # ------------------------------------------------------------------
    # ingestion

    def ingest(self, event: StreamEvent) -> None:
        """Consume one merged event; may fire any number of boundaries."""
        kind = event.kind
        # Per-kind counters are bumped only *after* boundaries fire: a
        # checkpoint taken inside the boundary cascade must not have
        # counted the current (not yet consumed, will-be-redelivered)
        # event, or a resumed run would double-count it.
        if kind == EVENT_ACCESS:
            rec = event.payload
            if self.replay_start <= rec.ts < self.window_end:
                day = (rec.ts - self.replay_start) // DAY_SECONDS
                self._advance_boundaries(day)
                self.stats["events_access"] += 1
                self._buf_pid.append(self.catalog.intern(rec.path))
                self._buf_uid.append(rec.uid)
                self._buf_ts.append(rec.ts)
                self._buf_op.append(_OP_CODES[rec.op])
            else:
                self.stats["events_access"] += 1
                self.dropped_accesses += 1
        elif kind == EVENT_JOB:
            self._advance_boundaries_before(event.ts)
            self.stats["events_job"] += 1
            self.activity.add_job(event.payload)
        elif kind == EVENT_PUBLICATION:
            self._advance_boundaries_before(event.ts)
            self.stats["events_publication"] += 1
            self.activity.add_publication(event.payload)
        else:
            raise ValueError(f"unknown stream event kind {kind!r}")
        self._consumed += 1

    def run(self, events: Iterator[StreamEvent],
            stop_after_events: int | None = None) -> EmulationResult | None:
        """Drive the service from an event iterator.

        Returns the finalized result, or ``None`` when
        ``stop_after_events`` cut the run short (simulating a crash --
        resume from the latest checkpoint).
        """
        for event in events:
            if (stop_after_events is not None
                    and self._consumed >= stop_after_events):
                return None
            self.ingest(event)
        return self.finalize()

    # ------------------------------------------------------------------
    # boundaries

    def _advance_boundaries(self, day: int) -> None:
        """Fire every pending boundary up to and including ``day``."""
        while self._next_boundary <= min(day, self.n_days):
            self._boundary(self._next_boundary)

    def _advance_boundaries_before(self, ts: int) -> None:
        """Fire boundaries strictly earlier than an activity at ``ts``."""
        while (self._next_boundary <= self.n_days
               and self.replay_start + self._next_boundary * DAY_SECONDS
               < ts):
            self._boundary(self._next_boundary)

    def _boundary(self, boundary: int) -> None:
        triggered = False
        if boundary == 0:
            self._reclassify(self.replay_start)
        else:
            self._flush_day(boundary - 1)
            interval = self.policy.config.purge_trigger_days
            if boundary < self.n_days and boundary % interval == 0:
                self._fire_trigger(boundary)
                triggered = True
        self._next_boundary = boundary + 1
        if (triggered and self.checkpoints is not None
                and self.checkpoint_every_days > 0
                and boundary % self.checkpoint_every_days == 0):
            self._try_checkpoint()

    def _reclassify(self, t_c: int) -> dict:
        activeness = self.activity.evaluate(t_c, self.params, self.known_uids)
        self.stats["eval_users"] += self.activity.last_eval_users
        self.stats["eval_refolded"] += self.activity.last_eval_refolded
        self.classes = classify_all(activeness)
        self.group_count_history.append(group_counts(self.classes))
        self._lookup = GroupLookup(self.classes)
        return activeness

    def _fire_trigger(self, boundary: int) -> None:
        t_c = self.replay_start + boundary * DAY_SECONDS
        started = time.perf_counter()
        activeness = self._reclassify(t_c)
        self.state.ensure(self.catalog.n_paths)
        report = self._engine.trigger(self.catalog, self.state, t_c,
                                      activeness, self._lookup,
                                      self._exempt_mask())
        self.reports.append(report)
        self.stats["triggers"] += 1
        self.stats["trigger_seconds"] += time.perf_counter() - started

    def _flush_day(self, day: int) -> None:
        if not self._buf_pid:
            return
        pid = np.asarray(self._buf_pid, dtype=np.int64)
        uid = np.asarray(self._buf_uid, dtype=np.int64)
        ts = np.asarray(self._buf_ts, dtype=np.int64)
        op = np.asarray(self._buf_op, dtype=np.int8)
        self._buf_pid, self._buf_uid = [], []
        self._buf_ts, self._buf_op = [], []
        n = self.catalog.n_paths
        self.state.ensure(n)
        if self._add_pos.size < n:
            grown = np.full(max(n, self._add_pos.size * 2, 1024),
                            NEVER_POS, dtype=np.int64)
            grown[:self._add_pos.size] = self._add_pos
            self._add_pos = grown
        replay_day_columns(self.config, self.catalog.det_size, self.state,
                           day, self.metrics, self._lookup, self._add_pos,
                           pid, uid, ts, op)

    def _exempt_mask(self) -> np.ndarray | None:
        if self._exempt is None:
            return None
        n = self.catalog.n_paths
        if self._exempt.size < n:
            grown = np.zeros(max(n, self._exempt.size * 2, 1024),
                             dtype=np.bool_)
            grown[:self._exempt_count] = self._exempt[:self._exempt_count]
            self._exempt = grown
        if self._exempt_count < n:
            for i in range(self._exempt_count, n):
                self._exempt[i] = self.catalog.paths[i] in self.exemptions
            self._exempt_count = n
        return self._exempt[:n]

    # ------------------------------------------------------------------
    # completion

    def finalize(self) -> EmulationResult:
        """Flush the remaining boundaries and assemble the result.

        Identical (bit for bit) to ``FastEmulator.run`` over the same
        dataset: same ``DailyMetrics`` arrays, the same report sequence,
        the same group-count history and final classification.
        """
        self._advance_boundaries(self.n_days)
        result = EmulationResult(
            policy=self.policy.name,
            lifetime_days=self.policy.config.lifetime_days,
            metrics=self.metrics)
        result.reports = self.reports
        result.group_count_history = self.group_count_history
        result.final_classes = self.classes
        result.final_total_bytes = self.state.total_bytes
        result.final_file_count = self.state.file_count
        if self.checkpoints is not None:
            self._try_checkpoint()
        return result

    # ------------------------------------------------------------------
    # checkpoint / resume

    def _fingerprint(self) -> dict:
        cfg = self.policy.config
        return {
            "policy": self.policy.name,
            "lifetime_days": cfg.lifetime_days,
            "purge_trigger_days": cfg.purge_trigger_days,
            "period_days": self.params.period_days,
            "empty_period": self.params.empty_period,
            "epsilon": self.params.epsilon,
            "max_periods": self.params.max_periods,
            "apply_creates": self.config.apply_creates,
            "restore_on_miss": self.config.restore_on_miss,
        }

    def _try_checkpoint(self) -> str | None:
        """Checkpoint, surviving write failures.

        Checkpoints are advisory -- a failed write (disk full, transient
        ``EIO``) leaves the previous links of the chain intact, so the
        daemon records the failure and keeps serving rather than dying
        on a durability hiccup.  In-memory state is untouched by the
        failure; the next boundary simply tries again.
        """
        try:
            return self.save_checkpoint()
        except OSError as exc:
            self.stats["checkpoint_failures"] += 1
            self.last_checkpoint_error = f"{type(exc).__name__}: {exc}"
            return None

    def save_checkpoint(self) -> str:
        """Atomically snapshot the full service state; returns the path.

        Only legal between events with an empty day buffer -- i.e. right
        after a boundary, which is the only place the service calls it.
        """
        if self.checkpoints is None:
            raise ValueError("service has no checkpoint directory")
        if self._buf_pid:
            raise ValueError("cannot checkpoint with a partial day buffered")
        act_table, act_arrays = activeness_to_arrays(
            self.activity.snapshot_state())
        class_uids = np.fromiter(self.classes.keys(), np.int64,
                                 len(self.classes))
        class_codes = np.fromiter((c.value for c in self.classes.values()),
                                  np.int64, len(self.classes))
        ghist = np.zeros((len(self.group_count_history), 4), dtype=np.int64)
        for row, counts in enumerate(self.group_count_history):
            ghist[row] = [counts[cls] for cls in counts]
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "cursor": self._consumed,
            "next_boundary": self._next_boundary,
            "n_days": self.n_days,
            "replay_start": self.replay_start,
            "replay_end": self.replay_end,
            "capacity_bytes": self.state.capacity_bytes,
            "total_bytes": self.state.total_bytes,
            "file_count": self.state.file_count,
            "dropped_accesses": self.dropped_accesses,
            "known_uids": self.known_uids,
            "fingerprint": self._fingerprint(),
            "reports": reports_to_jsonable(self.reports),
            "activity_types": act_table,
            "stats": {k: v for k, v in self.stats.items()},
        }
        arrays = {
            "paths": np.asarray(self.catalog.paths, dtype=np.str_),
            "snap_size": self.catalog.snap_size.copy(),
            "live": self.state.live.copy(),
            "atime": self.state.atime.copy(),
            "size": self.state.size.copy(),
            "owner": self.state.owner.copy(),
            "class_uids": class_uids,
            "class_codes": class_codes,
            "group_count_history": ghist,
        }
        arrays.update(metrics_to_arrays(self.metrics))
        arrays.update(act_arrays)
        path = self.checkpoints.save(manifest, arrays)
        self.stats["checkpoints_written"] += 1
        return path

    @property
    def cursor(self) -> int:
        """Merged events fully consumed so far (the resume cursor)."""
        return self._consumed

    @classmethod
    def resume(cls, checkpoint_path: str, policy: RetentionPolicy, *,
               activeness_params: ActivenessParams | None = None,
               config: EmulatorConfig | None = None,
               exemptions: ExemptionList | None = None,
               checkpoint_dir: str | None = None,
               checkpoint_every_days: int = 7,
               checkpoint_retain: int = 3,
               checkpoint_manager: CheckpointManager | None = None,
               ) -> "OnlineRetentionService":
        """Rebuild a service from a checkpoint.

        The caller supplies the *same* policy/params/config/exemptions the
        original run used (policies hold live objects -- notifiers,
        residency indexes -- that a checkpoint cannot own); the stored
        fingerprint cross-checks the scalar knobs and refuses a mismatch.
        Feed the returned service ``skip_events(stream, service.cursor)``
        of the original deterministic merge to continue bit-identically.
        """
        from ..core.classification import UserClass

        manifest, arrays = load_checkpoint(checkpoint_path)
        service = cls(policy,
                      replay_start=manifest["replay_start"],
                      replay_end=manifest["replay_end"],
                      capacity_bytes=manifest["capacity_bytes"],
                      activeness_params=activeness_params,
                      config=config, exemptions=exemptions,
                      known_uids=manifest["known_uids"],
                      checkpoint_dir=checkpoint_dir,
                      checkpoint_every_days=checkpoint_every_days,
                      checkpoint_retain=checkpoint_retain,
                      checkpoint_manager=checkpoint_manager)
        stored = manifest["fingerprint"]
        current = service._fingerprint()
        if stored != current:
            diff = {k: (stored.get(k), current.get(k))
                    for k in set(stored) | set(current)
                    if stored.get(k) != current.get(k)}
            raise ValueError(
                f"checkpoint fingerprint mismatch (stored vs supplied): "
                f"{diff}")

        snap_size = np.asarray(arrays["snap_size"], dtype=np.int64)
        for i, path in enumerate(arrays["paths"].tolist()):
            service.catalog.intern(path, snap_size=int(snap_size[i]))
        n = service.catalog.n_paths
        service.state.ensure(n)
        service.state.live[:] = np.asarray(arrays["live"], dtype=np.bool_)
        service.state.atime[:] = np.asarray(arrays["atime"], dtype=np.int64)
        service.state.size[:] = np.asarray(arrays["size"], dtype=np.int64)
        service.state.owner[:] = np.asarray(arrays["owner"], dtype=np.int64)
        service.state.total_bytes = int(manifest["total_bytes"])
        service.state.file_count = int(manifest["file_count"])

        service.metrics = metrics_from_arrays(arrays)
        service.reports = reports_from_jsonable(manifest["reports"])
        ghist = np.asarray(arrays["group_count_history"], dtype=np.int64)
        service.group_count_history = [
            {cls: int(row[i]) for i, cls in enumerate(UserClass)}
            for row in ghist]
        service.classes = {
            int(u): UserClass(int(c))
            for u, c in zip(arrays["class_uids"].tolist(),
                            arrays["class_codes"].tolist())}
        service._lookup = GroupLookup(service.classes)
        service.activity.restore_state(activeness_from_arrays(
            manifest["activity_types"], arrays))

        service._next_boundary = int(manifest["next_boundary"])
        service._consumed = int(manifest["cursor"])
        service.dropped_accesses = int(manifest["dropped_accesses"])
        # Counters continue from the first leg, like the cursor does
        # (checkpoints_written / checkpoint_failures restart: they count
        # this process's writes).
        saved_stats = dict(manifest.get("stats", {}))
        saved_stats.pop("checkpoints_written", None)
        saved_stats.pop("checkpoint_failures", None)
        service.stats.update(saved_stats)
        return service
