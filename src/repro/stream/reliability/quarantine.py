"""Event quarantine: per-source guards and a bounded dead-letter log.

The merge in :mod:`repro.stream.events` assumes well-formed, time-sorted
events; production feeds deliver neither reliably.  The quarantine sits
*between each source and the merge*: every object a source emits is
checked (is it a :class:`StreamEvent` at all, known kind, right payload
type, monotone timestamp, not a duplicate, optionally a known uid) and
anything that fails is **diverted** -- appended to a dead-letter JSONL
with a reason code and dropped from the stream -- instead of poisoning
the merge or the service state.

Guarding per source, before the merge, preserves the merge's ordering
contract: the heap never sees garbage, and the per-source monotonicity
check subsumes the ``_validated`` regression assertion (a regressed
event is diverted rather than fatal).

The decisive property for testing: diverting an event never perturbs the
events around it, so for a fault plan that only *inserts* faults, the
guarded stream is exactly the clean stream -- which is what lets the
chaos suite demand bit-identical results under 1% malformed input.

Duplicate detection applies only to records that carry an identity (job
and publication ids are unique in every trace family).  Access records
have no sequence number, and a byte-identical repeated access is a
legitimate workload pattern (the same uid re-reading the same path in
the same second), so access duplicates are fundamentally
indistinguishable from real traffic and are deliberately *not*
quarantined -- dedup without an identity would drop real events.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator

from ...traces.io import OnError, fsync_directory
from ...traces.schema import AppAccessRecord, JobRecord, PublicationRecord
from ..events import EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION, StreamEvent

__all__ = ["DeadLetterLog", "EventQuarantine",
           "REASON_UNPARSABLE", "REASON_NOT_EVENT", "REASON_BAD_KIND",
           "REASON_BAD_PAYLOAD", "REASON_REGRESSION", "REASON_DUPLICATE",
           "REASON_UNKNOWN_UID"]

REASON_UNPARSABLE = "unparsable_row"      # reader could not parse the line
REASON_NOT_EVENT = "not_an_event"         # not a StreamEvent at all
REASON_BAD_KIND = "unknown_kind"          # kind outside the event schema
REASON_BAD_PAYLOAD = "bad_payload"        # payload type does not match kind
REASON_REGRESSION = "time_regression"     # ts precedes the source's clock
REASON_DUPLICATE = "duplicate"            # identity already delivered
REASON_UNKNOWN_UID = "unknown_uid"        # uid outside the known set

_PAYLOAD_TYPES = {
    EVENT_JOB: JobRecord,
    EVENT_PUBLICATION: PublicationRecord,
    EVENT_ACCESS: AppAccessRecord,
}


class DeadLetterLog:
    """Append-only JSONL of diverted events, with bounded-size rotation.

    Each record is one JSON object per line.  When the live file exceeds
    ``max_bytes`` it is rotated to ``<path>.1`` (cascading through
    ``backups`` numbered siblings, oldest dropped), so a pathological
    source cannot grow the dead letter without bound.  Appends are
    flushed immediately -- the log is forensic evidence, and the crash it
    documents may be imminent.
    """

    def __init__(self, path: str, max_bytes: int = 4_000_000,
                 backups: int = 1) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.path = path
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self.written = 0
        self.rotations = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a")

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=repr)
        self._fh.write(line + "\n")
        self._fh.flush()
        self.written += 1
        if self._fh.tell() > self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        self._fh.close()
        for i in range(self.backups, 0, -1):
            older = f"{self.path}.{i}"
            newer = self.path if i == 1 else f"{self.path}.{i - 1}"
            if os.path.exists(newer):
                os.replace(newer, older)
        if self.backups < 1:
            os.unlink(self.path)
        fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        self._fh = open(self.path, "a")
        self.rotations += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "DeadLetterLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class EventQuarantine:
    """Divert malformed / disordered / duplicate events from a stream.

    One quarantine instance guards all sources of a merge (its per-source
    clocks and identity sets are keyed by source name).  ``known_uids``
    is opt-in: when given, events referencing uids outside the set are
    diverted too -- off by default because a merely *new* user is not an
    error in every deployment.
    """

    def __init__(self, dead_letter: DeadLetterLog | None = None,
                 known_uids: Iterable[int] | None = None) -> None:
        self.dead_letter = dead_letter
        self.known_uids = (frozenset(int(u) for u in known_uids)
                           if known_uids is not None else None)
        self.total = 0
        self.by_reason: dict[str, int] = {}
        self.by_source: dict[str, int] = {}
        self._last_ts: dict[str, int] = {}
        self._seen_ids: dict[str, set] = {}

    # -- diversion -----------------------------------------------------

    def divert(self, source: str, reason: str, detail: str,
               obj: object = None) -> None:
        """Record one diverted item (and dead-letter it, when configured)."""
        self.total += 1
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        self.by_source[source] = self.by_source.get(source, 0) + 1
        if self.dead_letter is not None:
            # reason_seq / source_seq are *cumulative* counters, not
            # per-file: the newest surviving record therefore carries
            # the exact lifetime totals even after rotation has dropped
            # the oldest backup, which is what lets resume_from restore
            # counts instead of recounting (undercountable) lines.
            self.dead_letter.append({
                "seq": self.total,
                "source": source,
                "reason": reason,
                "reason_seq": self.by_reason[reason],
                "source_seq": self.by_source[source],
                "detail": detail,
                "event": repr(obj)[:300],
            })

    def resume_from(self, dead_letter: DeadLetterLog) -> None:
        """Restore lifetime counters from a dead-letter log's files.

        Scans the live file and every surviving numbered backup and
        takes the maximum of each cumulative counter (``seq`` for the
        total, ``reason_seq`` / ``source_seq`` per key), so a restarted
        daemon's quarantine summary continues the old daemon's counts
        rather than restarting from zero.  Unreadable lines (the last
        append may itself have been torn by the crash) are skipped.
        """
        paths = [f"{dead_letter.path}.{i}"
                 for i in range(dead_letter.backups, 0, -1)]
        paths.append(dead_letter.path)
        for path in paths:
            try:
                fh = open(path)
            except OSError:
                continue
            with fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(rec, dict):
                        continue
                    seq = rec.get("seq")
                    if isinstance(seq, int):
                        self.total = max(self.total, seq)
                    for key, counts in (("reason", self.by_reason),
                                        ("source", self.by_source)):
                        name = rec.get(key)
                        cum = rec.get(f"{key}_seq")
                        if isinstance(name, str) and isinstance(cum, int):
                            counts[name] = max(counts.get(name, 0), cum)

    def reader_hook(self, source: str) -> OnError:
        """An ``on_error`` callback for the trace readers of ``source``."""
        def on_error(line: str, exc: Exception) -> None:
            self.divert(source, REASON_UNPARSABLE,
                        f"{type(exc).__name__}: {exc}", line)
        return on_error

    # -- guarding ------------------------------------------------------

    def guard(self, source: str,
              events: Iterable[object]) -> Iterator[StreamEvent]:
        """Yield only the valid events of ``events``; divert the rest.

        The loop body is an inlined copy of :meth:`_check`'s accept
        conditions (this is the per-event hot path of the whole ingest
        layer); anything that fails the inline tests falls through to
        ``_check`` for the canonical reason code, so the two must stay
        in lockstep.  The source's clock lives in a local and is synced
        back to ``_last_ts`` on the slow path and on generator exit.
        """
        payload_types = _PAYLOAD_TYPES
        known = self.known_uids
        seen = self._seen_ids.setdefault(source, set())
        last = self._last_ts.get(source)
        try:
            for obj in events:
                if type(obj) is StreamEvent:
                    ts = obj.ts
                    kind = obj.kind
                    expected = payload_types.get(kind)
                    if (expected is not None
                            and isinstance(obj.payload, expected)
                            and type(ts) is int
                            and (last is None or ts >= last)
                            and (known is None
                                 or not _unknown_uids(obj, known))):
                        if kind == EVENT_ACCESS:
                            last = ts
                            yield obj
                            continue
                        ident = (("job", obj.payload.job_id)
                                 if kind == EVENT_JOB
                                 else ("pub", obj.payload.pub_id))
                        if ident not in seen:
                            seen.add(ident)
                            last = ts
                            yield obj
                            continue
                if last is not None:
                    self._last_ts[source] = last
                reason = self._check(source, obj)
                if reason is None:
                    # Valid, but shaped oddly enough (e.g. an int
                    # subclass timestamp) to miss the fast path.
                    last = obj.ts
                    ident = _identity(obj)
                    if ident is not None:
                        seen.add(ident)
                    yield obj
                    continue
                self.divert(source, reason[0], reason[1], obj)
        finally:
            if last is not None:
                self._last_ts[source] = last

    def _check(self, source: str,
               obj: object) -> tuple[str, str] | None:
        if not isinstance(obj, StreamEvent):
            return (REASON_NOT_EVENT,
                    f"expected StreamEvent, got {type(obj).__name__}")
        expected = _PAYLOAD_TYPES.get(obj.kind)
        if expected is None:
            return (REASON_BAD_KIND, f"kind {obj.kind!r}")
        if not isinstance(obj.payload, expected):
            return (REASON_BAD_PAYLOAD,
                    f"{obj.kind} event carries "
                    f"{type(obj.payload).__name__}, "
                    f"expected {expected.__name__}")
        if not isinstance(obj.ts, int) or isinstance(obj.ts, bool):
            return (REASON_BAD_PAYLOAD, f"non-integer ts {obj.ts!r}")
        if self.known_uids is not None:
            unknown = _unknown_uids(obj, self.known_uids)
            if unknown:
                return (REASON_UNKNOWN_UID, f"uid(s) {sorted(unknown)}")
        last = self._last_ts.get(source)
        if last is not None and obj.ts < last:
            return (REASON_REGRESSION,
                    f"ts {obj.ts} after {last} from {source}")
        ident = _identity(obj)
        if ident is not None and ident in self._seen_ids.get(source, ()):
            return (REASON_DUPLICATE, f"id {ident[1]} redelivered")
        return None

    # -- reporting -----------------------------------------------------

    def summary(self) -> dict:
        out: dict = {
            "quarantined": self.total,
            "by_reason": dict(sorted(self.by_reason.items())),
            "by_source": dict(sorted(self.by_source.items())),
        }
        if self.dead_letter is not None:
            out["dead_letter"] = {
                "path": self.dead_letter.path,
                "written": self.dead_letter.written,
                "rotations": self.dead_letter.rotations,
            }
        return out


def _identity(ev: StreamEvent) -> tuple | None:
    """A stable identity for events that carry one; None for accesses."""
    if ev.kind == EVENT_JOB:
        return ("job", ev.payload.job_id)
    if ev.kind == EVENT_PUBLICATION:
        return ("pub", ev.payload.pub_id)
    return None


def _unknown_uids(ev: StreamEvent, known: frozenset) -> set:
    if ev.kind == EVENT_PUBLICATION:
        return {u for u in ev.payload.author_uids if u not in known}
    uid = ev.payload.uid
    return set() if uid in known else {uid}
