"""Event quarantine: per-source guards and a bounded dead-letter log.

The merge in :mod:`repro.stream.events` assumes well-formed, time-sorted
events; production feeds deliver neither reliably.  The quarantine sits
*between each source and the merge*: every object a source emits is
checked (is it a :class:`StreamEvent` at all, known kind, right payload
type, monotone timestamp, not a duplicate, optionally a known uid) and
anything that fails is **diverted** -- appended to a dead-letter JSONL
with a reason code and dropped from the stream -- instead of poisoning
the merge or the service state.

Guarding per source, before the merge, preserves the merge's ordering
contract: the heap never sees garbage, and the per-source monotonicity
check subsumes the ``_validated`` regression assertion (a regressed
event is diverted rather than fatal).

The decisive property for testing: diverting an event never perturbs the
events around it, so for a fault plan that only *inserts* faults, the
guarded stream is exactly the clean stream -- which is what lets the
chaos suite demand bit-identical results under 1% malformed input.

Duplicate detection applies only to records that carry an identity (job
and publication ids are unique in every trace family).  Access records
have no sequence number, and a byte-identical repeated access is a
legitimate workload pattern (the same uid re-reading the same path in
the same second), so access duplicates are fundamentally
indistinguishable from real traffic and are deliberately *not*
quarantined -- dedup without an identity would drop real events.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterable, Iterator

import numpy as np

from ...traces.io import OnError, fsync_directory
from ...traces.schema import AppAccessRecord, JobRecord, PublicationRecord
from ..batch import (KIND_ACC_CODE, KIND_JOB_CODE, KIND_PUB_CODE, OP_BY_CODE,
                     EventBatch)
from ..events import EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION, StreamEvent

__all__ = ["DeadLetterLog", "EventQuarantine",
           "REASON_UNPARSABLE", "REASON_NOT_EVENT", "REASON_BAD_KIND",
           "REASON_BAD_PAYLOAD", "REASON_REGRESSION", "REASON_DUPLICATE",
           "REASON_UNKNOWN_UID", "REASON_CORRUPT_FRAME"]

REASON_UNPARSABLE = "unparsable_row"      # reader could not parse the line
REASON_NOT_EVENT = "not_an_event"         # not a StreamEvent at all
REASON_BAD_KIND = "unknown_kind"          # kind outside the event schema
REASON_BAD_PAYLOAD = "bad_payload"        # payload type does not match kind
REASON_REGRESSION = "time_regression"     # ts precedes the source's clock
REASON_DUPLICATE = "duplicate"            # identity already delivered
REASON_UNKNOWN_UID = "unknown_uid"        # uid outside the known set
REASON_CORRUPT_FRAME = "corrupt_frame"    # binary batch frame failed CRC/shape

_PAYLOAD_TYPES = {
    EVENT_JOB: JobRecord,
    EVENT_PUBLICATION: PublicationRecord,
    EVENT_ACCESS: AppAccessRecord,
}


class DeadLetterLog:
    """Append-only JSONL of diverted events, with bounded-size rotation.

    Each record is one JSON object per line.  When the live file exceeds
    ``max_bytes`` it is rotated to ``<path>.1`` (cascading through
    ``backups`` numbered siblings, oldest dropped), so a pathological
    source cannot grow the dead letter without bound.  Appends are
    flushed immediately -- the log is forensic evidence, and the crash it
    documents may be imminent.
    """

    def __init__(self, path: str, max_bytes: int = 4_000_000,
                 backups: int = 1) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.path = path
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self.written = 0
        self.rotations = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a")

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=repr)
        self._fh.write(line + "\n")
        self._fh.flush()
        self.written += 1
        if self._fh.tell() > self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        self._fh.close()
        for i in range(self.backups, 0, -1):
            older = f"{self.path}.{i}"
            newer = self.path if i == 1 else f"{self.path}.{i - 1}"
            if os.path.exists(newer):
                os.replace(newer, older)
        if self.backups < 1:
            os.unlink(self.path)
        fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        self._fh = open(self.path, "a")
        self.rotations += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "DeadLetterLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class EventQuarantine:
    """Divert malformed / disordered / duplicate events from a stream.

    One quarantine instance guards all sources of a merge (its per-source
    clocks and identity sets are keyed by source name).  ``known_uids``
    is opt-in: when given, events referencing uids outside the set are
    diverted too -- off by default because a merely *new* user is not an
    error in every deployment.
    """

    def __init__(self, dead_letter: DeadLetterLog | None = None,
                 known_uids: Iterable[int] | None = None) -> None:
        self.dead_letter = dead_letter
        self.known_uids = (frozenset(int(u) for u in known_uids)
                           if known_uids is not None else None)
        self.total = 0
        self.by_reason: dict[str, int] = {}
        self.by_source: dict[str, int] = {}
        self._last_ts: dict[str, int] = {}
        self._seen_ids: dict[str, set] = {}
        self._known_arr: np.ndarray | None = None
        # Divert is called from the engine thread (guards) *and* from
        # listener reader threads (frame-level corruption hooks); the
        # counters and the dead-letter append must not interleave.
        self._divert_lock = threading.Lock()

    # -- diversion -----------------------------------------------------

    def divert(self, source: str, reason: str, detail: str,
               obj: object = None) -> None:
        """Record one diverted item (and dead-letter it, when configured)."""
        with self._divert_lock:
            self.total += 1
            self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
            self.by_source[source] = self.by_source.get(source, 0) + 1
            if self.dead_letter is not None:
                # reason_seq / source_seq are *cumulative* counters, not
                # per-file: the newest surviving record therefore carries
                # the exact lifetime totals even after rotation has dropped
                # the oldest backup, which is what lets resume_from restore
                # counts instead of recounting (undercountable) lines.
                self.dead_letter.append({
                    "seq": self.total,
                    "source": source,
                    "reason": reason,
                    "reason_seq": self.by_reason[reason],
                    "source_seq": self.by_source[source],
                    "detail": detail,
                    "event": repr(obj)[:300],
                })

    def resume_from(self, dead_letter: DeadLetterLog) -> None:
        """Restore lifetime counters from a dead-letter log's files.

        Scans the live file and every surviving numbered backup and
        takes the maximum of each cumulative counter (``seq`` for the
        total, ``reason_seq`` / ``source_seq`` per key), so a restarted
        daemon's quarantine summary continues the old daemon's counts
        rather than restarting from zero.  Unreadable lines (the last
        append may itself have been torn by the crash) are skipped.
        """
        paths = [f"{dead_letter.path}.{i}"
                 for i in range(dead_letter.backups, 0, -1)]
        paths.append(dead_letter.path)
        for path in paths:
            try:
                fh = open(path)
            except OSError:
                continue
            with fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(rec, dict):
                        continue
                    seq = rec.get("seq")
                    if isinstance(seq, int):
                        self.total = max(self.total, seq)
                    for key, counts in (("reason", self.by_reason),
                                        ("source", self.by_source)):
                        name = rec.get(key)
                        cum = rec.get(f"{key}_seq")
                        if isinstance(name, str) and isinstance(cum, int):
                            counts[name] = max(counts.get(name, 0), cum)

    def reader_hook(self, source: str) -> OnError:
        """An ``on_error`` callback for the trace readers of ``source``."""
        def on_error(line: str, exc: Exception) -> None:
            self.divert(source, REASON_UNPARSABLE,
                        f"{type(exc).__name__}: {exc}", line)
        return on_error

    # -- guarding ------------------------------------------------------

    def guard(self, source: str,
              events: Iterable[object]) -> Iterator[StreamEvent]:
        """Yield only the valid events of ``events``; divert the rest.

        The loop body is an inlined copy of :meth:`_check`'s accept
        conditions (this is the per-event hot path of the whole ingest
        layer); anything that fails the inline tests falls through to
        ``_check`` for the canonical reason code, so the two must stay
        in lockstep.  The source's clock lives in a local and is synced
        back to ``_last_ts`` on the slow path and on generator exit.
        """
        payload_types = _PAYLOAD_TYPES
        known = self.known_uids
        seen = self._seen_ids.setdefault(source, set())
        last = self._last_ts.get(source)
        try:
            for obj in events:
                if type(obj) is StreamEvent:
                    ts = obj.ts
                    kind = obj.kind
                    expected = payload_types.get(kind)
                    if (expected is not None
                            and isinstance(obj.payload, expected)
                            and type(ts) is int
                            and (last is None or ts >= last)
                            and (known is None
                                 or not _unknown_uids(obj, known))):
                        if kind == EVENT_ACCESS:
                            last = ts
                            yield obj
                            continue
                        ident = (("job", obj.payload.job_id)
                                 if kind == EVENT_JOB
                                 else ("pub", obj.payload.pub_id))
                        if ident not in seen:
                            seen.add(ident)
                            last = ts
                            yield obj
                            continue
                if last is not None:
                    self._last_ts[source] = last
                reason = self._check(source, obj)
                if reason is None:
                    # Valid, but shaped oddly enough (e.g. an int
                    # subclass timestamp) to miss the fast path.
                    last = obj.ts
                    ident = _identity(obj)
                    if ident is not None:
                        seen.add(ident)
                    yield obj
                    continue
                self.divert(source, reason[0], reason[1], obj)
        finally:
            if last is not None:
                self._last_ts[source] = last

    def guard_hybrid(self, source: str,
                     items: Iterable[object]) -> Iterator[object]:
        """Guard a stream mixing single events and columnar batches.

        Events take the same inlined fast path as :meth:`guard` (the
        two must stay in lockstep); an :class:`EventBatch` is validated
        wholesale by :meth:`validate_batch` and re-emitted compacted.
        Yields ``StreamEvent | EventBatch`` for the hybrid merge.
        """
        payload_types = _PAYLOAD_TYPES
        known = self.known_uids
        seen = self._seen_ids.setdefault(source, set())
        last = self._last_ts.get(source)
        try:
            for obj in items:
                if type(obj) is StreamEvent:
                    ts = obj.ts
                    kind = obj.kind
                    expected = payload_types.get(kind)
                    if (expected is not None
                            and isinstance(obj.payload, expected)
                            and type(ts) is int
                            and (last is None or ts >= last)
                            and (known is None
                                 or not _unknown_uids(obj, known))):
                        if kind == EVENT_ACCESS:
                            last = ts
                            yield obj
                            continue
                        ident = (("job", obj.payload.job_id)
                                 if kind == EVENT_JOB
                                 else ("pub", obj.payload.pub_id))
                        if ident not in seen:
                            seen.add(ident)
                            last = ts
                            yield obj
                            continue
                elif getattr(obj, "is_event_batch", False):
                    # Batch validation reads/writes the shared per-source
                    # clock, so sync the local one around the call.
                    if last is not None:
                        self._last_ts[source] = last
                    out = self.validate_batch(source, obj)
                    last = self._last_ts.get(source)
                    if out is not None:
                        yield out
                    continue
                if last is not None:
                    self._last_ts[source] = last
                reason = self._check(source, obj)
                if reason is None:
                    last = obj.ts
                    ident = _identity(obj)
                    if ident is not None:
                        seen.add(ident)
                    yield obj
                    continue
                self.divert(source, reason[0], reason[1], obj)
        finally:
            if last is not None:
                self._last_ts[source] = last

    def validate_batch(self, source: str,
                       batch: EventBatch) -> EventBatch | None:
        """Vectorized twin of :meth:`guard` for one columnar batch.

        Applies the same accept conditions in the same canonical order
        -- structural/record invariants, then unknown uids, then time
        regression, then duplicate identities -- and diverts failing
        rows *in row order* with the same reason codes, so a batched
        source dead-letters exactly what the per-event source would.
        Returns the surviving rows (compacted when any were diverted)
        or ``None`` when nothing survived.

        Equivalence argument for the vectorized regression check: the
        sequential guard's clock only advances on *accepted* rows, and
        any row rejected for regression has ``ts`` strictly below the
        running maximum -- so including rejected rows in a running
        maximum cannot change it, and ``ts[i] >= max(last, ts[:i])``
        over all prior rows equals the sequential accept decision.
        Batches carrying identities (jobs/publications) additionally
        need the duplicate check's interaction with the clock, which is
        order-sensitive; those take a bulk set test in the common
        all-clean case and fall back to an exact sequential pass
        otherwise.
        """
        n = batch.n
        if n == 0:
            return None
        kinds = batch.kinds
        ts = batch.ts
        known = self.known_uids
        keep = np.ones(n, dtype=bool)
        reasons: dict[int, tuple[str, str]] = {}

        def mark(rows: np.ndarray, reason: str, detail: str) -> None:
            for r in rows.tolist():
                if r not in reasons:
                    reasons[r] = (reason, detail)
                    keep[r] = False

        jidx = pidx = None
        # 1. record invariants (a v1 peer's decode_event would have
        #    refused to construct these rows: same reason code).
        if batch.n_jobs:
            jidx = np.flatnonzero(kinds == KIND_JOB_CODE)
            jbad = ((batch.job_end < batch.job_start)
                    | (batch.job_start < ts[jidx])
                    | (batch.job_nodes < 1) | (batch.job_cores < 1))
            if jbad.any():
                mark(jidx[jbad], REASON_UNPARSABLE,
                     "job row violates record invariants")
        if batch.n_acc:
            aidx = np.flatnonzero(kinds == KIND_ACC_CODE)
            abad = ((batch.acc_op >= len(OP_BY_CODE))
                    | (batch.acc_path >= batch.n_pool))
            if abad.any():
                mark(aidx[abad], REASON_UNPARSABLE,
                     "access row has bad op code or pool index")
        if batch.n_pubs:
            pidx = np.flatnonzero(kinds == KIND_PUB_CODE)
            off = batch.pub_auth_off
            pbad = batch.pub_cit < 0
            for k in range(batch.n_pubs):
                lo, hi = int(off[k]), int(off[k + 1])
                if hi - lo > 1 and \
                        np.unique(batch.pub_auth[lo:hi]).size != hi - lo:
                    pbad[k] = True
            if pbad.any():
                mark(pidx[pbad], REASON_UNPARSABLE,
                     "publication row violates record invariants")

        # 2. unknown uids.
        if known is not None:
            karr = self._known_arr
            if karr is None:
                karr = self._known_arr = np.asarray(sorted(known), np.int64)
            if batch.n_jobs:
                ju = ~np.isin(batch.job_uid, karr)
                if ju.any():
                    mark(jidx[ju], REASON_UNKNOWN_UID,
                         "job row uid outside the known set")
            if batch.n_acc:
                au = ~np.isin(batch.acc_uid, karr)
                if au.any():
                    mark(aidx[au], REASON_UNKNOWN_UID,
                         "access row uid outside the known set")
            if batch.n_pubs and batch.pub_auth.size:
                auth_known = np.isin(batch.pub_auth, karr)
                if not auth_known.all():
                    lens = np.diff(batch.pub_auth_off)
                    grp = np.repeat(np.arange(batch.n_pubs), lens)
                    pu = np.zeros(batch.n_pubs, dtype=bool)
                    np.logical_or.at(pu, grp[~auth_known], True)
                    mark(pidx[pu], REASON_UNKNOWN_UID,
                         "publication row author outside the known set")

        # 3. time regression (+ duplicates for identity-carrying rows).
        last = self._last_ts.get(source)
        sidx = np.flatnonzero(keep)
        if sidx.size:
            sts = ts[sidx]
            monotone = bool((sts[1:] >= sts[:-1]).all()) and \
                (last is None or int(sts[0]) >= last)
            if not (batch.n_jobs or batch.n_pubs):
                if monotone:
                    self._last_ts[source] = int(sts[-1])
                else:
                    run = np.maximum.accumulate(sts)
                    prev = np.empty_like(sts)
                    prev[0] = sts[0] if last is None else last
                    prev[1:] = run[:-1]
                    if last is not None:
                        np.maximum(prev, last, out=prev)
                    ok = sts >= prev
                    mark(sidx[~ok], REASON_REGRESSION,
                         "ts precedes the source clock")
                    if ok.any():
                        self._last_ts[source] = int(sts[np.flatnonzero(ok)[-1]])
            else:
                seen = self._seen_ids.setdefault(source, set())
                accepted_all = False
                if monotone:
                    jsel = keep[jidx] if batch.n_jobs else None
                    psel = keep[pidx] if batch.n_pubs else None
                    idents = []
                    if batch.n_jobs:
                        idents += [("job", i)
                                   for i in batch.job_id[jsel].tolist()]
                    if batch.n_pubs:
                        idents += [("pub", i)
                                   for i in batch.pub_id[psel].tolist()]
                    if len(set(idents)) == len(idents) \
                            and seen.isdisjoint(idents):
                        seen.update(idents)
                        self._last_ts[source] = int(sts[-1])
                        accepted_all = True
                if not accepted_all:
                    # Exact sequential replay of the guard's clock and
                    # identity logic over the surviving rows.
                    kpos = batch.kpos()
                    for r in sidx.tolist():
                        t = int(ts[r])
                        if last is not None and t < last:
                            reasons[r] = (REASON_REGRESSION,
                                          f"ts {t} after {last} from {source}")
                            keep[r] = False
                            continue
                        code = int(kinds[r])
                        if code == KIND_JOB_CODE:
                            ident = ("job", int(batch.job_id[kpos[r]]))
                        elif code == KIND_PUB_CODE:
                            ident = ("pub", int(batch.pub_id[kpos[r]]))
                        else:
                            ident = None
                        if ident is not None:
                            if ident in seen:
                                reasons[r] = (REASON_DUPLICATE,
                                              f"id {ident[1]} redelivered")
                                keep[r] = False
                                continue
                            seen.add(ident)
                        last = t
                    if last is not None:
                        self._last_ts[source] = last

        if reasons:
            for r in sorted(reasons):
                reason, detail = reasons[r]
                self.divert(source, reason, detail, batch.row_debug(r))
            if not keep.any():
                return None
            return batch.compact(keep)
        return batch

    def _check(self, source: str,
               obj: object) -> tuple[str, str] | None:
        if not isinstance(obj, StreamEvent):
            return (REASON_NOT_EVENT,
                    f"expected StreamEvent, got {type(obj).__name__}")
        expected = _PAYLOAD_TYPES.get(obj.kind)
        if expected is None:
            return (REASON_BAD_KIND, f"kind {obj.kind!r}")
        if not isinstance(obj.payload, expected):
            return (REASON_BAD_PAYLOAD,
                    f"{obj.kind} event carries "
                    f"{type(obj.payload).__name__}, "
                    f"expected {expected.__name__}")
        if not isinstance(obj.ts, int) or isinstance(obj.ts, bool):
            return (REASON_BAD_PAYLOAD, f"non-integer ts {obj.ts!r}")
        if self.known_uids is not None:
            unknown = _unknown_uids(obj, self.known_uids)
            if unknown:
                return (REASON_UNKNOWN_UID, f"uid(s) {sorted(unknown)}")
        last = self._last_ts.get(source)
        if last is not None and obj.ts < last:
            return (REASON_REGRESSION,
                    f"ts {obj.ts} after {last} from {source}")
        ident = _identity(obj)
        if ident is not None and ident in self._seen_ids.get(source, ()):
            return (REASON_DUPLICATE, f"id {ident[1]} redelivered")
        return None

    # -- reporting -----------------------------------------------------

    def summary(self) -> dict:
        out: dict = {
            "quarantined": self.total,
            "by_reason": dict(sorted(self.by_reason.items())),
            "by_source": dict(sorted(self.by_source.items())),
        }
        if self.dead_letter is not None:
            out["dead_letter"] = {
                "path": self.dead_letter.path,
                "written": self.dead_letter.written,
                "rotations": self.dead_letter.rotations,
            }
        return out


def _identity(ev: StreamEvent) -> tuple | None:
    """A stable identity for events that carry one; None for accesses."""
    if ev.kind == EVENT_JOB:
        return ("job", ev.payload.job_id)
    if ev.kind == EVENT_PUBLICATION:
        return ("pub", ev.payload.pub_id)
    return None


def _unknown_uids(ev: StreamEvent, known: frozenset) -> set:
    if ev.kind == EVENT_PUBLICATION:
        return {u for u in ev.payload.author_uids if u not in known}
    uid = ev.payload.uid
    return set() if uid in known else {uid}
