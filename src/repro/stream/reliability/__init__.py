"""Fault-tolerant ingestion: resilient sources and event quarantine.

This subpackage hardens the ingest side of the online retention service.
:mod:`~repro.stream.reliability.sources` keeps unreliable feeds flowing
(retry with deterministic backoff, per-source health, graceful death
with watermark holds); :mod:`~repro.stream.reliability.quarantine`
keeps bad *data* out of the merge (schema / ordering / duplicate guards
backed by a bounded dead-letter log).  :class:`ReliableEventStream`
composes both into a drop-in replacement for
``workspace_event_stream`` that degrades instead of crashing.
"""

from .quarantine import (REASON_BAD_KIND, REASON_BAD_PAYLOAD,
                         REASON_DUPLICATE, REASON_NOT_EVENT,
                         REASON_REGRESSION, REASON_UNKNOWN_UID,
                         REASON_UNPARSABLE, DeadLetterLog, EventQuarantine)
from .sources import (ReliableEventStream, ResilientSource, RetryPolicy,
                      SourceHealth, TailingFileSource)

__all__ = [
    "DeadLetterLog",
    "EventQuarantine",
    "REASON_UNPARSABLE",
    "REASON_NOT_EVENT",
    "REASON_BAD_KIND",
    "REASON_BAD_PAYLOAD",
    "REASON_REGRESSION",
    "REASON_DUPLICATE",
    "REASON_UNKNOWN_UID",
    "ReliableEventStream",
    "ResilientSource",
    "RetryPolicy",
    "SourceHealth",
    "TailingFileSource",
]
