"""Resilient event sources: retry, backoff, health, graceful death.

A production feed fails in boring ways -- a transient ``EIO``, an NFS
stall, a log shipper restarting -- and the right response is almost
never "crash the daemon".  :class:`ResilientSource` wraps a *replayable*
source (a zero-argument factory returning a fresh iterator from the
start) and absorbs transient failures by re-opening the factory and
fast-forwarding to the exact record where the failure struck.  Retries
follow :class:`RetryPolicy`: bounded attempts, exponential backoff with
*deterministic seeded jitter* (two runs of the same plan sleep the same
amounts -- reproducibility extends to the failure path), and an optional
wall-clock deadline per failure episode.

Health is a three-state ladder.  ``OK`` flows; a failing source is
``DEGRADED`` while the retry loop works on it and returns to ``OK`` on
the next successful record; a source whose episode exhausts its attempt
or deadline budget goes ``DEAD`` -- it raises ``StopIteration``, so a
``heapq.merge`` over guarded sources *naturally* continues without it
(graceful degradation), and its last-emitted timestamp is held as an
explicit **watermark** in the report so the operator can see exactly how
far the dead feed got.

Position bookkeeping is the part that makes fault injection composable:
``pos`` counts *underlying* records consumed (the counting shim advances
it; injected faults never do), so a re-opened source skips exactly the
records already delivered, and a :class:`~repro.faults.io.FaultyStream`
keyed on ``pos`` fires each scripted fault exactly once across any
number of reopens.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import os
import random
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ...traces.io import (read_app_log, read_jobs, read_publications)
from ..events import (StreamEvent, access_events, job_events,
                      publication_events)
from .quarantine import DeadLetterLog, EventQuarantine

__all__ = ["SourceHealth", "RetryPolicy", "ResilientSource",
           "TailingFileSource", "ReliableEventStream"]


class SourceHealth(enum.Enum):
    OK = "ok"               # flowing normally
    DEGRADED = "degraded"   # currently failing; retry loop engaged
    DEAD = "dead"           # retry budget exhausted; excluded from merge


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for one failure episode of one source.

    An *episode* starts at the first error after a success and ends when
    a record is delivered (budgets reset) or the budget is exhausted
    (source goes DEAD).  ``deadline`` caps an episode's wall-clock
    seconds; ``jitter`` spreads each delay by up to +/- that fraction,
    seeded per ``(seed, source, attempt)`` so schedules are exactly
    reproducible.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    deadline: float | None = None
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, source: str, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (zero-based) of ``source``."""
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** attempt)
        if self.jitter:
            rng = random.Random(f"{self.seed}|{source}|{attempt}")
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)


class ResilientSource:
    """A retrying, health-tracked iterator over a replayable source.

    ``factory`` must return a fresh iterator over the *same* sequence
    each call (file readers and pure generators qualify); recovery
    re-opens it and skips the ``pos`` records already delivered.  When a
    fault ``plan`` targets this source's name, the underlying iterator
    is wrapped in a :class:`~repro.faults.io.FaultyStream` keyed on this
    object's ``pos`` / ``last_event``.
    """

    def __init__(self, name: str, factory: Callable[[], Iterable], *,
                 policy: RetryPolicy | None = None,
                 plan=None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.name = name
        self._factory = factory
        self.policy = policy or RetryPolicy()
        self._plan = plan
        self._sleep = sleep
        self._clock = clock
        self.pos = 0                # underlying records consumed
        self.last_event = None      # most recent underlying record
        self.watermark: int | None = None  # ts of last emitted event
        self.health = SourceHealth.OK
        self.retries = 0            # reopen attempts, lifetime total
        self.episodes = 0           # failure episodes entered
        self.last_error: str | None = None
        self._it: Iterator | None = None
        self._gen: Iterator | None = None
        self._exhausted = False
        self._faulted = plan is not None and plan.has_target(name)

    def _open(self) -> Iterator:
        raw = iter(self._factory())
        if self.pos:
            raw = itertools.islice(raw, self.pos, None)
        if self._faulted:
            from ...faults.io import FaultyStream
            return FaultyStream(self._count(raw), self._plan, self)
        return raw

    def _count(self, raw: Iterator) -> Iterator:
        for ev in raw:
            self.pos += 1
            self.last_event = ev
            yield ev

    def __iter__(self) -> Iterator:
        if self._gen is None:
            self._gen = self._run()
        return self._gen

    def __next__(self):
        if self._gen is None:
            self._gen = self._run()
        return next(self._gen)

    def _run(self) -> Iterator:
        # The happy path is one C-level generator frame per event; the
        # retry scaffolding only runs when the source actually fails.
        # FaultyStream keeps its own counting shim (injections are keyed
        # on pos), so the inline count applies to unfaulted sources only.
        count_here = not self._faulted
        ok = SourceHealth.OK
        attempt = 0
        episode_start: float | None = None
        while not self._exhausted:
            try:
                if self._it is None:
                    self._it = self._open()
                it = self._it
                while True:
                    ev = next(it)
                    if count_here:
                        self.pos += 1
                        self.last_event = ev
                    if attempt:
                        attempt = 0
                        episode_start = None
                    if self.health is not ok:
                        self.health = ok
                    ts = getattr(ev, "ts", None)
                    if type(ts) is int:
                        self.watermark = ts
                    yield ev
            except StopIteration:
                self._exhausted = True
                return
            # EOFError / zlib.error are what a torn gzip tail raises --
            # a writer killed mid-append leaves a truncated final
            # member, and gzip reports that as EOFError ("compressed
            # file ended before the end-of-stream marker") or a zlib
            # decompression error, not as OSError.  They get the same
            # retry -> DEAD ladder: the records before the tear were
            # already delivered, and the merge continues without the
            # dead source instead of crashing the daemon.
            except (OSError, EOFError, zlib.error) as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                self._it = None
                if episode_start is None:
                    episode_start = self._clock()
                    self.episodes += 1
                self.health = SourceHealth.DEGRADED
                attempt += 1
                policy = self.policy
                out_of_attempts = attempt >= policy.max_attempts
                past_deadline = (
                    policy.deadline is not None
                    and self._clock() - episode_start >= policy.deadline)
                if out_of_attempts or past_deadline:
                    self.health = SourceHealth.DEAD
                    self._exhausted = True
                    return
                self.retries += 1
                self._sleep(policy.delay(self.name, attempt - 1))

    def describe(self) -> dict:
        return {
            "health": self.health.value,
            "pos": self.pos,
            "watermark": self.watermark,
            "retries": self.retries,
            "episodes": self.episodes,
            "last_error": self.last_error,
        }


class TailingFileSource:
    """A replayable factory that follows a growing line-oriented file.

    Calling the instance opens the file from the start and yields one
    parsed record per complete line (a trailing line without ``\\n`` is
    a write in progress and is left for the next poll).  At end of file
    it polls until the file grows, ``stop_when()`` goes true, or no
    growth is seen for ``idle_timeout`` seconds -- whichever comes
    first.  Plain text only: a gzip stream cannot be tailed mid-member.

    Rotation and truncation are handled at the poll point, where the
    path is re-stat'ed whenever the current handle hits EOF:

    * **rotation** (the path now names a different inode -- the classic
      ``logrotate`` rename-and-recreate): the old handle is closed and
      the new file is read *from offset 0*.  Events already yielded from
      the old file stay delivered exactly once; nothing in the new file
      is skipped.
    * **truncation** (same inode, ``st_size`` below the bytes already
      consumed -- copytruncate-style rewrite in place): the handle seeks
      back to 0 and parses the new content from its beginning.  Without
      the check, the stale offset would silently swallow everything the
      writer emits until the file regrows past it.

    Either way a partial unterminated line buffered from the old
    incarnation is a torn write that will never be completed; it is
    routed to ``on_error`` (or raised), never spliced onto new content.

    As a factory it slots straight into :class:`ResilientSource`, whose
    reopen-and-skip recovery then also covers tail sources.
    """

    def __init__(self, path: str, parse: Callable[[str], object], *,
                 poll_interval: float = 0.05,
                 idle_timeout: float = 5.0,
                 stop_when: Callable[[], bool] | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 on_error: Callable[[str, Exception], None] | None = None,
                 ) -> None:
        self.path = path
        self.parse = parse
        self.poll_interval = poll_interval
        self.idle_timeout = idle_timeout
        self.stop_when = stop_when
        self._sleep = sleep
        self._clock = clock
        self.on_error = on_error

    def __call__(self) -> Iterator:
        # Binary mode throughout: a text handle's tell() is an opaque
        # cookie, and detecting truncation requires comparing st_size
        # against a true byte offset.
        fh = open(self.path, "rb")
        try:
            st = os.fstat(fh.fileno())
            identity = (st.st_dev, st.st_ino)
            offset = 0          # bytes consumed from the current inode
            buffer = b""
            idle_since: float | None = None
            while True:
                chunk = fh.read(65536)
                if chunk:
                    idle_since = None
                    offset += len(chunk)
                    buffer += chunk
                    while True:
                        raw, sep, rest = buffer.partition(b"\n")
                        if not sep:
                            break
                        buffer = rest
                        if not raw:
                            continue
                        try:
                            rec = self.parse(raw.decode("utf-8"))
                        except (ValueError, IndexError, TypeError) as exc:
                            if self.on_error is None:
                                raise
                            self.on_error(raw.decode("utf-8", "replace"),
                                          exc)
                            continue
                        yield rec
                    continue
                # EOF on the current handle: did the path move on
                # without us?
                try:
                    st = os.stat(self.path)
                except OSError:
                    st = None   # mid-rotation gap; poll again
                if st is not None:
                    rotated = (st.st_dev, st.st_ino) != identity
                    shrunk = not rotated and st.st_size < offset
                    if rotated or shrunk:
                        if buffer:
                            torn = buffer.decode("utf-8", "replace")
                            buffer = b""
                            exc = ValueError(
                                "torn line abandoned by rotation"
                                if rotated else
                                "torn line abandoned by truncation")
                            if self.on_error is None:
                                raise exc
                            self.on_error(torn, exc)
                        if rotated:
                            fh.close()
                            fh = open(self.path, "rb")
                            st = os.fstat(fh.fileno())
                            identity = (st.st_dev, st.st_ino)
                        else:
                            fh.seek(0)
                        offset = 0
                        idle_since = None
                        continue
                if self.stop_when is not None and self.stop_when():
                    return
                now = self._clock()
                if idle_since is None:
                    idle_since = now
                elif now - idle_since >= self.idle_timeout:
                    return
                self._sleep(self.poll_interval)
        finally:
            fh.close()


class ReliableEventStream:
    """The fault-tolerant replacement for ``workspace_event_stream``.

    Wraps each of a workspace's three trace feeds in a
    :class:`ResilientSource`, guards every source through one shared
    :class:`~.quarantine.EventQuarantine`, and merges the surviving
    events into the usual time-ordered stream (sources listed in
    jobs-publications-accesses order, preserving the merge's
    activity-before-access tie-break).  Under a fault plan that only
    *inserts* faults, iterating this object yields exactly the clean
    ``workspace_event_stream`` sequence -- the invariant the chaos suite
    is built on.
    """

    SOURCES = (("jobs", "jobs.txt.gz", read_jobs, job_events),
               ("publications", "publications.txt.gz", read_publications,
                publication_events),
               ("accesses", "app_log.txt.gz", read_app_log, access_events))

    def __init__(self, directory: str | None = None, *,
                 sources: Iterable | None = None,
                 plan=None,
                 quarantine: EventQuarantine | None = None,
                 retry: RetryPolicy | None = None,
                 known_uids: Iterable[int] | None = None,
                 dead_letter: DeadLetterLog | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if quarantine is None:
            quarantine = EventQuarantine(dead_letter=dead_letter,
                                         known_uids=known_uids)
        self.quarantine = quarantine
        self.retry = retry or RetryPolicy()
        if sources is not None:
            # Pre-built sources (e.g. socket sources): anything with
            # name / health / episodes / describe() and iterability.
            # Listing order is the merge tie-break order, exactly as
            # for the workspace files below.
            self.sources = list(sources)
            return
        if directory is None:
            raise ValueError(
                "ReliableEventStream needs a workspace directory or "
                "explicit sources")
        self.sources = [
            ResilientSource(
                name,
                self._make_factory(os.path.join(directory, filename),
                                   reader, to_events, name),
                policy=self.retry, plan=plan, sleep=sleep, clock=clock)
            for name, filename, reader, to_events in self.SOURCES]

    def _make_factory(self, path: str, reader, to_events,
                      name: str) -> Callable[[], Iterator[StreamEvent]]:
        hook = self.quarantine.reader_hook(name)
        return lambda: to_events(reader(path, on_error=hook))

    def __iter__(self) -> Iterator[StreamEvent]:
        guarded = [self.quarantine.guard(src.name, src)
                   for src in self.sources]
        return heapq.merge(*guarded, key=lambda ev: ev.ts)

    # -- reporting -----------------------------------------------------

    def report(self) -> dict:
        sources = {src.name: src.describe() for src in self.sources}
        held = {name: info["watermark"] for name, info in sources.items()
                if info["health"] == SourceHealth.DEAD.value}
        return {
            "sources": sources,
            "held_watermarks": held,
            "quarantine": self.quarantine.summary(),
        }

    @property
    def degraded(self) -> bool:
        """True when any source is not (or was not always) healthy."""
        return any(src.health is not SourceHealth.OK or src.episodes
                   for src in self.sources)
