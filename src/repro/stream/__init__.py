"""Online retention service: streaming ingestion, incremental state,
crash-safe checkpoint/resume.

The batch pipeline (``repro.emulation``) answers "what would this policy
have done over this year of traces"; this package answers the production
question -- "run the policy *now*, continuously, over live feeds" --
while provably computing the same thing: the streaming service is pinned
bit-identical to the batch ``FastEmulator`` across the full retention
spectrum, including across a checkpoint / kill / resume cycle.
"""

from .batch import (BatchBuilder, BatchRun, EventBatch, merge_stream_items,
                    skip_stream_items)
from .checkpoint import (CHECKPOINT_FORMAT, CheckpointCorruption,
                         CheckpointManager, atomic_write_npz,
                         ingest_cursors, load_checkpoint,
                         verify_checkpoint)
from .events import (EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION, StreamEvent,
                     dataset_event_stream, merge_event_streams, skip_events,
                     workspace_event_stream)
from .reliability import (DeadLetterLog, EventQuarantine,
                          ReliableEventStream, ResilientSource, RetryPolicy,
                          SourceHealth, TailingFileSource)
from .service import OnlineRetentionService
from .state import (GrowableReplayState, IncrementalActivenessState,
                    PathCatalog)

__all__ = [
    "BatchBuilder",
    "BatchRun",
    "EventBatch",
    "merge_stream_items",
    "skip_stream_items",
    "CHECKPOINT_FORMAT",
    "CheckpointCorruption",
    "CheckpointManager",
    "atomic_write_npz",
    "ingest_cursors",
    "load_checkpoint",
    "verify_checkpoint",
    "EVENT_ACCESS",
    "EVENT_JOB",
    "EVENT_PUBLICATION",
    "StreamEvent",
    "dataset_event_stream",
    "merge_event_streams",
    "skip_events",
    "workspace_event_stream",
    "DeadLetterLog",
    "EventQuarantine",
    "ReliableEventStream",
    "ResilientSource",
    "RetryPolicy",
    "SourceHealth",
    "TailingFileSource",
    "OnlineRetentionService",
    "GrowableReplayState",
    "IncrementalActivenessState",
    "PathCatalog",
]
