"""Crash-safe, self-verifying checkpoint chains for the retention service.

A checkpoint is one compressed ``.npz`` written atomically and durably
(tmp sibling + fsync + ``os.replace`` + directory fsync): either the old
checkpoint or the new one exists, never a torn file.  Inside, a single
JSON *manifest* entry carries the scalars -- resume cursor, boundary
position, counters, config fingerprint -- and the bulk state travels as
native NumPy arrays:

* the path catalog (paths + snapshot sizes, in intern order -- pids are
  positional, so order *is* identity),
* the replay state columns (live/atime/size/owner),
* the daily metrics and group-count history,
* the current user classification (kept verbatim: it cannot be
  re-derived after resume because activeness at the *old* trigger instant
  would see newer history),
* the incremental activeness history, per activity type.

Everything round-trips exactly: ints and bools verbatim, floats through
JSON's shortest-round-trip repr or float64 arrays, sets as sorted lists.
That exactness is what lets a resumed service continue bit-identically
(pinned by ``tests/test_stream_checkpoint.py``).

Durability and verification
---------------------------
Every array carries a CRC32 *and* a SHA-256 digest (over its raw bytes,
dtype, and shape) in the manifest; :func:`load_checkpoint` recomputes
and compares them, so a torn write, a truncated npz, or silent bit rot
is reported as :class:`CheckpointCorruption` naming the failing array
and digests rather than surfacing as a numerically-wrong resume.  (The
manifest itself is covered by the npz container's zip CRC.)
:class:`CheckpointManager` keeps a *chain* of the last ``retain``
checkpoints (``checkpoint-<seq>.npz``), garbage-collects older ones,
and on load falls back to the newest checkpoint that verifies -- the
rollback that lets a daemon survive a corrupt head.

This module is pure serialization -- it does not import the service; the
service imports it.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zlib
from typing import IO, Any, Callable, Mapping

import numpy as np

from ..core.activity import ActivityCategory, ActivityType
from ..core.classification import UserClass
from ..core.report import GroupTally, RetentionReport
from ..emulation.metrics import DailyMetrics
from ..traces.io import fsync_directory

__all__ = ["CHECKPOINT_FORMAT", "SERVER_CHECKPOINT_FORMAT",
           "CheckpointCorruption",
           "atomic_write_npz", "load_checkpoint", "verify_checkpoint",
           "reports_to_jsonable", "reports_from_jsonable",
           "metrics_to_arrays", "metrics_from_arrays",
           "activeness_to_arrays", "activeness_from_arrays",
           "ingest_cursors", "CheckpointManager"]

CHECKPOINT_FORMAT = "repro-stream-checkpoint/2"

#: The multi-tenant server checkpoint: same container (atomic npz link,
#: per-array digests), different payload schema (shared arrays once,
#: per-tenant arrays under a ``t<i>__`` prefix, a ``tenants`` manifest).
SERVER_CHECKPOINT_FORMAT = "repro-server-checkpoint/1"

#: Formats this reader still accepts; /1 predates per-array digests.
_ACCEPTED_FORMATS = (CHECKPOINT_FORMAT, "repro-stream-checkpoint/1",
                     SERVER_CHECKPOINT_FORMAT)

_MANIFEST_KEY = "__manifest__"
_DIGESTS_KEY = "array_digests"

#: Stable serialization order for the four user classes.
_CLASSES = tuple(UserClass)


class CheckpointCorruption(ValueError):
    """A checkpoint failed to load or verify.

    ``array`` names the first failing array when digest verification
    caught the damage; it is ``None`` for container-level failures
    (truncated zip, missing manifest, unknown format).
    """

    def __init__(self, path: str, reason: str,
                 array: str | None = None) -> None:
        super().__init__(f"checkpoint {path}: {reason}")
        self.path = path
        self.reason = reason
        self.array = array


# ---------------------------------------------------------------------------
# atomic npz container


def _array_digest(arr: np.ndarray) -> dict:
    contiguous = np.ascontiguousarray(arr)
    raw = contiguous.tobytes()
    return {
        "dtype": contiguous.dtype.str,
        "shape": list(contiguous.shape),
        "crc32": zlib.crc32(raw),
        "sha256": hashlib.sha256(raw).hexdigest(),
    }


def atomic_write_npz(path: str, manifest: Mapping[str, Any],
                     arrays: Mapping[str, np.ndarray], *,
                     opener: Callable[[str], IO[bytes]] | None = None,
                     ) -> None:
    """Write ``arrays`` + JSON ``manifest`` to ``path`` atomically.

    The payload is fully written and fsynced to a same-directory ``.tmp``
    sibling, then renamed over ``path`` and the directory fsynced -- a
    crash at any instant leaves either the previous checkpoint or the
    complete new one, and the survivor is durable across power loss.

    The manifest is augmented with per-array CRC32/SHA-256 digests so
    readers can verify every array byte for byte.  ``opener`` replaces
    the tmp-file ``open`` -- the hook the fault-injection harness uses
    to script torn writes, ``EIO``, and mid-write kills.
    """
    if _MANIFEST_KEY in arrays:
        raise ValueError(f"array name {_MANIFEST_KEY!r} is reserved")
    manifest = dict(manifest)
    manifest[_DIGESTS_KEY] = {name: _array_digest(arr)
                              for name, arr in arrays.items()}
    payload = dict(arrays)
    payload[_MANIFEST_KEY] = np.asarray(json.dumps(manifest))
    tmp = f"{path}.tmp"
    try:
        with (opener(tmp) if opener is not None else open(tmp, "wb")) as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    fsync_directory(os.path.dirname(os.path.abspath(path)))


def load_checkpoint(path: str, verify: bool = True,
                    ) -> tuple[dict, dict[str, np.ndarray]]:
    """Read back ``(manifest, arrays)`` written by :func:`atomic_write_npz`.

    With ``verify`` (the default) every array's digest is recomputed and
    compared; any container damage or digest mismatch raises
    :class:`CheckpointCorruption` naming the failure.
    """
    import zipfile

    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files if k != _MANIFEST_KEY}
            manifest = json.loads(str(data[_MANIFEST_KEY])) \
                if _MANIFEST_KEY in data.files else None
    except (zipfile.BadZipFile, EOFError, OSError, KeyError,
            zlib.error) as exc:
        raise CheckpointCorruption(
            path, f"unreadable npz ({type(exc).__name__}: {exc})") from exc
    if not isinstance(manifest, dict):
        raise CheckpointCorruption(
            path, "not a stream checkpoint (no manifest)")
    if manifest.get("format") not in _ACCEPTED_FORMATS:
        raise CheckpointCorruption(
            path, f"unsupported checkpoint format "
                  f"{manifest.get('format')!r}")
    if verify:
        _verify_digests(path, manifest, arrays)
    return manifest, arrays


def _verify_digests(path: str, manifest: Mapping[str, Any],
                    arrays: Mapping[str, np.ndarray]) -> None:
    digests = manifest.get(_DIGESTS_KEY)
    if digests is None:
        return  # format /1: no digests recorded; container CRC only
    missing = sorted(set(digests) - set(arrays))
    if missing:
        raise CheckpointCorruption(
            path, f"array {missing[0]!r} missing from container",
            array=missing[0])
    extra = sorted(set(arrays) - set(digests))
    if extra:
        raise CheckpointCorruption(
            path, f"array {extra[0]!r} has no recorded digest",
            array=extra[0])
    for name in digests:
        expected = digests[name]
        actual = _array_digest(arrays[name])
        if actual != expected:
            raise CheckpointCorruption(
                path,
                f"digest mismatch in array {name!r}: stored "
                f"sha256={expected['sha256'][:16]}… crc32={expected['crc32']}"
                f", recomputed sha256={actual['sha256'][:16]}… "
                f"crc32={actual['crc32']}",
                array=name)


def verify_checkpoint(path: str) -> tuple[dict, dict[str, np.ndarray]]:
    """Load ``path`` with full digest verification (alias for clarity)."""
    return load_checkpoint(path, verify=True)


# ---------------------------------------------------------------------------
# reports


def reports_to_jsonable(reports: list[RetentionReport]) -> list[dict]:
    """JSON-safe encoding of a report list; exact under round-trip."""
    out = []
    for r in reports:
        out.append({
            "policy": r.policy,
            "t_c": r.t_c,
            "lifetime_days": r.lifetime_days,
            "target_bytes": r.target_bytes,
            "purged_bytes_total": r.purged_bytes_total,
            "target_met": r.target_met,
            "passes_used": r.passes_used,
            "groups": {
                str(cls.value): {
                    "purged_files": t.purged_files,
                    "purged_bytes": t.purged_bytes,
                    "retained_files": t.retained_files,
                    "retained_bytes": t.retained_bytes,
                    "users_purged": sorted(t.users_purged),
                    "users_scanned": sorted(t.users_scanned),
                } for cls, t in r.groups.items()
            },
        })
    return out


def reports_from_jsonable(data: list[dict]) -> list[RetentionReport]:
    out = []
    for d in data:
        report = RetentionReport(
            policy=d["policy"], t_c=d["t_c"],
            lifetime_days=d["lifetime_days"],
            target_bytes=d["target_bytes"],
            purged_bytes_total=d["purged_bytes_total"],
            target_met=d["target_met"], passes_used=d["passes_used"])
        for key, g in d["groups"].items():
            report.groups[UserClass(int(key))] = GroupTally(
                purged_files=g["purged_files"],
                purged_bytes=g["purged_bytes"],
                retained_files=g["retained_files"],
                retained_bytes=g["retained_bytes"],
                users_purged=set(g["users_purged"]),
                users_scanned=set(g["users_scanned"]))
        out.append(report)
    return out


# ---------------------------------------------------------------------------
# metrics


def metrics_to_arrays(metrics: DailyMetrics) -> dict[str, np.ndarray]:
    return {
        "metrics_accesses": metrics.accesses,
        "metrics_misses": metrics.misses,
        "metrics_group_misses": np.stack(
            [metrics.group_misses[cls] for cls in _CLASSES]),
    }


def metrics_from_arrays(arrays: Mapping[str, np.ndarray]) -> DailyMetrics:
    accesses = np.asarray(arrays["metrics_accesses"], dtype=np.int64)
    metrics = DailyMetrics(int(accesses.size))
    metrics.accesses[:] = accesses
    metrics.misses[:] = np.asarray(arrays["metrics_misses"], dtype=np.int64)
    stacked = np.asarray(arrays["metrics_group_misses"], dtype=np.int64)
    for i, cls in enumerate(_CLASSES):
        metrics.group_misses[cls][:] = stacked[i]
    return metrics


# ---------------------------------------------------------------------------
# activeness history


def activeness_to_arrays(state: Mapping[ActivityType,
                                        tuple[np.ndarray, np.ndarray,
                                              np.ndarray]],
                         ) -> tuple[list[dict], dict[str, np.ndarray]]:
    """Flatten a ``snapshot_state`` mapping into (type table, arrays).

    The type table keeps the mapping's iteration order, which restore
    preserves -- per-type scatter order is part of bit-identity.
    """
    table = []
    arrays: dict[str, np.ndarray] = {}
    for i, (atype, (uids, ts, imp)) in enumerate(state.items()):
        table.append({"name": atype.name, "category": atype.category.value,
                      "weight": atype.weight})
        arrays[f"act_{i}_uids"] = uids
        arrays[f"act_{i}_ts"] = ts
        arrays[f"act_{i}_imp"] = imp
    return table, arrays


def activeness_from_arrays(table: list[dict],
                           arrays: Mapping[str, np.ndarray],
                           ) -> dict[ActivityType, tuple[np.ndarray,
                                                         np.ndarray,
                                                         np.ndarray]]:
    out = {}
    for i, entry in enumerate(table):
        atype = ActivityType(entry["name"],
                             ActivityCategory(entry["category"]),
                             entry["weight"])
        out[atype] = (np.asarray(arrays[f"act_{i}_uids"], dtype=np.int64),
                      np.asarray(arrays[f"act_{i}_ts"], dtype=np.int64),
                      np.asarray(arrays[f"act_{i}_imp"], dtype=np.float64))
    return out


def ingest_cursors(manifest: Mapping[str, Any]) -> dict[str, int]:
    """Per-source producer cursors stored in a server checkpoint.

    The networked server's checkpoints carry an ``ingest`` section
    (written by the SequenceLedger via the service's
    ``ingest_snapshot`` hook) mapping each socket source to the highest
    per-source sequence number the checkpointed fold covers.  Returns
    ``{}`` for file-fed or pre-sequencing checkpoints, which resume by
    global cursor skip instead.
    """
    section = manifest.get("ingest") or {}
    seqs = section.get("source_seqs") or {}
    return {str(name): int(seq) for name, seq in seqs.items()}


# ---------------------------------------------------------------------------
# manager


class CheckpointManager:
    """Owns a verified chain of checkpoints inside a directory.

    The service hands it (manifest, arrays) payloads; each save writes a
    new ``checkpoint-<seq>.npz`` link atomically, then garbage-collects
    everything but the newest ``retain`` links.  Loading walks the chain
    newest-first and returns the first checkpoint whose digests verify,
    so a corrupt head (torn write, truncation, bit rot) rolls back to
    the newest good state instead of killing the daemon.

    ``opener`` is forwarded to :func:`atomic_write_npz` -- the fault
    plan's entry point for scripting checkpoint-write failures.
    """

    _NAME_RE = re.compile(r"^checkpoint-(\d{8})\.npz$")

    def __init__(self, directory: str, retain: int = 3,
                 opener: Callable[[str], IO[bytes]] | None = None) -> None:
        if retain < 1:
            raise ValueError("must retain at least one checkpoint")
        self.directory = directory
        self.retain = int(retain)
        self._opener = opener
        os.makedirs(directory, exist_ok=True)

    # -- chain enumeration ---------------------------------------------

    def _entries(self) -> list[tuple[int, str]]:
        entries = []
        for name in os.listdir(self.directory):
            match = self._NAME_RE.match(name)
            if match:
                entries.append((int(match.group(1)),
                                os.path.join(self.directory, name)))
        entries.sort()
        return entries

    def paths(self) -> list[str]:
        """Retained checkpoint paths, oldest first."""
        return [path for _seq, path in self._entries()]

    def latest(self) -> str | None:
        """Newest checkpoint path by sequence, *without* verification."""
        entries = self._entries()
        return entries[-1][1] if entries else None

    def latest_verified(self) -> tuple[str | None, list[tuple[str, str]]]:
        """``(path, failures)`` -- the newest checkpoint that verifies.

        Walks the chain newest-first; every checkpoint that fails
        verification is recorded as ``(path, reason)`` and skipped.
        ``path`` is ``None`` when nothing in the chain verifies (or the
        chain is empty).
        """
        failures: list[tuple[str, str]] = []
        for _seq, path in reversed(self._entries()):
            try:
                load_checkpoint(path, verify=True)
            except CheckpointCorruption as exc:
                failures.append((path, exc.reason))
                continue
            return path, failures
        return None, failures

    # -- writing -------------------------------------------------------

    def save(self, manifest: Mapping[str, Any],
             arrays: Mapping[str, np.ndarray]) -> str:
        entries = self._entries()
        seq = entries[-1][0] + 1 if entries else 1
        path = os.path.join(self.directory, f"checkpoint-{seq:08d}.npz")
        atomic_write_npz(path, manifest, arrays, opener=self._opener)
        self.gc()
        return path

    def gc(self) -> list[str]:
        """Drop all but the newest ``retain`` checkpoints; returns them."""
        entries = self._entries()
        removed = []
        for _seq, path in entries[:-self.retain]:
            try:
                os.unlink(path)
            except OSError:
                continue
            removed.append(path)
        if removed:
            fsync_directory(self.directory)
        return removed

    # -- loading -------------------------------------------------------

    def load(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Load the newest checkpoint that verifies.

        Raises :class:`FileNotFoundError` when the chain is empty and
        :class:`CheckpointCorruption` when checkpoints exist but none
        verifies (the message lists every failure).
        """
        path, failures = self.latest_verified()
        if path is None:
            if not failures:
                raise FileNotFoundError(
                    f"no checkpoint found in {self.directory}")
            detail = "; ".join(f"{p}: {reason}" for p, reason in failures)
            raise CheckpointCorruption(
                self.directory,
                f"no checkpoint in the chain verifies ({detail})")
        return load_checkpoint(path, verify=True)
