"""Crash-safe checkpoint format for the online retention service.

A checkpoint is one compressed ``.npz`` written atomically (tmp sibling +
``os.replace``): either the old checkpoint or the new one exists, never a
torn file.  Inside, a single JSON *manifest* entry carries the scalars --
resume cursor, boundary position, counters, config fingerprint -- and the
bulk state travels as native NumPy arrays:

* the path catalog (paths + snapshot sizes, in intern order -- pids are
  positional, so order *is* identity),
* the replay state columns (live/atime/size/owner),
* the daily metrics and group-count history,
* the current user classification (kept verbatim: it cannot be
  re-derived after resume because activeness at the *old* trigger instant
  would see newer history),
* the incremental activeness history, per activity type.

Everything round-trips exactly: ints and bools verbatim, floats through
JSON's shortest-round-trip repr or float64 arrays, sets as sorted lists.
That exactness is what lets a resumed service continue bit-identically
(pinned by ``tests/test_stream_checkpoint.py``).

This module is pure serialization -- it does not import the service; the
service imports it.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

import numpy as np

from ..core.activity import ActivityCategory, ActivityType
from ..core.classification import UserClass
from ..core.report import GroupTally, RetentionReport
from ..emulation.metrics import DailyMetrics

__all__ = ["CHECKPOINT_FORMAT", "atomic_write_npz", "load_checkpoint",
           "reports_to_jsonable", "reports_from_jsonable",
           "metrics_to_arrays", "metrics_from_arrays",
           "activeness_to_arrays", "activeness_from_arrays",
           "CheckpointManager"]

CHECKPOINT_FORMAT = "repro-stream-checkpoint/1"

_MANIFEST_KEY = "__manifest__"

#: Stable serialization order for the four user classes.
_CLASSES = tuple(UserClass)


# ---------------------------------------------------------------------------
# atomic npz container


def atomic_write_npz(path: str, manifest: Mapping[str, Any],
                     arrays: Mapping[str, np.ndarray]) -> None:
    """Write ``arrays`` + JSON ``manifest`` to ``path`` atomically.

    The payload is fully written and fsynced to a same-directory ``.tmp``
    sibling, then renamed over ``path`` -- a crash at any instant leaves
    either the previous checkpoint or the complete new one.
    """
    if _MANIFEST_KEY in arrays:
        raise ValueError(f"array name {_MANIFEST_KEY!r} is reserved")
    payload = dict(arrays)
    payload[_MANIFEST_KEY] = np.asarray(json.dumps(manifest))
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str) -> tuple[dict, dict[str, np.ndarray]]:
    """Read back ``(manifest, arrays)`` written by :func:`atomic_write_npz`."""
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != _MANIFEST_KEY}
        manifest = json.loads(str(data[_MANIFEST_KEY])) \
            if _MANIFEST_KEY in data.files else None
    if not isinstance(manifest, dict):
        raise ValueError(f"{path} is not a stream checkpoint (no manifest)")
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"unsupported checkpoint format "
                         f"{manifest.get('format')!r} in {path}")
    return manifest, arrays


# ---------------------------------------------------------------------------
# reports


def reports_to_jsonable(reports: list[RetentionReport]) -> list[dict]:
    """JSON-safe encoding of a report list; exact under round-trip."""
    out = []
    for r in reports:
        out.append({
            "policy": r.policy,
            "t_c": r.t_c,
            "lifetime_days": r.lifetime_days,
            "target_bytes": r.target_bytes,
            "purged_bytes_total": r.purged_bytes_total,
            "target_met": r.target_met,
            "passes_used": r.passes_used,
            "groups": {
                str(cls.value): {
                    "purged_files": t.purged_files,
                    "purged_bytes": t.purged_bytes,
                    "retained_files": t.retained_files,
                    "retained_bytes": t.retained_bytes,
                    "users_purged": sorted(t.users_purged),
                    "users_scanned": sorted(t.users_scanned),
                } for cls, t in r.groups.items()
            },
        })
    return out


def reports_from_jsonable(data: list[dict]) -> list[RetentionReport]:
    out = []
    for d in data:
        report = RetentionReport(
            policy=d["policy"], t_c=d["t_c"],
            lifetime_days=d["lifetime_days"],
            target_bytes=d["target_bytes"],
            purged_bytes_total=d["purged_bytes_total"],
            target_met=d["target_met"], passes_used=d["passes_used"])
        for key, g in d["groups"].items():
            report.groups[UserClass(int(key))] = GroupTally(
                purged_files=g["purged_files"],
                purged_bytes=g["purged_bytes"],
                retained_files=g["retained_files"],
                retained_bytes=g["retained_bytes"],
                users_purged=set(g["users_purged"]),
                users_scanned=set(g["users_scanned"]))
        out.append(report)
    return out


# ---------------------------------------------------------------------------
# metrics


def metrics_to_arrays(metrics: DailyMetrics) -> dict[str, np.ndarray]:
    return {
        "metrics_accesses": metrics.accesses,
        "metrics_misses": metrics.misses,
        "metrics_group_misses": np.stack(
            [metrics.group_misses[cls] for cls in _CLASSES]),
    }


def metrics_from_arrays(arrays: Mapping[str, np.ndarray]) -> DailyMetrics:
    accesses = np.asarray(arrays["metrics_accesses"], dtype=np.int64)
    metrics = DailyMetrics(int(accesses.size))
    metrics.accesses[:] = accesses
    metrics.misses[:] = np.asarray(arrays["metrics_misses"], dtype=np.int64)
    stacked = np.asarray(arrays["metrics_group_misses"], dtype=np.int64)
    for i, cls in enumerate(_CLASSES):
        metrics.group_misses[cls][:] = stacked[i]
    return metrics


# ---------------------------------------------------------------------------
# activeness history


def activeness_to_arrays(state: Mapping[ActivityType,
                                        tuple[np.ndarray, np.ndarray,
                                              np.ndarray]],
                         ) -> tuple[list[dict], dict[str, np.ndarray]]:
    """Flatten a ``snapshot_state`` mapping into (type table, arrays).

    The type table keeps the mapping's iteration order, which restore
    preserves -- per-type scatter order is part of bit-identity.
    """
    table = []
    arrays: dict[str, np.ndarray] = {}
    for i, (atype, (uids, ts, imp)) in enumerate(state.items()):
        table.append({"name": atype.name, "category": atype.category.value,
                      "weight": atype.weight})
        arrays[f"act_{i}_uids"] = uids
        arrays[f"act_{i}_ts"] = ts
        arrays[f"act_{i}_imp"] = imp
    return table, arrays


def activeness_from_arrays(table: list[dict],
                           arrays: Mapping[str, np.ndarray],
                           ) -> dict[ActivityType, tuple[np.ndarray,
                                                         np.ndarray,
                                                         np.ndarray]]:
    out = {}
    for i, entry in enumerate(table):
        atype = ActivityType(entry["name"],
                             ActivityCategory(entry["category"]),
                             entry["weight"])
        out[atype] = (np.asarray(arrays[f"act_{i}_uids"], dtype=np.int64),
                      np.asarray(arrays[f"act_{i}_ts"], dtype=np.int64),
                      np.asarray(arrays[f"act_{i}_imp"], dtype=np.float64))
    return out


# ---------------------------------------------------------------------------
# manager


class CheckpointManager:
    """Owns one rolling checkpoint file inside a directory.

    The service hands it (manifest, arrays) payloads; each save atomically
    replaces the previous checkpoint, so :meth:`latest` always names a
    complete, loadable snapshot (or nothing).
    """

    FILENAME = "checkpoint.npz"

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, self.FILENAME)

    def save(self, manifest: Mapping[str, Any],
             arrays: Mapping[str, np.ndarray]) -> str:
        atomic_write_npz(self.path, manifest, arrays)
        return self.path

    def latest(self) -> str | None:
        return self.path if os.path.exists(self.path) else None

    def load(self) -> tuple[dict, dict[str, np.ndarray]]:
        latest = self.latest()
        if latest is None:
            raise FileNotFoundError(
                f"no checkpoint found in {self.directory}")
        return load_checkpoint(latest)
