"""Stream-ingest benchmark: the online retention service vs. batch replay.

Measures, on one seeded dataset:

* merged-stream ingest throughput (events/sec) of the
  ``OnlineRetentionService`` end to end, per policy of the retention
  spectrum, against the batch ``FastEmulator`` wall time over the same
  trace;
* per-trigger latency (the incremental activeness evaluation plus the
  policy purge scan) and the refold fraction -- the share of user-type
  histories a trigger actually refolds, the O(delta) claim in numbers;
* a checkpoint / kill / resume cycle: wall time to checkpoint, to
  resume, and to finish from mid-trace.

Every streamed result is asserted bit-identical to the batch engine
before any number is reported, and the resumed run must equal the
uninterrupted one -- the ``--smoke`` run doubles as the CI
streaming-equivalence gate.  Results go to ``BENCH_stream_ingest.json``
at the repo root (override with ``--out``)::

    PYTHONPATH=src python benchmarks/bench_stream_ingest.py
    PYTHONPATH=src python benchmarks/bench_stream_ingest.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def assert_results_equal(streamed, batch, context):
    assert streamed.policy == batch.policy, context
    assert np.array_equal(streamed.metrics.accesses,
                          batch.metrics.accesses), context
    assert np.array_equal(streamed.metrics.misses,
                          batch.metrics.misses), context
    for cls, series in batch.metrics.group_misses.items():
        assert np.array_equal(streamed.metrics.group_misses[cls],
                              series), (context, cls)
    assert streamed.reports == batch.reports, context
    assert streamed.group_count_history == batch.group_count_history, context
    assert streamed.final_classes == batch.final_classes, context
    assert streamed.final_total_bytes == batch.final_total_bytes, context
    assert streamed.final_file_count == batch.final_file_count, context


def run_bench(n_users: int, seed: int, kill_fraction: float) -> dict:
    from repro.core import (ActiveDRPolicy, FixedLifetimePolicy,
                            JobResidencyIndex, RetentionConfig,
                            ScratchAsCachePolicy, ValueBasedPolicy)
    from repro.emulation import (EmulatorConfig, FastEmulator,
                                 compile_dataset, replay_bounds)
    from repro.stream import (CheckpointManager, OnlineRetentionService,
                              dataset_event_stream, skip_events)
    from repro.synth import TitanConfig, generate_dataset

    t0 = time.perf_counter()
    dataset = generate_dataset(TitanConfig(n_users=n_users, seed=seed))
    generate_seconds = time.perf_counter() - t0

    residency = JobResidencyIndex(dataset.jobs)
    policies = {
        "FLT": lambda cfg: FixedLifetimePolicy(cfg),
        "ActiveDR": lambda cfg: ActiveDRPolicy(cfg),
        "ValueBased": lambda cfg: ValueBasedPolicy(cfg),
        "ScratchAsCache": lambda cfg: ScratchAsCachePolicy(
            cfg, residency=residency),
    }

    compiled = compile_dataset(dataset)
    events = list(dataset_event_stream(dataset))
    n_events = len(events)
    known = [u.uid for u in dataset.users]
    start, end = replay_bounds(dataset)

    def make_service(policy_factory, **kwargs):
        config = RetentionConfig()
        return OnlineRetentionService(
            policy_factory(config), snapshot_fs=dataset.filesystem,
            replay_start=start, replay_end=end,
            activeness_params=config.activeness,
            config=EmulatorConfig(), known_uids=known, **kwargs)

    per_policy = {}
    for name, policy_factory in policies.items():
        config = RetentionConfig()
        t0 = time.perf_counter()
        batch = FastEmulator(policy_factory(config), config.activeness,
                             EmulatorConfig()).run(compiled,
                                                   known_uids=known)
        batch_seconds = time.perf_counter() - t0

        service = make_service(policy_factory)
        t0 = time.perf_counter()
        streamed = service.run(iter(events))
        stream_seconds = time.perf_counter() - t0
        assert_results_equal(streamed, batch, name)

        stats = service.stats
        per_policy[name] = {
            "batch_seconds": round(batch_seconds, 3),
            "stream_seconds": round(stream_seconds, 3),
            "events_per_sec": round(n_events / stream_seconds),
            "stream_vs_batch": round(stream_seconds / batch_seconds, 2),
            "triggers": stats["triggers"],
            "trigger_latency_ms": round(
                1e3 * stats["trigger_seconds"] / max(1, stats["triggers"]),
                3),
            "refold_fraction": round(
                stats["eval_refolded"] / max(1, stats["eval_users"]), 4),
            "bit_identical_to_batch": True,
        }

    # Reliability-layer ingest overhead: the same ActiveDR service fed
    # by the raw merged reader vs. the resilient/quarantined path, both
    # parsing the workspace from disk so the comparison is end to end.
    from repro.cli.workspace import save_workspace
    from repro.stream import ReliableEventStream
    from repro.stream.events import workspace_event_stream

    with tempfile.TemporaryDirectory() as wsdir:
        save_workspace(dataset, wsdir, n_shards=1)

        def best_of(make_events, repeats=3):
            best, result = None, None
            for _ in range(repeats):
                service = make_service(policies["ActiveDR"])
                t0 = time.perf_counter()
                result = service.run(make_events())
                elapsed = time.perf_counter() - t0
                best = elapsed if best is None else min(best, elapsed)
            return best, result

        plain_seconds, plain_result = best_of(
            lambda: workspace_event_stream(wsdir))
        reliable_streams = []

        def reliable_events():
            stream = ReliableEventStream(wsdir)
            reliable_streams.append(stream)
            return iter(stream)

        reliable_seconds, reliable_result = best_of(reliable_events)
        assert_results_equal(reliable_result, plain_result, "reliability")
        reliability_overhead = {
            "plain_seconds": round(plain_seconds, 3),
            "reliable_seconds": round(reliable_seconds, 3),
            "overhead_fraction": round(
                reliable_seconds / plain_seconds - 1.0, 4),
            "quarantined": reliable_streams[-1].quarantine.total,
            "bit_identical_to_plain": True,
        }

    # Checkpoint / kill / resume cycle under ActiveDR.
    kill_at = int(n_events * kill_fraction)
    with tempfile.TemporaryDirectory() as ckdir:
        service = make_service(policies["ActiveDR"], checkpoint_dir=ckdir,
                               checkpoint_every_days=7)
        t0 = time.perf_counter()
        interrupted = service.run(iter(events), stop_after_events=kill_at)
        first_leg_seconds = time.perf_counter() - t0
        assert interrupted is None
        checkpoints_written = service.stats["checkpoints_written"]
        checkpoint_bytes = os.path.getsize(
            CheckpointManager(ckdir).latest())

        config = RetentionConfig()
        t0 = time.perf_counter()
        resumed = OnlineRetentionService.resume(
            CheckpointManager(ckdir).latest(),
            policies["ActiveDR"](config),
            activeness_params=config.activeness, config=EmulatorConfig())
        resume_seconds = time.perf_counter() - t0
        cursor = resumed.cursor

        t0 = time.perf_counter()
        streamed = resumed.run(skip_events(iter(events), cursor))
        second_leg_seconds = time.perf_counter() - t0

    config = RetentionConfig()
    batch = FastEmulator(policies["ActiveDR"](config), config.activeness,
                         EmulatorConfig()).run(compiled, known_uids=known)
    assert_results_equal(streamed, batch, "resume")

    return {
        "benchmark": "stream_ingest",
        "dataset": {
            "n_users": n_users,
            "seed": seed,
            "snapshot_files": dataset.filesystem.file_count,
            "merged_events": n_events,
            "replay_records": compiled.n_records,
            "generate_seconds": round(generate_seconds, 3),
        },
        "per_policy": per_policy,
        "reliability_overhead": reliability_overhead,
        "checkpoint_resume": {
            "kill_after_events": kill_at,
            "resume_cursor": cursor,
            "checkpoints_written": checkpoints_written,
            "checkpoint_bytes": checkpoint_bytes,
            "first_leg_seconds": round(first_leg_seconds, 3),
            "resume_seconds": round(resume_seconds, 3),
            "second_leg_seconds": round(second_leg_seconds, 3),
            "bit_identical_to_batch": True,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=500,
                        help="synthetic user count (default: the seeded "
                             "dataset the acceptance numbers quote)")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--kill-fraction", type=float, default=0.5,
                        help="fraction of the merged stream to ingest "
                             "before the simulated crash")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_stream_ingest.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run; does not overwrite the "
                             "committed JSON unless --out is given")
    args = parser.parse_args(argv)

    if args.smoke:
        args.users = 40
        if args.out == os.path.join(REPO_ROOT, "BENCH_stream_ingest.json"):
            args.out = os.path.join(REPO_ROOT,
                                    "BENCH_stream_ingest.smoke.json")

    result = run_bench(args.users, args.seed, args.kill_fraction)
    result["smoke"] = args.smoke

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    print(f"dataset: {result['dataset']['n_users']} users, "
          f"{result['dataset']['merged_events']} merged events")
    for name, row in result["per_policy"].items():
        print(f"  {name}: {row['stream_seconds']}s stream "
              f"({row['events_per_sec']} ev/s, "
              f"{row['stream_vs_batch']}x batch) "
              f"trigger {row['trigger_latency_ms']}ms, "
              f"refold {100 * row['refold_fraction']:.1f}%")
    rel = result["reliability_overhead"]
    print(f"  reliability layer: {rel['plain_seconds']}s plain vs "
          f"{rel['reliable_seconds']}s guarded "
          f"({100 * rel['overhead_fraction']:+.1f}%), "
          f"{rel['quarantined']} quarantined")
    ck = result["checkpoint_resume"]
    print(f"  kill/resume: cursor {ck['resume_cursor']} "
          f"of {result['dataset']['merged_events']}, "
          f"checkpoint {ck['checkpoint_bytes']} B, "
          f"resume {ck['resume_seconds']}s, bit-identical")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
