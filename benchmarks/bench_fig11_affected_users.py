"""Fig. 11 -- number of users affected by file purge, per group.

Paper: across all lifetimes, far fewer active users lose files under
ActiveDR; e.g. at 7-day periods fewer than 60 both-active users are
affected vs over 700 under FLT, and "up to 95 % of active users are
exempt" from purge-induced misses.

The bench prints affected-user counts per group and lifetime for both
policies (same-snapshot, same-target runs) and checks that ActiveDR
touches no more active users than FLT.  The benchmark times the
affected-user aggregation.
"""

from repro.analysis import format_table
from repro.core import UserClass
from repro.emulation import ACTIVEDR, FLT

from conftest import SWEEP_LIFETIMES, write_result

GROUPS = (UserClass.BOTH_ACTIVE, UserClass.OPERATION_ACTIVE_ONLY,
          UserClass.OUTCOME_ACTIVE_ONLY, UserClass.BOTH_INACTIVE)


def test_fig11_affected_users(benchmark, snapshot_reports):
    def aggregate():
        out = {}
        for lifetime in SWEEP_LIFETIMES:
            reports = snapshot_reports[lifetime]
            out[lifetime] = {
                policy: {g: reports[policy].affected_users(g)
                         for g in GROUPS}
                for policy in (FLT, ACTIVEDR)}
        return out

    table = benchmark(aggregate)

    rows = []
    for lifetime in SWEEP_LIFETIMES:
        for group in GROUPS:
            rows.append([f"{lifetime:.0f}d", group.label,
                         table[lifetime][FLT][group],
                         table[lifetime][ACTIVEDR][group]])
    write_result("fig11_affected_users", format_table(
        ["lifetime", "group", "FLT users affected",
         "ActiveDR users affected"],
        rows,
        title="Fig. 11 -- users affected by purge (paper: ActiveDR "
              "protects nearly all active users)"))

    for lifetime in SWEEP_LIFETIMES:
        for group in GROUPS[:3]:
            assert (table[lifetime][ACTIVEDR][group]
                    <= table[lifetime][FLT][group]), (lifetime, group)
