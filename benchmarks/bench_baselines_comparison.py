"""Related-work baseline comparison (section 2's retention spectrum).

The paper situates ActiveDR against three alternatives: the dominant FLT
strategy, the value-based family ("no consensus on the definition of
data value"), and scratch-as-a-cache ("may cause frequent loading of
files ... time-consuming").  The paper evaluates only FLT; this bench
runs the *whole spectrum* over the same replay, quantifying the paper's
qualitative critique:

* scratch-as-a-cache is catastrophic on misses (everything of an idle
  user vanishes weekly) -- quantifying the paper's critique;
* ActiveDR beats FLT;
* value-based with a recency-dominant value function behaves like
  "global LRU down to the target" -- a strong miss-minimizer that can
  even edge out ActiveDR on some workloads.  The paper's objection to
  value-based retention is *practicality* (no consensus value
  definition, per-site tuning), not raw miss performance, and this bench
  makes that distinction measurable.
"""

from repro.analysis import format_bytes, format_table, percent
from repro.core import (
    ActiveDRPolicy,
    FixedLifetimePolicy,
    JobResidencyIndex,
    RetentionConfig,
    ScratchAsCachePolicy,
    ValueBasedPolicy,
)
from repro.emulation import Emulator

from conftest import write_result


def test_baseline_spectrum(benchmark, small_dataset):
    ds = small_dataset
    config = RetentionConfig()
    known = [u.uid for u in ds.users]
    residency = JobResidencyIndex(ds.jobs)

    policies = [
        FixedLifetimePolicy(config),
        ValueBasedPolicy(config),
        ScratchAsCachePolicy(config, residency=residency),
        ActiveDRPolicy(config),
    ]

    def replay(policy):
        emulator = Emulator(policy, config.activeness)
        fs = ds.fresh_filesystem()
        return emulator.run(fs, ds.accesses, ds.jobs, ds.publications,
                            ds.config.replay_start, ds.config.replay_end,
                            known_uids=known)

    results = {}
    for i, policy in enumerate(policies):
        if i == 0:
            results[policy.name] = benchmark.pedantic(
                replay, args=(policy,), rounds=1, iterations=1)
        else:
            results[policy.name] = replay(policy)

    flt_misses = results["FLT"].metrics.total_misses
    rows = []
    for name in ("ScratchAsCache", "FLT", "ValueBased", "ActiveDR"):
        r = results[name]
        misses = r.metrics.total_misses
        rows.append([
            name, misses,
            percent(1.0 - misses / flt_misses) if flt_misses else "n/a",
            format_bytes(r.final_total_bytes),
        ])
    write_result("baselines_comparison", format_table(
        ["policy", "total misses", "reduction vs FLT", "bytes retained"],
        rows,
        title="Related-work retention spectrum over one replay year"))

    # The section 2 critique, quantified.
    assert (results["ScratchAsCache"].metrics.total_misses
            > results["FLT"].metrics.total_misses)
    assert (results["ActiveDR"].metrics.total_misses
            < results["FLT"].metrics.total_misses)
    assert (results["ValueBased"].metrics.total_misses
            < results["FLT"].metrics.total_misses)
