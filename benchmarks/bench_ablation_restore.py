"""Ablation -- restore-on-miss (DESIGN.md decision 5).

The paper counts a miss and moves on; a real user would re-transmit the
file, which both suppresses repeat misses and adds re-load traffic.  The
bench replays the year with and without restoration and reports how the
policy comparison shifts (the ActiveDR advantage should survive either
accounting).
"""

from repro.analysis import format_table, percent
from repro.emulation import (
    ACTIVEDR,
    FLT,
    ComparisonRunner,
    EmulatorConfig,
)

from conftest import write_result


def test_ablation_restore_on_miss(benchmark, small_dataset):
    ds = small_dataset

    def run(restore):
        runner = ComparisonRunner(
            ds, emulator_config=EmulatorConfig(restore_on_miss=restore))
        return runner.run()

    plain = benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)
    restoring = run(True)

    rows = []
    for label, result in (("paper-faithful (no restore)", plain),
                          ("restore on miss", restoring)):
        rows.append([
            label,
            result.total_misses(FLT),
            result.total_misses(ACTIVEDR),
            percent(result.miss_reduction(), 1),
        ])
    write_result("ablation_restore", format_table(
        ["variant", "FLT misses", "ActiveDR misses", "reduction"],
        rows, title="Ablation -- miss accounting with/without restoration"))

    # Restoration can only reduce misses (repeat misses are suppressed).
    assert restoring.total_misses(FLT) <= plain.total_misses(FLT)
    assert restoring.total_misses(ACTIVEDR) <= plain.total_misses(ACTIVEDR)
    # The headline direction survives both accountings.
    assert plain.miss_reduction() > 0.0
    assert restoring.miss_reduction() > 0.0
