"""Ablation -- the both-inactive initial-lifetime floor (DESIGN.md 2).

Section 3.4 protects both-inactive and new users with the *initial* file
lifetime on their first scan.  Disabling the zero-rank fallback
(``zero_rank_as_initial=False``) lets collapsed ranks zero out Eq. 7, so
partially-active users with one collapsed category lose everything the
moment their group is scanned.  The bench replays the year both ways.
"""

from repro.analysis import format_table, percent
from repro.core import RetentionConfig
from repro.emulation import ACTIVEDR, FLT, ComparisonRunner

from conftest import write_result


def test_ablation_zero_rank_floor(benchmark, small_dataset):
    ds = small_dataset

    def run(zero_rank_as_initial):
        config = RetentionConfig(zero_rank_as_initial=zero_rank_as_initial)
        return ComparisonRunner(ds, config).run()

    with_floor = benchmark.pedantic(run, args=(True,), rounds=1,
                                    iterations=1)
    without_floor = run(False)

    rows = []
    for label, result in (("with initial-lifetime fallback", with_floor),
                          ("without (raw Eq. 7 zeros)", without_floor)):
        adr = result[ACTIVEDR]
        rows.append([
            label,
            result.total_misses(FLT),
            result.total_misses(ACTIVEDR),
            percent(result.miss_reduction(), 1),
            adr.final_file_count,
        ])
    # Synthetic demonstration: the population above rarely contains a
    # partially-collapsed active user, so the replay numbers can tie.  The
    # hazard the fallback guards against is concrete, though: an
    # op-active user whose outcome rank collapsed to exactly 0 would get
    # a zero Eq. 7 lifetime and lose *fresh* files the moment their group
    # is scanned under a demanding target.
    import math
    from repro.core import ActiveDRPolicy, UserActiveness
    from repro.vfs import DAY_SECONDS, FileMeta, VirtualFileSystem

    now = ds.config.replay_start
    outcome = {}
    for label, fallback in (("with fallback", True), ("without", False)):
        fs = VirtualFileSystem()
        atime = now - 5 * DAY_SECONDS
        fs.add_file("/s/active/fresh.h5",
                    FileMeta(1000, atime, atime, atime, 1))
        fs.capacity_bytes = 100  # target far below usage: must purge hard
        ua = UserActiveness(1, log_op=2.0, log_oc=-math.inf,
                            has_op=True, has_oc=True)
        cfg = RetentionConfig(zero_rank_as_initial=fallback)
        ActiveDRPolicy(cfg).run(fs, now, activeness={1: ua})
        outcome[label] = "/s/active/fresh.h5" in fs
    rows.append(["(synthetic op-active, collapsed Phi_oc)",
                 "-", "-",
                 f"file survives: {outcome['with fallback']}",
                 f"without: {outcome['without']}"])

    write_result("ablation_floor", format_table(
        ["variant", "FLT misses", "ActiveDR misses", "reduction",
         "ActiveDR files retained"],
        rows,
        title="Ablation -- section 3.4 initial-lifetime protection"))

    # The fallback should never hurt: at least as many files survive.
    assert (with_floor[ACTIVEDR].final_file_count
            >= without_floor[ACTIVEDR].final_file_count)
    assert outcome["with fallback"] is True
    assert outcome["without"] is False
