"""Fig. 1 -- file misses introduced by the FLT retention method.

Paper: a 2016 replay under 90-day FLT with a 7-day trigger shows daily
miss ratios fluctuating around 5 % (0 % .. 95.66 %), with >120 days in the
1-5 % band and 5-30 % bands covering 99 days; days above 5 % total 138.

This bench regenerates both panels: the daily miss-ratio series (monthly
summarized) and the days-per-miss-ratio-range histogram, for the FLT run.
The benchmark times the histogram computation over the year of ratios.
"""

import numpy as np

from repro.analysis import (
    days_above,
    days_per_range,
    format_table,
    percent,
    range_labels,
)
from repro.emulation import FLT

from conftest import write_result


def test_fig1_flt_miss_distribution(benchmark, comparison):
    metrics = comparison[FLT].metrics
    ratios = metrics.miss_ratio()

    counts = benchmark(days_per_range, ratios)

    monthly = []
    for month in range(0, metrics.n_days, 30):
        window = ratios[month:month + 30]
        monthly.append(float(window.mean()) if window.size else 0.0)

    lines = [format_table(
        ["miss-ratio range", "days"],
        list(zip(range_labels(), counts)),
        title="Fig. 1 -- FLT daily file-miss ratio, days per range")]
    lines.append("")
    lines.append(format_table(
        ["month", "mean daily miss ratio"],
        [[i + 1, percent(v)] for i, v in enumerate(monthly)],
        title="Fig. 1 (left panel) -- monthly mean of daily miss ratio"))
    lines.append("")
    lines.append(f"days with miss ratio > 5%: {days_above(ratios, 0.05)} "
                 f"(paper: 138 of 366)")
    lines.append(f"max daily miss ratio: {percent(float(ratios.max()))} "
                 f"(paper: 95.66%)")
    write_result("fig01_flt_misses", "\n".join(lines))

    assert sum(counts) <= metrics.n_days
    assert ratios.max() <= 1.0
