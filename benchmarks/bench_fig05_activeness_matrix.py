"""Fig. 5 -- the user-activeness matrix at 7/30/60/90-day period lengths.

Paper (13,813 users): both-active 0.4-0.9 %, operation-active-only rising
1.1 % -> 3.5 % with period length, outcome-active-only falling
3.4 % -> 2.9 %, both-inactive 92.7-95 %.

The bench evaluates every user's (Phi_op, Phi_oc) at the end of the replay
year for each period length and prints the quadrant percentages.  Expected
shape at our scale: both-inactive dominates (>90 %), and the active share
grows with the period length (the paper's op-active trend).  The 7-day
point undershoots the paper because our synthetic newcomer influx is
thinner than Titan's real account churn (see EXPERIMENTS.md).

The benchmark times one full-population activeness evaluation.
"""

from repro.analysis import format_table, percent
from repro.core import (
    ActivenessEvaluator,
    ActivenessParams,
    UserClass,
    classify_all,
    group_counts,
)

from conftest import write_result

PERIODS = (7, 30, 60, 90)


def test_fig5_activeness_matrix(benchmark, dataset, ledger):
    t_c = dataset.config.replay_end - 1
    clipped = ledger.until(t_c)
    known = [u.uid for u in dataset.users]

    evaluator90 = ActivenessEvaluator(ActivenessParams(period_days=90))
    benchmark(evaluator90.evaluate, clipped, t_c, known)

    rows = []
    share = {}
    for period in PERIODS:
        evaluator = ActivenessEvaluator(ActivenessParams(period_days=period))
        activeness = evaluator.evaluate(clipped, t_c, known_uids=known)
        counts = group_counts(classify_all(activeness))
        total = sum(counts.values())
        share[period] = {cls: counts[cls] / total for cls in UserClass}
        rows.append([f"{period} days"]
                    + [f"{counts[cls]} ({percent(share[period][cls], 1)})"
                       for cls in (UserClass.BOTH_ACTIVE,
                                   UserClass.OPERATION_ACTIVE_ONLY,
                                   UserClass.OUTCOME_ACTIVE_ONLY,
                                   UserClass.BOTH_INACTIVE)])
    write_result("fig05_activeness_matrix", format_table(
        ["period", "G(1) both active", "G(2) op only", "G(3) oc only",
         "G(4) both inactive"],
        rows,
        title=("Fig. 5 -- activeness matrix (paper: 0.4-0.9% / 1.1-3.5% / "
               "2.9-3.4% / 92.7-95%)")))

    for period in PERIODS:
        assert share[period][UserClass.BOTH_INACTIVE] > 0.80
    active = lambda p: (share[p][UserClass.BOTH_ACTIVE]
                        + share[p][UserClass.OPERATION_ACTIVE_ONLY])
    assert active(90) >= active(7)  # paper's op-active growth trend
