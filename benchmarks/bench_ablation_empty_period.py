"""Ablation -- the Eq. (5) empty-period treatment (DESIGN.md decision 1).

A period with no activity has b = 0, collapsing the activeness product.
``zero`` is the faithful reading and gives the paper's extreme
both-inactive skew; ``skip`` ignores empty periods (nearly everyone with
any history ranks active); ``epsilon`` keeps a total order but still
collapses classification.  The bench quantifies all three on the same
population and replays the year under each to show the retention impact.
"""

from repro.analysis import format_table, percent
from repro.core import (
    ActivenessEvaluator,
    ActivenessParams,
    RetentionConfig,
    UserClass,
    classify_all,
    group_counts,
)
from repro.emulation import ACTIVEDR, FLT, ComparisonRunner

from conftest import write_result

POLICIES = ("zero", "skip", "epsilon")


def test_ablation_empty_period(benchmark, small_dataset, ledger):
    ds = small_dataset
    t_c = ds.config.replay_end - 1
    known = [u.uid for u in ds.users]

    # Classification under each policy (ledger is from the big dataset's
    # traces; rebuild from the small one's for consistency).
    from repro.core import (ActivityLedger, JOB_SUBMISSION, PUBLICATION,
                            activities_from_jobs,
                            activities_from_publications)
    led = ActivityLedger()
    led.extend(JOB_SUBMISSION, activities_from_jobs(ds.jobs))
    led.extend(PUBLICATION, activities_from_publications(ds.publications))
    led = led.until(t_c)

    def classify_zero():
        ev = ActivenessEvaluator(ActivenessParams(empty_period="zero"))
        return classify_all(ev.evaluate(led, t_c, known_uids=known))

    benchmark(classify_zero)

    rows, reductions = [], {}
    for policy in POLICIES:
        params = ActivenessParams(period_days=7, empty_period=policy)
        ev = ActivenessEvaluator(params)
        counts = group_counts(classify_all(ev.evaluate(led, t_c,
                                                       known_uids=known)))
        total = sum(counts.values())
        config = RetentionConfig(activeness=params)
        result = ComparisonRunner(ds, config).run()
        reductions[policy] = result.miss_reduction()
        rows.append([
            policy,
            percent(counts[UserClass.BOTH_INACTIVE] / total, 1),
            percent((counts[UserClass.BOTH_ACTIVE]
                     + counts[UserClass.OPERATION_ACTIVE_ONLY]
                     + counts[UserClass.OUTCOME_ACTIVE_ONLY]) / total, 1),
            result.total_misses(FLT),
            result.total_misses(ACTIVEDR),
            percent(result.miss_reduction(), 1),
        ])
    write_result("ablation_empty_period", format_table(
        ["empty-period policy", "both-inactive share", "active share",
         "FLT misses", "ActiveDR misses", "reduction"],
        rows,
        title="Ablation -- Eq. 5 empty-period treatment "
              "(paper shape requires the faithful 'zero')"))

    # The faithful 'zero' policy must reproduce the paper's >90 % inactive
    # skew; 'skip' must not (that is exactly why it is non-faithful).
    zero_row = rows[0]
    skip_row = rows[1]
    assert float(zero_row[1].rstrip("%")) > 85.0
    assert float(skip_row[1].rstrip("%")) < float(zero_row[1].rstrip("%"))
