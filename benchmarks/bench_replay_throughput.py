"""Replay-throughput benchmark: columnar fast engine vs. reference.

First entry in the perf trajectory.  Measures, on one seeded dataset:

* the paired (FLT + ActiveDR) year replay under the reference per-record
  ``Emulator`` and under the columnar ``FastEmulator`` (records/sec and
  speedup, with trace-compile time reported separately);
* each policy of the full retention spectrum (FLT, ActiveDR, ValueBased,
  ScratchAsCache) replayed standalone under both engines -- per-policy
  rec/s, speedup, and an engine-equivalence assert per policy;
* the lifetime sweep run serially vs. farmed over ``run_spmd`` worker
  processes.

Both engines are asserted to produce identical miss totals and retention
reports before any number is reported -- the ``--smoke`` run doubles as
the CI equivalence gate for the whole spectrum.  Results go to
``BENCH_replay_throughput.json`` at the repo root (override with
``--out``)::

    PYTHONPATH=src python benchmarks/bench_replay_throughput.py
    PYTHONPATH=src python benchmarks/bench_replay_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_bench(n_users: int, seed: int, lifetimes: tuple[float, ...],
              n_ranks: int) -> dict:
    from repro.core import JobResidencyIndex
    from repro.emulation import (SPECTRUM, ComparisonRunner, compile_dataset,
                                 run_lifetime_sweep)
    from repro.synth import TitanConfig, generate_dataset

    t0 = time.perf_counter()
    dataset = generate_dataset(TitanConfig(n_users=n_users, seed=seed))
    generate_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = compile_dataset(dataset)
    compile_seconds = time.perf_counter() - t0
    # A paired replay pushes every in-window record through both policies.
    paired_records = 2 * compiled.n_records

    t0 = time.perf_counter()
    reference = ComparisonRunner(dataset, engine="reference").run()
    reference_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = ComparisonRunner(dataset, engine="fast", compiled=compiled).run()
    fast_seconds = time.perf_counter() - t0

    for name in reference.results:
        ref_m = reference.results[name].metrics
        fast_m = fast.results[name].metrics
        assert fast_m.total_misses == ref_m.total_misses, name
        assert fast_m.total_accesses == ref_m.total_accesses, name
        assert (fast.results[name].reports
                == reference.results[name].reports), name

    # Full-spectrum standalone replays: one policy at a time through each
    # engine, asserting bit-identical results per policy.
    residency = JobResidencyIndex(dataset.jobs)
    spectrum = {}
    for name in SPECTRUM:
        t0 = time.perf_counter()
        ref_one = ComparisonRunner(dataset, engine="reference",
                                   policies=(name,),
                                   residency=residency).run()
        ref_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        fast_one = ComparisonRunner(dataset, engine="fast",
                                    compiled=compiled, policies=(name,),
                                    residency=residency).run()
        one_seconds = time.perf_counter() - t0

        ref_r, fast_r = ref_one.results[name], fast_one.results[name]
        assert fast_r.metrics.total_misses == ref_r.metrics.total_misses, name
        assert (fast_r.metrics.total_accesses
                == ref_r.metrics.total_accesses), name
        assert fast_r.reports == ref_r.reports, name
        speedup = ref_seconds / one_seconds
        spectrum[name] = {
            "reference": {
                "seconds": round(ref_seconds, 3),
                "records_per_sec": round(compiled.n_records / ref_seconds),
            },
            "fast": {
                "seconds": round(one_seconds, 3),
                "records_per_sec": round(compiled.n_records / one_seconds),
            },
            "speedup": round(speedup, 2),
            "meets_4x": speedup >= 4.0,
        }

    t0 = time.perf_counter()
    serial = run_lifetime_sweep(dataset, lifetimes, engine="fast",
                                compiled=compiled)
    sweep_serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_lifetime_sweep(dataset, lifetimes, engine="fast",
                                  compiled=compiled, n_ranks=n_ranks)
    sweep_parallel_seconds = time.perf_counter() - t0

    for lifetime in lifetimes:
        assert (parallel[lifetime].total_misses("ActiveDR")
                == serial[lifetime].total_misses("ActiveDR")), lifetime

    replay_speedup = reference_seconds / fast_seconds
    return {
        "benchmark": "replay_throughput",
        "dataset": {
            "n_users": n_users,
            "seed": seed,
            "snapshot_files": dataset.filesystem.file_count,
            "replay_records": compiled.n_records,
            "replay_days": compiled.index.n_days,
            "generate_seconds": round(generate_seconds, 3),
        },
        "paired_replay": {
            "records_replayed": paired_records,
            "reference": {
                "seconds": round(reference_seconds, 3),
                "records_per_sec": round(paired_records / reference_seconds),
            },
            "fast": {
                "compile_seconds": round(compile_seconds, 3),
                "seconds": round(fast_seconds, 3),
                "records_per_sec": round(paired_records / fast_seconds),
            },
            "speedup": round(replay_speedup, 2),
            "meets_5x": replay_speedup >= 5.0,
        },
        "policy_spectrum": spectrum,
        "lifetime_sweep": {
            "lifetimes": list(lifetimes),
            "engine": "fast",
            "serial_seconds": round(sweep_serial_seconds, 3),
            "parallel_seconds": round(sweep_parallel_seconds, 3),
            "n_ranks": n_ranks,
            "parallel_speedup": round(
                sweep_serial_seconds / sweep_parallel_seconds, 2),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=500,
                        help="synthetic user count (default: the seeded "
                             "dataset the acceptance numbers quote)")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--lifetimes", default="7,30,60,90")
    parser.add_argument("--ranks", type=int,
                        default=min(4, os.cpu_count() or 1))
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_replay_throughput.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run; does not overwrite the "
                             "committed JSON unless --out is given")
    args = parser.parse_args(argv)

    if args.smoke:
        args.users = 40
        args.lifetimes = "30,90"
        if args.out == os.path.join(REPO_ROOT,
                                    "BENCH_replay_throughput.json"):
            args.out = os.path.join(REPO_ROOT,
                                    "BENCH_replay_throughput.smoke.json")

    lifetimes = tuple(float(x) for x in args.lifetimes.split(",") if x)
    result = run_bench(args.users, args.seed, lifetimes, max(1, args.ranks))
    result["smoke"] = args.smoke

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    replay = result["paired_replay"]
    print(f"dataset: {result['dataset']['n_users']} users, "
          f"{result['dataset']['replay_records']} in-window records")
    print(f"reference: {replay['reference']['seconds']}s "
          f"({replay['reference']['records_per_sec']} rec/s)  "
          f"fast: {replay['fast']['seconds']}s "
          f"({replay['fast']['records_per_sec']} rec/s)  "
          f"speedup {replay['speedup']}x "
          f"(compile {replay['fast']['compile_seconds']}s)")
    for name, row in result["policy_spectrum"].items():
        print(f"  {name}: reference {row['reference']['seconds']}s vs "
              f"fast {row['fast']['seconds']}s "
              f"({row['fast']['records_per_sec']} rec/s, "
              f"speedup {row['speedup']}x)")
    sweep = result["lifetime_sweep"]
    print(f"sweep over {sweep['lifetimes']}: serial "
          f"{sweep['serial_seconds']}s vs {sweep['n_ranks']} ranks "
          f"{sweep['parallel_seconds']}s "
          f"({sweep['parallel_speedup']}x)")
    print(f"wrote {args.out}")
    spectrum_ok = all(row["meets_4x"]
                      for row in result["policy_spectrum"].values())
    return 0 if (replay["meets_5x"] and spectrum_ok) or result["smoke"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
