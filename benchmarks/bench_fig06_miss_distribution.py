"""Fig. 6 -- FLT vs ActiveDR days-per-miss-ratio-range.

Paper: ActiveDR cuts days in the 1-5 % band by ~10 %, roughly halves the
5-10 % band, and reduces days with >5 % misses from 138 to 95 (-31 %).

The bench regenerates the paired histogram from the shared year replay
and checks the headline direction (ActiveDR has no more >5 % days than
FLT).  The benchmark times the paired histogram computation.
"""

from repro.analysis import days_above, days_per_range, format_table, range_labels
from repro.emulation import ACTIVEDR, FLT

from conftest import write_result


def test_fig6_miss_ratio_histogram(benchmark, comparison):
    flt_ratios = comparison[FLT].metrics.miss_ratio()
    adr_ratios = comparison[ACTIVEDR].metrics.miss_ratio()

    def both():
        return days_per_range(flt_ratios), days_per_range(adr_ratios)

    flt_counts, adr_counts = benchmark(both)

    rows = [[label, f, a] for label, f, a in
            zip(range_labels(), flt_counts, adr_counts)]
    flt_over5 = days_above(flt_ratios, 0.05)
    adr_over5 = days_above(adr_ratios, 0.05)
    # Our synthetic workload's baseline daily ratios run higher than the
    # paper's (EXPERIMENTS.md), so the distribution shift shows up at a
    # higher threshold; report both.
    flt_over30 = days_above(flt_ratios, 0.30)
    adr_over30 = days_above(adr_ratios, 0.30)
    lines = [format_table(
        ["miss-ratio range", "FLT days", "ActiveDR days"], rows,
        title="Fig. 6 -- file-miss-ratio distribution by number of days")]
    lines.append("")
    lines.append(f"days > 5% misses:  FLT={flt_over5}  ActiveDR={adr_over5} "
                 f"(paper: 138 -> 95, a 31% reduction)")
    lines.append(f"days > 30% misses: FLT={flt_over30}  "
                 f"ActiveDR={adr_over30} -- the band where our replay's "
                 f"distribution shifts")
    write_result("fig06_miss_distribution", "\n".join(lines))

    assert adr_over5 <= flt_over5
    assert adr_over30 < flt_over30
    assert comparison.total_misses(ACTIVEDR) < comparison.total_misses(FLT)
