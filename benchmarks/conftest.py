"""Shared benchmark fixtures.

Every bench regenerates one paper table/figure from the same session-scoped
synthetic Titan dataset (scaled down from 13,813 users / 935 M files to
1,200 users / ~10^5 files so the suite finishes in minutes) and writes its
rows to ``results/<name>.txt`` in addition to printing them.

The expensive artifacts -- the paired FLT/ActiveDR year replay and the
lifetime sweep -- are computed once and shared across benches.
"""

from __future__ import annotations

import os

import pytest

from repro.core import (
    ActivenessEvaluator,
    ActivityLedger,
    JOB_SUBMISSION,
    PUBLICATION,
    activities_from_jobs,
    activities_from_publications,
)
from repro.emulation import ComparisonRunner, single_snapshot_comparison
from repro.synth import TitanConfig, generate_dataset

BENCH_USERS = 1_200
BENCH_SEED = 2_021
SWEEP_LIFETIMES = (7.0, 30.0, 60.0, 90.0)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


def write_result(name: str, text: str) -> None:
    """Print a bench artifact and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print(f"\n{text}\n[written to {os.path.relpath(path)}]")


@pytest.fixture(scope="session")
def dataset():
    return generate_dataset(TitanConfig(n_users=BENCH_USERS,
                                        seed=BENCH_SEED))


@pytest.fixture(scope="session")
def small_dataset():
    """A cheaper dataset for ablation benches that need extra replays."""
    return generate_dataset(TitanConfig(n_users=300, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def ledger(dataset):
    """The full activity ledger (jobs + publications)."""
    led = ActivityLedger()
    led.extend(JOB_SUBMISSION, activities_from_jobs(dataset.jobs))
    led.extend(PUBLICATION,
               activities_from_publications(dataset.publications))
    return led


@pytest.fixture(scope="session")
def comparison(dataset):
    """The paired 90-day-lifetime year replay behind Figs. 6-8."""
    return ComparisonRunner(dataset).run()


@pytest.fixture(scope="session")
def snapshot_reports(dataset):
    """One-shot same-snapshot retention per lifetime, behind Figs. 9-11.

    Both policies scan an identical mid-year snapshot (the paper's
    "last weekly metadata snapshot we have", Aug 23) under the same 50 %
    purge target; FLT is target-enforced here, unlike the Figs. 6-8 miss
    replay where it is the classic unconditional daemon (EXPERIMENTS.md).
    """
    return single_snapshot_comparison(dataset, lifetimes=SWEEP_LIFETIMES)
