#!/usr/bin/env python3
"""Sharded-fleet scaling benchmark -> BENCH_sharded.json.

Generates a 100k-user workspace with the chunked streaming generator,
replays it over the v2 wire protocol into (a) one single-process server
and (b) consistent-hash fleets of 2 and 4 shard workers, and records:

* end-to-end events/s per shard count (publish start until every
  worker's merge cursor stops advancing),
* per-shard TARE tails -- trigger-latency p50/p95/p99 and daily-miss
  tails -- scraped live from the scatter/gather admin plane,
* a bit-identity gate: each fleet's final tenant summary must match the
  single-process run byte for byte.

The ingest socket is held open after the workspace publish finishes by
granting the ``accesses`` source a second producer slot
(``--expect-producers accesses=2``); the admin plane is scraped while
the fleet is still live, then an empty closing producer releases the
source and the servers finalize.

Trace density is leaned (fewer files/jobs/accesses per user than the
paper-shaped defaults) so 100k users replay in minutes on one box; the
knobs are recorded in the output.  ``--smoke`` runs a 2k-user variant
for CI.

Usage:  PYTHONPATH=src python benchmarks/bench_sharded.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.server import admin_request, publish_events, publish_workspace  # noqa: E402
from repro.synth import TitanConfig, generate_workspace_streamed  # noqa: E402
from repro.synth.apps import AccessTraceConfig  # noqa: E402
from repro.synth.files import FileTreeConfig  # noqa: E402
from repro.synth.jobs import JobTraceConfig  # noqa: E402

DAY = 86_400
SUMMARY_MARKER = "=== tenant"

# Leaned trace density: the *population* carries the sharding cost
# (ring placement, per-user state, snapshot volume), so keep the user
# count at paper scale but thin the per-user event volume to what one
# box replays in minutes.
JOB_HISTORY_DAYS = 180          # scheduler log before the replay year
ACCESSES_PER_SESSION = 2.0
MAX_FILES_PER_USER = 12


def log(msg: str) -> None:
    print(f"[bench_sharded] {msg}", flush=True)


def lean_config(n_users: int, seed: int) -> TitanConfig:
    base = TitanConfig(n_users=n_users, seed=seed)
    return TitanConfig(
        n_users=n_users, seed=seed,
        files=FileTreeConfig(snapshot_ts=base.snapshot_ts,
                             max_files_per_user=MAX_FILES_PER_USER),
        jobs=JobTraceConfig(trace_start=base.replay_start
                            - JOB_HISTORY_DAYS * DAY,
                            trace_end=base.replay_end),
        accesses=AccessTraceConfig(replay_start=base.replay_start,
                                   replay_end=base.replay_end,
                                   accesses_per_session_mean=
                                   ACCESSES_PER_SESSION))


def wait_healthy(admin: str, deadline: float,
                 proc: subprocess.Popen) -> None:
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited during startup (rc={proc.returncode})")
        try:
            resp = admin_request(admin, {"cmd": "health"}, timeout=10.0)
        except Exception:
            time.sleep(0.5)
            continue
        if resp.get("ok") and resp.get("healthy"):
            return
        time.sleep(0.5)
    raise TimeoutError(f"server at {admin} never became healthy")


def wait_cursor_stable(admin: str, deadline: float) -> dict:
    """Poll admin metrics until the merge cursor stops advancing.

    The publish returning only means the ingest front acked every row;
    in a fleet the workers may still be draining their lanes.  Two
    identical cursor readings half a second apart mark the drain done.
    Returns the final metrics response.
    """
    prev = -1
    while time.monotonic() < deadline:
        metrics = admin_request(admin, {"cmd": "metrics"}, timeout=60.0)
        cursor = int(metrics.get("cursor", 0))
        if cursor == prev and cursor > 0:
            return metrics
        prev = cursor
        time.sleep(0.5)
    raise TimeoutError(f"cursor never stabilized at {admin}")


def run_config(shards: int, workspace: str, workdir: str,
               timeout: float) -> dict:
    """One serve + publish + scrape + finalize cycle; returns results."""
    tag = f"n{shards}"
    sock = os.path.join(workdir, f"{tag}.sock")
    admin_sock = os.path.join(workdir, f"{tag}-adm.sock")
    admin = f"unix:{admin_sock}"
    cmd = [sys.executable, "-m", "repro", "serve",
           "--workspace", workspace,
           "--listen", f"unix:{sock}", "--admin", admin,
           "--policy", "flt", "--lifetime", "30",
           "--expect-producers", "jobs=1,publications=1,accesses=2"]
    if shards > 1:
        cmd += ["--shards", str(shards),
                "--fleet-dir", os.path.join(workdir, f"fleet-{tag}")]
    else:
        cmd += ["--checkpoint-dir", os.path.join(workdir, f"ck-{tag}")]

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    log(f"shards={shards}: starting server")
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True, env=env)
    deadline = time.monotonic() + timeout
    try:
        wait_healthy(admin, deadline, proc)
        log(f"shards={shards}: healthy, publishing")
        t0 = time.monotonic()
        totals = publish_workspace(f"unix:{sock}", workspace,
                                   retry_for=120.0)
        publish_seconds = time.monotonic() - t0
        metrics = wait_cursor_stable(admin, deadline)
        wall = time.monotonic() - t0
        # Release the held-open accesses slot; the servers finalize.
        publish_events(f"unix:{sock}", "accesses", [],
                       producer="bench-closer", session="bench-closer")
        out, err = proc.communicate(timeout=max(60.0,
                                                deadline - time.monotonic()))
    except BaseException:
        proc.kill()
        proc.communicate()
        raise
    if proc.returncode != 0:
        raise RuntimeError(f"server rc={proc.returncode}: {err[-2000:]}")
    if SUMMARY_MARKER not in out:
        raise RuntimeError(f"no tenant summary in server output: {out[:500]}")
    summary = out[out.index(SUMMARY_MARKER):]

    events = int(sum(totals.values()))
    if shards > 1:
        trigger = metrics.get("trigger_latency", {})
        misses = metrics.get("miss_tails", {})
        rows_routed = metrics.get("rows_routed", {})
    else:
        trigger = {"single": metrics.get("trigger_latency", {})}
        misses = {"single": metrics.get("miss_tails", {})}
        rows_routed = {}
    log(f"shards={shards}: {events} events in {wall:.1f}s "
        f"({events / wall:,.0f} ev/s)")
    return {
        "summary_text": summary,
        "result": {
            "events": events,
            "events_by_source": totals,
            "publish_seconds": round(publish_seconds, 3),
            "wall_seconds": round(wall, 3),
            "events_per_sec": round(events / wall, 1),
            "merged_cursor": int(metrics.get("cursor", 0)),
            "rows_routed": rows_routed,
            "trigger_latency_by_shard": trigger,
            "miss_tails_by_shard": misses,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="2k users, shards [1, 2] (CI-sized)")
    parser.add_argument("--users", type=int, default=None,
                        help="override the population size")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo root)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch workdir")
    args = parser.parse_args()

    n_users = args.users or (2_000 if args.smoke else 100_000)
    shard_counts = [1, 2] if args.smoke else [1, 2, 4]
    timeout = 600.0 if args.smoke else 2_400.0
    out_path = args.out or os.path.join(
        REPO_ROOT,
        "BENCH_sharded.smoke.json" if args.smoke else "BENCH_sharded.json")

    workdir = tempfile.mkdtemp(prefix="bshard-")
    try:
        workspace = os.path.join(workdir, "ws")
        cfg = lean_config(n_users, args.seed)
        log(f"generating {n_users}-user workspace (streamed)")
        t0 = time.monotonic()
        summary = generate_workspace_streamed(
            cfg, workspace, chunk_users=max(1_000, n_users // 8),
            log=lambda m: log(f"generate: {m}"))
        generate_seconds = time.monotonic() - t0
        log(f"workspace: {summary} in {generate_seconds:.1f}s")

        runs: dict[str, dict] = {}
        summaries: dict[int, str] = {}
        for n in shard_counts:
            r = run_config(n, workspace, workdir, timeout)
            runs[str(n)] = r["result"]
            summaries[n] = r["summary_text"]

        for n in shard_counts[1:]:
            identical = summaries[n] == summaries[1]
            runs[str(n)]["bit_identical_to_single"] = identical
            if not identical:
                log(f"IDENTITY FAILURE at shards={n}")

        report = {
            "benchmark": "sharded_fleet",
            "smoke": bool(args.smoke),
            "cpu_count": os.cpu_count(),
            "note": ("events/s across shard counts is only meaningful "
                     "relative to cpu_count: with fewer cores than "
                     "shards+1 the workers and router time-share one "
                     "CPU and the fleet cannot beat a single process; "
                     "the fleet's win on such hosts is the identity + "
                     "tails evidence, not throughput."),
            "dataset": {
                "n_users": n_users,
                "seed": args.seed,
                "job_history_days": JOB_HISTORY_DAYS,
                "accesses_per_session_mean": ACCESSES_PER_SESSION,
                "max_files_per_user": MAX_FILES_PER_USER,
                "generate_seconds": round(generate_seconds, 3),
                **summary,
            },
            "by_shards": runs,
        }
        with open(out_path, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        log(f"wrote {out_path}")
        failed = [n for n in shard_counts[1:]
                  if not runs[str(n)]["bit_identical_to_single"]]
        return 1 if failed else 0
    finally:
        if args.keep:
            log(f"kept workdir {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
