"""Ablation -- the evaluation-window cap (``ActivenessParams.max_periods``).

The paper's introduction describes measuring activity "within a specified
number of periods", while Eq. (1) derives the period count from each
user's own activity span.  ``max_periods`` implements the capped variant:
only the most recent W periods are visible, so ancient history neither
dilutes the Eq. (2) average nor collapses the product through years-old
empty periods.

The bench classifies the population under no cap / one year / one
quarter of 7-day periods and replays the year under each, showing how the
cap grows the active population (more users become protectable) and what
that does to misses.
"""

from repro.analysis import format_table, percent
from repro.core import (
    ActivenessEvaluator,
    ActivenessParams,
    ActivityLedger,
    JOB_SUBMISSION,
    PUBLICATION,
    RetentionConfig,
    UserClass,
    activities_from_jobs,
    activities_from_publications,
    classify_all,
    group_counts,
)
from repro.emulation import ACTIVEDR, FLT, ComparisonRunner

from conftest import write_result

WINDOWS = (None, 52, 13)  # uncapped, one year, one quarter (7-day periods)


def test_ablation_window_cap(benchmark, small_dataset):
    ds = small_dataset
    t_c = ds.config.replay_end - 1
    known = [u.uid for u in ds.users]

    ledger = ActivityLedger()
    ledger.extend(JOB_SUBMISSION, activities_from_jobs(ds.jobs))
    ledger.extend(PUBLICATION, activities_from_publications(ds.publications))
    ledger = ledger.until(t_c)

    def classify_capped():
        params = ActivenessParams(period_days=7, max_periods=13)
        return classify_all(ActivenessEvaluator(params).evaluate(
            ledger, t_c, known_uids=known))

    benchmark(classify_capped)

    rows = []
    for window in WINDOWS:
        params = ActivenessParams(period_days=7, max_periods=window)
        counts = group_counts(classify_all(ActivenessEvaluator(params)
                                           .evaluate(ledger, t_c,
                                                     known_uids=known)))
        total = sum(counts.values())
        active = total - counts[UserClass.BOTH_INACTIVE]

        config = RetentionConfig(activeness=params)
        result = ComparisonRunner(ds, config).run()
        rows.append([
            "uncapped (Eq. 1)" if window is None else f"{window} periods",
            percent(active / total, 1),
            result.total_misses(FLT),
            result.total_misses(ACTIVEDR),
            percent(result.miss_reduction(), 1),
        ])
    write_result("ablation_window", format_table(
        ["evaluation window", "active share", "FLT misses",
         "ActiveDR misses", "reduction"],
        rows,
        title="Ablation -- capping the activeness window (7-day periods)"))

    # A tighter window can only admit more active users (old empty
    # periods stop collapsing the product).
    shares = [float(r[1].rstrip("%")) for r in rows]
    assert shares[2] >= shares[0]
